"""Interconnect architecture: layer-pairs, stacks, and die area.

The paper's IA is a stack of *layer-pairs*: each pair is two orthogonal
routing layers sharing one geometry rule, so an L-shaped wire lives
entirely inside one pair.  This package provides:

* :mod:`repro.arch.layer` — :class:`~repro.arch.layer.LayerPair`,
* :mod:`repro.arch.die` — die area / gate pitch / repeater budget
  (the paper's Eq. (6) area model),
* :mod:`repro.arch.stack` —
  :class:`~repro.arch.stack.InterconnectArchitecture`, the ordered stack,
* :mod:`repro.arch.builder` — construct stacks from technology nodes.
"""

from .builder import ArchitectureSpec, build_architecture
from .die import DieModel
from .layer import LayerPair
from .stack import InterconnectArchitecture

__all__ = [
    "ArchitectureSpec",
    "build_architecture",
    "DieModel",
    "LayerPair",
    "InterconnectArchitecture",
]
