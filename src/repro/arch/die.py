"""Die area, gate pitch, and repeater budget model.

Implements the paper's Section 5.2 area bookkeeping (Eq. (6)):

* die area due to gates is ``g^2 * N`` with the ITRS gate pitch
  ``g = 12.6 x tech node``;
* the repeater allocation ``A_R`` is a *fraction* of the final die area
  and is added on top of the gate area, so
  ``A_d = gate_area / (1 - fraction)`` and ``A_R = fraction * A_d``;
* gates are then redistributed evenly over the inflated die, giving the
  *adjusted* gate pitch ``sqrt(A_d / N)`` used to convert WLD lengths
  (which are in gate pitches) to metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..tech.node import TechnologyNode


@dataclass(frozen=True)
class DieModel:
    """Die-level areas for a design on a technology node.

    Attributes
    ----------
    node:
        The technology node (supplies the nominal gate pitch).
    gate_count:
        Number of gates ``N`` in the design.
    repeater_fraction:
        Maximum repeater area as a fraction of die area (the paper's
        Table 4 column ``R``; baseline 0.4).  Must lie in ``[0, 1)``.
    """

    node: TechnologyNode
    gate_count: int
    repeater_fraction: float

    def __post_init__(self) -> None:
        if self.gate_count <= 0:
            raise ConfigurationError(
                f"gate_count must be positive, got {self.gate_count!r}"
            )
        if not 0.0 <= self.repeater_fraction < 1.0:
            raise ConfigurationError(
                f"repeater_fraction must be in [0, 1), got {self.repeater_fraction!r}"
            )

    @property
    def gate_area(self) -> float:
        """Die area due to gates alone: ``g^2 * N`` (m^2)."""
        g = self.node.gate_pitch
        return g * g * self.gate_count

    @property
    def die_area(self) -> float:
        """Actual die area ``A_d`` after adding the repeater allocation.

        From Eq. (6): ``A_d = A_R + gate_area`` with
        ``A_R = fraction * A_d``, hence ``A_d = gate_area / (1 - fraction)``.
        """
        return self.gate_area / (1.0 - self.repeater_fraction)

    @property
    def repeater_area(self) -> float:
        """Maximum repeater area ``A_R`` (m^2)."""
        return self.repeater_fraction * self.die_area

    @property
    def adjusted_gate_pitch(self) -> float:
        """Gate pitch after distributing gates evenly over ``A_d`` (m).

        This is the pitch that converts WLD lengths (in gate pitches) to
        physical lengths.
        """
        return math.sqrt(self.die_area / self.gate_count)

    @property
    def die_edge(self) -> float:
        """Edge length of the (square) die in metres."""
        return math.sqrt(self.die_area)

    def wire_length(self, length_in_pitches: float) -> float:
        """Convert a WLD length in gate pitches to metres."""
        if length_in_pitches < 0:
            raise ConfigurationError(
                f"length in pitches must be non-negative, got {length_in_pitches!r}"
            )
        return length_in_pitches * self.adjusted_gate_pitch

    def with_repeater_fraction(self, fraction: float) -> "DieModel":
        """Copy with a different repeater fraction (the ``R`` sweep knob).

        Note that changing the fraction also changes die area and the
        adjusted gate pitch, exactly as in the paper's area model.
        """
        return DieModel(
            node=self.node,
            gate_count=self.gate_count,
            repeater_fraction=fraction,
        )
