"""Layer-pair model.

A layer-pair is the paper's unit of routing resource: two orthogonal
layers sharing one geometry rule, holding L-shaped wires whose two
segments occupy one layer each.  All wires in a pair share width,
spacing, thickness — and therefore share one :class:`~repro.rc.models.WireRC`
and one optimal repeater size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..rc.models import WireRC
from ..tech.node import MetalRule, ViaRule


@dataclass(frozen=True)
class LayerPair:
    """One layer-pair of an interconnect architecture.

    Attributes
    ----------
    name:
        Display name, e.g. ``"global-1"`` or ``"semi_global-2"``.
    tier:
        Tier this pair draws its rules from (``"local"``,
        ``"semi_global"`` or ``"global"``).
    metal:
        Geometry rule shared by every wire in the pair.
    via:
        Rule for vias *passing through* this pair from wires and
        repeaters above (supplies the paper's ``v_a``).
    rc:
        Per-unit-length electricals of a wire on this pair (r-bar,
        c-bar), already including ILD permittivity and the Miller factor.
    """

    name: str
    tier: str
    metal: MetalRule
    via: ViaRule
    rc: WireRC

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("LayerPair.name must be non-empty")
        if not self.tier:
            raise ConfigurationError("LayerPair.tier must be non-empty")

    @property
    def wire_pitch(self) -> float:
        """Width + spacing in metres: area per unit wire length is
        ``length * wire_pitch`` (the paper's ``l * (W_j + S_j)``)."""
        return self.metal.pitch

    def wire_area(self, length: float) -> float:
        """Routing area consumed by a wire of the given length (m^2).

        The L-shape's two segments sum to ``length``; each occupies its
        own layer at the shared pitch, so total pair area is
        ``length * (W + S)`` exactly as in the paper's Algorithm 4 step 4.
        """
        if length < 0:
            raise ConfigurationError(f"wire length must be non-negative, got {length!r}")
        return length * self.wire_pitch
