"""The interconnect architecture: an ordered stack of layer-pairs.

Ordering convention (used consistently across the whole library):
**index 0 is the topmost layer-pair** — the same orientation as the
paper's DP, which assigns the longest wires to pair 1 (topmost) and
proceeds downward.  The bottom pair is ``pairs[-1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import to_um
from .layer import LayerPair


@dataclass(frozen=True)
class InterconnectArchitecture:
    """An IA: layer-pairs ordered top (global) to bottom (local).

    Attributes
    ----------
    name:
        Display name, e.g. ``"130nm/L1-SG2-G1"``.
    pairs:
        Layer-pairs, topmost first.  The paper's ``m`` is ``len(pairs)``.
    """

    name: str
    pairs: Tuple[LayerPair, ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ConfigurationError(
                f"architecture {self.name!r} must contain at least one layer-pair"
            )
        object.__setattr__(self, "pairs", tuple(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[LayerPair]:
        return iter(self.pairs)

    def __getitem__(self, index: int) -> LayerPair:
        return self.pairs[index]

    @property
    def num_pairs(self) -> int:
        """The paper's ``m``: number of layer-pairs."""
        return len(self.pairs)

    @property
    def top(self) -> LayerPair:
        """The topmost (coarsest, global) layer-pair."""
        return self.pairs[0]

    @property
    def bottom(self) -> LayerPair:
        """The bottommost (finest, local) layer-pair."""
        return self.pairs[-1]

    def pair(self, index: int) -> LayerPair:
        """Layer-pair by 0-based index from the top, with range checking."""
        if not 0 <= index < len(self.pairs):
            raise ConfigurationError(
                f"layer-pair index {index} out of range for architecture "
                f"{self.name!r} with {len(self.pairs)} pairs"
            )
        return self.pairs[index]

    def pairs_below(self, index: int) -> Sequence[LayerPair]:
        """All pairs strictly below the given 0-based index."""
        self.pair(index)  # range check
        return self.pairs[index + 1 :]

    def tier_counts(self) -> dict:
        """Number of pairs per tier, e.g. ``{"global": 1, "semi_global": 2}``."""
        counts: dict = {}
        for pair in self.pairs:
            counts[pair.tier] = counts.get(pair.tier, 0) + 1
        return counts

    def describe(self) -> str:
        """One-line human-readable stack summary, top to bottom."""
        parts = [
            f"{p.name}(W={to_um(p.metal.min_width):.3f}um, "
            f"S={to_um(p.metal.min_spacing):.3f}um, "
            f"T={to_um(p.metal.thickness):.3f}um)"
            for p in self.pairs
        ]
        return f"{self.name}: " + " / ".join(parts)
