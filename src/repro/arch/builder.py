"""Build interconnect architectures from technology nodes.

An :class:`ArchitectureSpec` captures the paper's Table 2 configuration —
how many layer-pairs per tier, which node, the ILD permittivity and the
Miller coupling factor — and :func:`build_architecture` extracts the RC of
each pair and assembles the ordered stack (global pairs on top, local
pairs at the bottom).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..rc.capacitance import CapacitanceModel
from ..rc.models import extract_wire_rc
from ..tech.node import TechnologyNode
from .layer import LayerPair
from .stack import InterconnectArchitecture


@dataclass(frozen=True)
class ArchitectureSpec:
    """Declarative description of an IA to build.

    Attributes
    ----------
    node:
        Technology node supplying geometry, materials, and devices.
    local_pairs:
        Number of layer-pairs built from the node's ``M1`` (local) rules.
        The paper's Table 2 lists only semi-global and global pairs; the
        local pair carrying the short-wire bulk of the WLD is implicit —
        default 1.
    semi_global_pairs:
        Number of pairs from the ``Mx`` rules (paper baseline: 2).
    global_pairs:
        Number of pairs from the ``Mt`` rules (paper baseline: 1).
    miller_factor:
        Miller coupling factor applied to coupling capacitance (paper
        baseline: 2.0).
    permittivity:
        ILD relative permittivity override; ``None`` keeps the node's
        dielectric (paper baseline: 3.9).
    capacitance_model:
        Capacitance extraction formula; ``None`` selects the default
        model.
    tier_scaling:
        Optional per-tier uniform geometry scale factors, e.g.
        ``(("global", 1.5),)`` for 50% fatter/taller global wires — the
        geometric-parameter knob of the paper's introduction ("impacts
        of geometric parameters").  Stored as a tuple of pairs so the
        spec stays hashable-by-value and immutable.
    """

    node: TechnologyNode
    local_pairs: int = 1
    semi_global_pairs: int = 2
    global_pairs: int = 1
    miller_factor: float = 2.0
    permittivity: Optional[float] = None
    capacitance_model: Optional[CapacitanceModel] = None
    tier_scaling: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for attr in ("local_pairs", "semi_global_pairs", "global_pairs"):
            value = getattr(self, attr)
            if value < 0:
                raise ConfigurationError(
                    f"ArchitectureSpec.{attr} must be non-negative, got {value!r}"
                )
        if self.local_pairs + self.semi_global_pairs + self.global_pairs == 0:
            raise ConfigurationError(
                "ArchitectureSpec must request at least one layer-pair"
            )
        if self.miller_factor < 0:
            raise ConfigurationError(
                f"miller_factor must be non-negative, got {self.miller_factor!r}"
            )
        if self.permittivity is not None and self.permittivity < 1.0:
            raise ConfigurationError(
                f"permittivity must be >= 1.0, got {self.permittivity!r}"
            )
        for tier, factor in self.tier_scaling:
            if tier not in ("local", "semi_global", "global"):
                raise ConfigurationError(
                    f"tier_scaling names unknown tier {tier!r}"
                )
            if factor <= 0:
                raise ConfigurationError(
                    f"tier_scaling factor for {tier!r} must be positive, "
                    f"got {factor!r}"
                )

    @property
    def num_pairs(self) -> int:
        """Total number of layer-pairs the spec will build."""
        return self.local_pairs + self.semi_global_pairs + self.global_pairs

    def with_miller(self, miller_factor: float) -> "ArchitectureSpec":
        """Copy with a different Miller factor (Table 4 ``M`` knob)."""
        return replace(self, miller_factor=miller_factor)

    def with_permittivity(self, k: float) -> "ArchitectureSpec":
        """Copy with a different ILD permittivity (Table 4 ``K`` knob)."""
        return replace(self, permittivity=k)

    def with_tier_scaling(self, tier: str, factor: float) -> "ArchitectureSpec":
        """Copy with one tier's geometry uniformly scaled by ``factor``."""
        scaling = tuple(
            (name, value) for name, value in self.tier_scaling if name != tier
        ) + ((tier, factor),)
        return replace(self, tier_scaling=scaling)

    def scale_for(self, tier: str) -> float:
        """Geometry scale factor applied to a tier (1.0 if unscaled)."""
        for name, value in self.tier_scaling:
            if name == tier:
                return value
        return 1.0


def build_architecture(spec: ArchitectureSpec) -> InterconnectArchitecture:
    """Materialize an :class:`InterconnectArchitecture` from a spec.

    Pairs are stacked global → semi-global → local from top to bottom,
    matching the paper's "longer wires on upper layer-pairs" orientation.
    Each pair's RC is extracted once here; downstream code never touches
    geometry again.
    """
    node = spec.node
    dielectric = (
        node.dielectric
        if spec.permittivity is None
        else node.dielectric.scaled(spec.permittivity)
    )

    pairs: List[LayerPair] = []

    def add_pairs(tier: str, count: int) -> None:
        metal = node.metal(tier)
        scale = spec.scale_for(tier)
        if scale != 1.0:
            metal = metal.scaled(scale)
        via = node.via(tier)
        rc = extract_wire_rc(
            metal,
            node.conductor,
            dielectric,
            spec.miller_factor,
            spec.capacitance_model,
        )
        for index in range(count):
            pairs.append(
                LayerPair(
                    name=f"{tier}-{index + 1}",
                    tier=tier,
                    metal=metal,
                    via=via,
                    rc=rc,
                )
            )

    add_pairs("global", spec.global_pairs)
    add_pairs("semi_global", spec.semi_global_pairs)
    add_pairs("local", spec.local_pairs)

    name = (
        f"{node.name}/G{spec.global_pairs}-SG{spec.semi_global_pairs}"
        f"-L{spec.local_pairs}(k={dielectric.relative_permittivity:g},"
        f"M={spec.miller_factor:g})"
    )
    return InterconnectArchitecture(name=name, pairs=tuple(pairs))
