"""Enumerable design spaces for architecture optimization.

A :class:`DesignSpace` describes the knobs a BEOL architect controls —
how many layer-pairs to build per tier, which dielectric class to buy,
how aggressively to shield (the achievable Miller factor) — under a
metal-layer-count budget.  It enumerates the concrete
:class:`~repro.arch.builder.ArchitectureSpec` candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..arch.builder import ArchitectureSpec
from ..errors import ConfigurationError
from ..tech.node import TechnologyNode


@dataclass(frozen=True)
class DesignSpace:
    """Knob ranges for architecture search.

    Attributes
    ----------
    node:
        Technology node the candidates are built on.
    local_pairs:
        Candidate local layer-pair counts (>= 1 so the short-wire bulk
        always has a home).
    semi_global_pairs, global_pairs:
        Candidate tier counts.
    permittivities:
        Candidate ILD permittivity classes (e.g. oxide 3.9, FSG 3.6,
        OSG 2.8).
    miller_factors:
        Candidate effective Miller factors (2.0 unshielded down to 1.0
        double-shielded; shielding costs routing space in reality, which
        a caller can reflect through ``utilization``).
    max_metal_layers:
        Budget on total metal layers (2 per layer-pair); candidates
        exceeding it are not enumerated.
    """

    node: TechnologyNode
    local_pairs: Tuple[int, ...] = (1, 2)
    semi_global_pairs: Tuple[int, ...] = (1, 2, 3)
    global_pairs: Tuple[int, ...] = (1, 2)
    permittivities: Tuple[float, ...] = (3.9, 3.6, 2.8)
    miller_factors: Tuple[float, ...] = (2.0,)
    max_metal_layers: int = 12

    def __post_init__(self) -> None:
        for name in ("local_pairs", "semi_global_pairs", "global_pairs"):
            values = getattr(self, name)
            if not values:
                raise ConfigurationError(f"DesignSpace.{name} must be non-empty")
            if any(v < 0 for v in values):
                raise ConfigurationError(
                    f"DesignSpace.{name} must be non-negative, got {values!r}"
                )
        if min(self.local_pairs) < 1:
            raise ConfigurationError(
                "DesignSpace.local_pairs must be >= 1 (the short-wire bulk "
                "needs a local tier)"
            )
        if not self.permittivities or any(k < 1.0 for k in self.permittivities):
            raise ConfigurationError(
                f"permittivities must be >= 1.0, got {self.permittivities!r}"
            )
        if not self.miller_factors or any(m < 0 for m in self.miller_factors):
            raise ConfigurationError(
                f"miller_factors must be non-negative, got {self.miller_factors!r}"
            )
        if self.max_metal_layers < 2:
            raise ConfigurationError(
                f"max_metal_layers must be >= 2, got {self.max_metal_layers!r}"
            )

    def __iter__(self) -> Iterator[ArchitectureSpec]:
        return self.candidates()

    def candidates(self) -> Iterator[ArchitectureSpec]:
        """Enumerate all in-budget candidate specs, deterministically."""
        for local in self.local_pairs:
            for semi_global in self.semi_global_pairs:
                for global_pairs in self.global_pairs:
                    pairs = local + semi_global + global_pairs
                    if 2 * pairs > self.max_metal_layers:
                        continue
                    for k in self.permittivities:
                        for miller in self.miller_factors:
                            yield ArchitectureSpec(
                                node=self.node,
                                local_pairs=local,
                                semi_global_pairs=semi_global,
                                global_pairs=global_pairs,
                                permittivity=k,
                                miller_factor=miller,
                            )

    def size(self) -> int:
        """Number of in-budget candidates."""
        return sum(1 for _ in self.candidates())

    def neighbours(self, spec: ArchitectureSpec) -> Iterator[ArchitectureSpec]:
        """Single-knob moves from ``spec`` that stay inside the space.

        Used by hill climbing: steps to adjacent values of each knob
        (tier counts up/down one position in their candidate tuples,
        permittivity/Miller to adjacent classes).
        """

        def adjacent(values: Sequence, current) -> Iterator:
            values = sorted(set(values))
            if current in values:
                index = values.index(current)
                if index > 0:
                    yield values[index - 1]
                if index + 1 < len(values):
                    yield values[index + 1]
            else:
                yield from values

        for local in adjacent(self.local_pairs, spec.local_pairs):
            candidate = ArchitectureSpec(
                node=spec.node,
                local_pairs=local,
                semi_global_pairs=spec.semi_global_pairs,
                global_pairs=spec.global_pairs,
                permittivity=spec.permittivity,
                miller_factor=spec.miller_factor,
            )
            if 2 * candidate.num_pairs <= self.max_metal_layers:
                yield candidate
        for semi in adjacent(self.semi_global_pairs, spec.semi_global_pairs):
            candidate = ArchitectureSpec(
                node=spec.node,
                local_pairs=spec.local_pairs,
                semi_global_pairs=semi,
                global_pairs=spec.global_pairs,
                permittivity=spec.permittivity,
                miller_factor=spec.miller_factor,
            )
            if 2 * candidate.num_pairs <= self.max_metal_layers:
                yield candidate
        for global_pairs in adjacent(self.global_pairs, spec.global_pairs):
            candidate = ArchitectureSpec(
                node=spec.node,
                local_pairs=spec.local_pairs,
                semi_global_pairs=spec.semi_global_pairs,
                global_pairs=global_pairs,
                permittivity=spec.permittivity,
                miller_factor=spec.miller_factor,
            )
            if 2 * candidate.num_pairs <= self.max_metal_layers:
                yield candidate
        for k in adjacent(self.permittivities, spec.permittivity):
            yield ArchitectureSpec(
                node=spec.node,
                local_pairs=spec.local_pairs,
                semi_global_pairs=spec.semi_global_pairs,
                global_pairs=spec.global_pairs,
                permittivity=k,
                miller_factor=spec.miller_factor,
            )
        for miller in adjacent(self.miller_factors, spec.miller_factor):
            yield ArchitectureSpec(
                node=spec.node,
                local_pairs=spec.local_pairs,
                semi_global_pairs=spec.semi_global_pairs,
                global_pairs=spec.global_pairs,
                permittivity=spec.permittivity,
                miller_factor=miller,
            )

    def default_spec(self) -> ArchitectureSpec:
        """A starting point: the smallest candidate of the space."""
        return ArchitectureSpec(
            node=self.node,
            local_pairs=min(self.local_pairs),
            semi_global_pairs=min(self.semi_global_pairs),
            global_pairs=min(self.global_pairs),
            permittivity=max(self.permittivities),
            miller_factor=max(self.miller_factors),
        )
