"""Architecture optimization against the rank metric.

The paper's Section 6 proposes "direct optimization of interconnect
architectures according to our proposed metric, with the goal of
evaluating ITRS and foundry BEOL architectures".  This package
implements that programme:

* :mod:`repro.optimize.space` — enumerable design spaces over layer-pair
  allocations, dielectrics and Miller factors,
* :mod:`repro.optimize.search` — exhaustive evaluation, greedy hill
  climbing for larger spaces, and Pareto extraction (rank vs metal
  layer count).
"""

from .search import (
    CandidateResult,
    shielding_capacity_factor,
    OptimizationResult,
    evaluate_candidates,
    evaluate_candidates_batch,
    hill_climb,
    optimize_architecture,
    pareto_front,
)
from .space import DesignSpace

__all__ = [
    "DesignSpace",
    "CandidateResult",
    "OptimizationResult",
    "evaluate_candidates",
    "evaluate_candidates_batch",
    "pareto_front",
    "hill_climb",
    "optimize_architecture",
    "shielding_capacity_factor",
]
