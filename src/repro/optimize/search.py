"""Search strategies over architecture design spaces.

Small spaces (the realistic case: a handful of tier allocations times a
few material classes) are evaluated exhaustively; larger spaces get a
first-improvement hill climb over single-knob moves.  Both report
:class:`CandidateResult` rows, and :func:`pareto_front` extracts the
rank-vs-metal-layers frontier a BEOL roadmap discussion needs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.builder import ArchitectureSpec, build_architecture
from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError
from ..rc.noise import SHIELDING_LADDER
from .space import DesignSpace

#: Miller factor -> routing-capacity fraction under shielding-aware
#: evaluation, from the standard shielding ladder (noise module).
_SHIELDING_CAPACITY = {
    policy.miller_factor: policy.capacity_factor for policy in SHIELDING_LADDER
}


def shielding_capacity_factor(miller_factor: float) -> float:
    """Routing capacity left after buying a Miller factor via shields.

    Exact ladder points (2.0 / 1.5 / 1.0) use their policies; values in
    between interpolate linearly on tracks-per-signal — a conservative
    smooth model of partial shielding.
    """
    if miller_factor in _SHIELDING_CAPACITY:
        return _SHIELDING_CAPACITY[miller_factor]
    ladder = sorted(SHIELDING_LADDER, key=lambda p: p.miller_factor)
    if miller_factor >= ladder[-1].miller_factor:
        return ladder[-1].capacity_factor
    if miller_factor <= ladder[0].miller_factor:
        return ladder[0].capacity_factor
    for low, high in zip(ladder, ladder[1:]):
        if low.miller_factor <= miller_factor <= high.miller_factor:
            span = high.miller_factor - low.miller_factor
            t = (miller_factor - low.miller_factor) / span
            tracks = low.tracks_per_signal + t * (
                high.tracks_per_signal - low.tracks_per_signal
            )
            return 1.0 / tracks
    return 1.0  # unreachable; ladder covers the interval


@dataclass(frozen=True)
class CandidateResult:
    """One evaluated architecture candidate.

    Attributes
    ----------
    spec:
        The candidate's declarative description.
    result:
        Its rank result on the study design.
    """

    spec: ArchitectureSpec
    result: RankResult

    @property
    def metal_layers(self) -> int:
        """Total metal layers the candidate builds (2 per pair)."""
        return 2 * self.spec.num_pairs

    @property
    def normalized(self) -> float:
        """Normalized rank (0 when the WLD does not fit)."""
        return self.result.normalized

    def label(self) -> str:
        """Compact human-readable candidate label."""
        return (
            f"G{self.spec.global_pairs}/SG{self.spec.semi_global_pairs}"
            f"/L{self.spec.local_pairs} k={self.spec.permittivity:g} "
            f"M={self.spec.miller_factor:g}"
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of an architecture search.

    Attributes
    ----------
    best:
        Highest-rank candidate (ties broken toward fewer metal layers).
    evaluated:
        Every candidate evaluated, in evaluation order.
    pareto:
        The rank-vs-layers frontier among the evaluated candidates.
    """

    best: CandidateResult
    evaluated: Tuple[CandidateResult, ...]
    pareto: Tuple[CandidateResult, ...]


def _solve(
    problem: RankProblem,
    spec: ArchitectureSpec,
    solve_options,
    shielding_aware: bool = False,
) -> RankResult:
    variant = problem.with_arch(build_architecture(spec))
    if shielding_aware:
        factor = shielding_capacity_factor(spec.miller_factor)
        variant = dataclasses.replace(
            variant, utilization=problem.utilization * factor
        )
    return compute_rank(variant, **solve_options)


def evaluate_candidates(
    problem: RankProblem,
    specs: Sequence[ArchitectureSpec],
    shielding_aware: bool = False,
    **solve_options,
) -> List[CandidateResult]:
    """Rank every candidate architecture on the problem's design.

    With ``shielding_aware=True``, a candidate's Miller factor is
    assumed to be bought with shield wires, and its routing utilization
    pays the corresponding track cost (1x / 2x / 3x tracks per signal
    for M = 2.0 / 1.5 / 1.0) — the honest version of the M knob.
    """
    results: List[CandidateResult] = []
    for spec in specs:
        results.append(
            CandidateResult(
                spec=spec,
                result=_solve(problem, spec, solve_options, shielding_aware),
            )
        )
    return results


def pareto_front(
    candidates: Sequence[CandidateResult],
    cost: Callable[[CandidateResult], float] = lambda c: c.metal_layers,
) -> List[CandidateResult]:
    """Non-dominated candidates: maximal rank, minimal cost.

    A candidate is kept iff no other candidate has both >= rank and
    <= cost with at least one strict.  Output is sorted by cost.
    """
    kept: List[CandidateResult] = []
    for candidate in candidates:
        dominated = False
        for other in candidates:
            if other is candidate:
                continue
            better_rank = other.result.rank >= candidate.result.rank
            better_cost = cost(other) <= cost(candidate)
            strictly = (
                other.result.rank > candidate.result.rank
                or cost(other) < cost(candidate)
            )
            if better_rank and better_cost and strictly:
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    # dedupe identical (rank, cost) points, keep first
    seen = set()
    unique: List[CandidateResult] = []
    for candidate in sorted(kept, key=lambda c: (cost(c), -c.result.rank)):
        key = (candidate.result.rank, cost(candidate))
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def hill_climb(
    problem: RankProblem,
    space: DesignSpace,
    initial: Optional[ArchitectureSpec] = None,
    max_steps: int = 50,
    shielding_aware: bool = False,
    **solve_options,
) -> List[CandidateResult]:
    """Best-improvement hill climb over single-knob moves.

    Returns the trajectory (including the start); the last element is a
    local optimum of the neighbourhood.  Already-evaluated specs are
    cached so the climb never re-solves a candidate.
    """
    if max_steps < 1:
        raise RankComputationError(f"max_steps must be positive, got {max_steps!r}")
    current_spec = initial if initial is not None else space.default_spec()
    cache: Dict[tuple, RankResult] = {}

    def key(spec: ArchitectureSpec) -> tuple:
        # TechnologyNode holds dicts (unhashable); key on the knobs.
        return (
            spec.local_pairs,
            spec.semi_global_pairs,
            spec.global_pairs,
            spec.permittivity,
            spec.miller_factor,
        )

    def solve(spec: ArchitectureSpec) -> RankResult:
        k = key(spec)
        if k not in cache:
            cache[k] = _solve(problem, spec, solve_options, shielding_aware)
        return cache[k]

    trajectory = [CandidateResult(spec=current_spec, result=solve(current_spec))]
    for _ in range(max_steps):
        current = trajectory[-1]
        best_move: Optional[CandidateResult] = None
        for neighbour in space.neighbours(current.spec):
            candidate = CandidateResult(spec=neighbour, result=solve(neighbour))
            if best_move is None or candidate.result.rank > best_move.result.rank:
                best_move = candidate
        if best_move is None or best_move.result.rank <= current.result.rank:
            break  # local optimum
        trajectory.append(best_move)
    return trajectory


def optimize_architecture(
    problem: RankProblem,
    space: DesignSpace,
    exhaustive_limit: int = 64,
    shielding_aware: bool = False,
    **solve_options,
) -> OptimizationResult:
    """Search a design space for the highest-rank architecture.

    Spaces up to ``exhaustive_limit`` candidates are enumerated fully;
    larger ones are hill-climbed from the space's smallest candidate.
    ``shielding_aware=True`` charges each candidate's Miller factor its
    shield-track cost (see :func:`shielding_capacity_factor`).

    Returns
    -------
    OptimizationResult
        Best candidate, all evaluations, and the rank-vs-layers Pareto
        frontier.
    """
    size = space.size()
    if size == 0:
        raise RankComputationError("design space enumerates no candidates")
    if size <= exhaustive_limit:
        evaluated = evaluate_candidates(
            problem, list(space), shielding_aware=shielding_aware, **solve_options
        )
    else:
        evaluated = hill_climb(
            problem, space, shielding_aware=shielding_aware, **solve_options
        )
    best = max(
        evaluated, key=lambda c: (c.result.rank, -c.metal_layers)
    )
    return OptimizationResult(
        best=best,
        evaluated=tuple(evaluated),
        pareto=tuple(pareto_front(evaluated)),
    )
