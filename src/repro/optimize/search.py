"""Search strategies over architecture design spaces.

Small spaces (the realistic case: a handful of tier allocations times a
few material classes) are evaluated exhaustively; larger spaces get a
first-improvement hill climb over single-knob moves.  Both report
:class:`CandidateResult` rows, and :func:`pareto_front` extracts the
rank-vs-metal-layers frontier a BEOL roadmap discussion needs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..arch.builder import ArchitectureSpec, build_architecture
from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError, RunnerError
from ..rc.noise import SHIELDING_LADDER
from .space import DesignSpace

if TYPE_CHECKING:  # runner imported lazily at call time (cycle via persist)
    from pathlib import Path

    from ..faultkit.schedule import FaultSchedule

    from ..core.precompute import PrecomputeCache
    from ..runner.executor import BatchOutcome
    from ..runner.journal import PointFailure, RunJournal
    from ..runner.policy import RetryPolicy

#: Miller factor -> routing-capacity fraction under shielding-aware
#: evaluation, from the standard shielding ladder (noise module).
_SHIELDING_CAPACITY = {
    policy.miller_factor: policy.capacity_factor for policy in SHIELDING_LADDER
}


def shielding_capacity_factor(miller_factor: float) -> float:
    """Routing capacity left after buying a Miller factor via shields.

    Exact ladder points (2.0 / 1.5 / 1.0) use their policies; values in
    between interpolate linearly on tracks-per-signal — a conservative
    smooth model of partial shielding.
    """
    if miller_factor in _SHIELDING_CAPACITY:
        return _SHIELDING_CAPACITY[miller_factor]
    ladder = sorted(SHIELDING_LADDER, key=lambda p: p.miller_factor)
    if miller_factor >= ladder[-1].miller_factor:
        return ladder[-1].capacity_factor
    if miller_factor <= ladder[0].miller_factor:
        return ladder[0].capacity_factor
    for low, high in zip(ladder, ladder[1:]):
        if low.miller_factor <= miller_factor <= high.miller_factor:
            span = high.miller_factor - low.miller_factor
            t = (miller_factor - low.miller_factor) / span
            tracks = low.tracks_per_signal + t * (
                high.tracks_per_signal - low.tracks_per_signal
            )
            return 1.0 / tracks
    return 1.0  # unreachable; ladder covers the interval


@dataclass(frozen=True)
class CandidateResult:
    """One evaluated architecture candidate.

    Attributes
    ----------
    spec:
        The candidate's declarative description.
    result:
        Its rank result on the study design.
    """

    spec: ArchitectureSpec
    result: RankResult

    @property
    def metal_layers(self) -> int:
        """Total metal layers the candidate builds (2 per pair)."""
        return 2 * self.spec.num_pairs

    @property
    def normalized(self) -> float:
        """Normalized rank (0 when the WLD does not fit)."""
        return self.result.normalized

    def label(self) -> str:
        """Compact human-readable candidate label."""
        return (
            f"G{self.spec.global_pairs}/SG{self.spec.semi_global_pairs}"
            f"/L{self.spec.local_pairs} k={self.spec.permittivity:g} "
            f"M={self.spec.miller_factor:g}"
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of an architecture search.

    Attributes
    ----------
    best:
        Highest-rank candidate (ties broken toward fewer metal layers).
    evaluated:
        Every candidate evaluated, in evaluation order.
    pareto:
        The rank-vs-layers frontier among the evaluated candidates.
    failures:
        Candidates whose evaluation failed under a ``keep_going``
        search (empty for a clean search).
    journal:
        Run journal of the underlying batch execution, when the search
        ran through the fault-tolerant harness.
    """

    best: CandidateResult
    evaluated: Tuple[CandidateResult, ...]
    pareto: Tuple[CandidateResult, ...]
    failures: Tuple["PointFailure", ...] = ()
    journal: Optional["RunJournal"] = field(default=None, compare=False)


def _solve(
    problem: RankProblem,
    spec: ArchitectureSpec,
    solve_options,
    shielding_aware: bool = False,
) -> RankResult:
    variant = problem.with_arch(build_architecture(spec))
    if shielding_aware:
        factor = shielding_capacity_factor(spec.miller_factor)
        variant = dataclasses.replace(
            variant, utilization=problem.utilization * factor
        )
    return compute_rank(variant, **solve_options)


@dataclass
class _CandidateEvaluate:
    """Picklable candidate evaluator (see :class:`..analysis.sweep._SweepEvaluate`)."""

    problem: RankProblem
    shielding_aware: bool
    solve_options: Dict[str, object]

    def __call__(self, point, attempt) -> RankResult:
        from ..runner.policy import scaled_bunch_size

        options = dict(self.solve_options)
        if "bunch_size" in options:
            options["bunch_size"] = scaled_bunch_size(
                options["bunch_size"], dict(attempt.degradation)
            )
        options["deadline"] = attempt.deadline
        return _solve(self.problem, point.value, options, self.shielding_aware)


def evaluate_candidates_batch(
    problem: RankProblem,
    specs: Sequence[ArchitectureSpec],
    shielding_aware: bool = False,
    policy: Optional["RetryPolicy"] = None,
    keep_going: bool = False,
    checkpoint: Optional[Union[str, "Path"]] = None,
    resume: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    pool_mode: str = "auto",
    checkpoint_every: int = 1,
    checkpoint_interval_s: Optional[float] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    cache: Optional["PrecomputeCache"] = None,
    **solve_options,
) -> Tuple[List[CandidateResult], "BatchOutcome"]:
    """Rank every candidate through the fault-tolerant harness.

    Returns the completed candidates (evaluation order) plus the
    :class:`~repro.runner.BatchOutcome` carrying failures and the run
    journal.  Checkpoints store only the rank results; candidates are
    re-derived from the (deterministic) spec enumeration on resume.
    ``jobs > 1`` evaluates candidates in parallel with identical
    results; ``cache`` shares the coarse WLD (identical across every
    candidate — only the architecture varies) and repeated tables.
    """
    # Imported here, not at module top: the runner package reaches
    # analysis.sweep through repro.reporting.persist.
    from ..core.precompute import PrecomputeCache
    from ..reporting.persist import rank_result_from_dict, rank_result_to_dict
    from ..runner.executor import PointSpec, run_batch

    points = [
        PointSpec(
            key=f"[{i}] {_spec_label(spec)}",
            value=spec,
            label=_spec_label(spec),
        )
        for i, spec in enumerate(specs)
    ]

    if cache is None:
        cache = PrecomputeCache()
    cache.warm(
        problem,
        bunch_size=solve_options.get("bunch_size"),
        max_groups=solve_options.get("max_groups"),
    )
    options = dict(solve_options)
    options["cache"] = cache
    evaluate = _CandidateEvaluate(
        problem=problem,
        shielding_aware=shielding_aware,
        solve_options=options,
    )

    outcome = run_batch(
        "optimize",
        points,
        evaluate,
        policy=policy,
        keep_going=keep_going,
        checkpoint_path=checkpoint,
        resume=resume,
        serialize=rank_result_to_dict,
        deserialize=rank_result_from_dict,
        jobs=jobs,
        chunk_size=chunk_size,
        pool_mode=pool_mode,
        checkpoint_every=checkpoint_every,
        checkpoint_interval_s=checkpoint_interval_s,
        fault_schedule=fault_schedule,
    )
    results = [
        CandidateResult(spec=point.value, result=outcome.results[point.key])
        for point in points
        if point.key in outcome.results
    ]
    return results, outcome


def _spec_label(spec: ArchitectureSpec) -> str:
    """Checkpoint-stable candidate label (mirrors CandidateResult.label)."""
    return (
        f"G{spec.global_pairs}/SG{spec.semi_global_pairs}"
        f"/L{spec.local_pairs} k={spec.permittivity:g} "
        f"M={spec.miller_factor:g}"
    )


def evaluate_candidates(
    problem: RankProblem,
    specs: Sequence[ArchitectureSpec],
    shielding_aware: bool = False,
    **solve_options,
) -> List[CandidateResult]:
    """Rank every candidate architecture on the problem's design.

    With ``shielding_aware=True``, a candidate's Miller factor is
    assumed to be bought with shield wires, and its routing utilization
    pays the corresponding track cost (1x / 2x / 3x tracks per signal
    for M = 2.0 / 1.5 / 1.0) — the honest version of the M knob.

    Accepts the harness keywords of :func:`evaluate_candidates_batch`
    (``policy`` / ``keep_going`` / ``checkpoint`` / ``resume``) and
    returns just the completed candidates.
    """
    results, _ = evaluate_candidates_batch(
        problem, specs, shielding_aware=shielding_aware, **solve_options
    )
    return results


def pareto_front(
    candidates: Sequence[CandidateResult],
    cost: Callable[[CandidateResult], float] = lambda c: c.metal_layers,
) -> List[CandidateResult]:
    """Non-dominated candidates: maximal rank, minimal cost.

    A candidate is kept iff no other candidate has both >= rank and
    <= cost with at least one strict.  Output is sorted by cost.
    """
    kept: List[CandidateResult] = []
    for candidate in candidates:
        dominated = False
        for other in candidates:
            if other is candidate:
                continue
            better_rank = other.result.rank >= candidate.result.rank
            better_cost = cost(other) <= cost(candidate)
            strictly = (
                other.result.rank > candidate.result.rank
                or cost(other) < cost(candidate)
            )
            if better_rank and better_cost and strictly:
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    # dedupe identical (rank, cost) points, keep first
    seen = set()
    unique: List[CandidateResult] = []
    for candidate in sorted(kept, key=lambda c: (cost(c), -c.result.rank)):
        key = (candidate.result.rank, cost(candidate))
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def hill_climb(
    problem: RankProblem,
    space: DesignSpace,
    initial: Optional[ArchitectureSpec] = None,
    max_steps: int = 50,
    shielding_aware: bool = False,
    policy: Optional["RetryPolicy"] = None,
    keep_going: bool = False,
    journal: Optional["RunJournal"] = None,
    cache: Optional["PrecomputeCache"] = None,
    **solve_options,
) -> List[CandidateResult]:
    """Best-improvement hill climb over single-knob moves.

    Returns the trajectory (including the start); the last element is a
    local optimum of the neighbourhood.  Already-evaluated specs are
    memoized so the climb never re-solves a candidate, and a
    :class:`~repro.core.precompute.PrecomputeCache` (a fresh one unless
    passed in) shares the coarse WLD across every candidate.

    Each candidate solve runs under the fault-tolerant harness'
    per-point executor: with ``keep_going=True`` a failing neighbour is
    treated as infeasible (skipped, recorded in ``journal``) instead of
    aborting the climb; the starting candidate failing always raises
    :class:`~repro.errors.RunnerError` — there is nothing to climb from.
    """
    from ..core.precompute import PrecomputeCache
    from ..runner.executor import PointSpec, execute_point
    from ..runner.policy import RetryPolicy

    if max_steps < 1:
        raise RankComputationError(f"max_steps must be positive, got {max_steps!r}")
    policy = policy if policy is not None else RetryPolicy()
    current_spec = initial if initial is not None else space.default_spec()
    solved: Dict[tuple, Optional[RankResult]] = {}
    if cache is None:
        cache = PrecomputeCache()
    cache.warm(
        problem,
        bunch_size=solve_options.get("bunch_size"),
        max_groups=solve_options.get("max_groups"),
    )
    options = dict(solve_options)
    options["cache"] = cache
    evaluate = _CandidateEvaluate(
        problem=problem,
        shielding_aware=shielding_aware,
        solve_options=options,
    )

    def key(spec: ArchitectureSpec) -> tuple:
        # TechnologyNode holds dicts (unhashable); key on the knobs.
        return (
            spec.local_pairs,
            spec.semi_global_pairs,
            spec.global_pairs,
            spec.permittivity,
            spec.miller_factor,
        )

    def solve(spec: ArchitectureSpec) -> Optional[RankResult]:
        k = key(spec)
        if k not in solved:
            label = _spec_label(spec)
            outcome = execute_point(
                PointSpec(key=label, value=spec, label=label), evaluate, policy
            )
            if journal is not None:
                journal.add(outcome.record)
            if not outcome.ok and not keep_going:
                raise RunnerError(
                    f"hill climb: candidate {label!r} failed after "
                    f"{len(outcome.record.attempts)} attempt(s): "
                    f"{outcome.record.attempts[-1].error_message}"
                )
            solved[k] = outcome.result if outcome.ok else None
        return solved[k]

    start = solve(current_spec)
    if start is None:
        raise RunnerError(
            f"hill climb: starting candidate {_spec_label(current_spec)!r} "
            "failed; there is nothing to climb from"
        )
    trajectory = [CandidateResult(spec=current_spec, result=start)]
    for _ in range(max_steps):
        current = trajectory[-1]
        best_move: Optional[CandidateResult] = None
        for neighbour in space.neighbours(current.spec):
            result = solve(neighbour)
            if result is None:
                continue  # failed under keep_going: treat as infeasible
            candidate = CandidateResult(spec=neighbour, result=result)
            if best_move is None or candidate.result.rank > best_move.result.rank:
                best_move = candidate
        if best_move is None or best_move.result.rank <= current.result.rank:
            break  # local optimum
        trajectory.append(best_move)
    return trajectory


def optimize_architecture(
    problem: RankProblem,
    space: DesignSpace,
    exhaustive_limit: int = 64,
    shielding_aware: bool = False,
    policy: Optional["RetryPolicy"] = None,
    keep_going: bool = False,
    checkpoint: Optional[Union[str, "Path"]] = None,
    resume: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    pool_mode: str = "auto",
    checkpoint_every: int = 1,
    checkpoint_interval_s: Optional[float] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    cache: Optional["PrecomputeCache"] = None,
    **solve_options,
) -> OptimizationResult:
    """Search a design space for the highest-rank architecture.

    Spaces up to ``exhaustive_limit`` candidates are enumerated fully;
    larger ones are hill-climbed from the space's smallest candidate.
    ``shielding_aware=True`` charges each candidate's Miller factor its
    shield-track cost (see :func:`shielding_capacity_factor`).

    The search runs through the fault-tolerant harness: ``policy``
    bounds per-candidate attempts and wall-clock, ``keep_going`` skips
    failing candidates instead of aborting, and ``checkpoint`` /
    ``resume`` journal the exhaustive enumeration across interruptions
    (the adaptive hill climb supports isolation, retries, and the
    shared precompute ``cache``, but not checkpointing or ``jobs`` —
    its moves are sequentially dependent).

    Returns
    -------
    OptimizationResult
        Best candidate, all evaluations, the rank-vs-layers Pareto
        frontier, plus any failures and the run journal.
    """
    size = space.size()
    if size == 0:
        raise RankComputationError("design space enumerates no candidates")
    if size <= exhaustive_limit:
        evaluated, outcome = evaluate_candidates_batch(
            problem,
            list(space),
            shielding_aware=shielding_aware,
            policy=policy,
            keep_going=keep_going,
            checkpoint=checkpoint,
            resume=resume,
            jobs=jobs,
            chunk_size=chunk_size,
            pool_mode=pool_mode,
            checkpoint_every=checkpoint_every,
            checkpoint_interval_s=checkpoint_interval_s,
            fault_schedule=fault_schedule,
            cache=cache,
            **solve_options,
        )
        failures, journal = outcome.failures, outcome.journal
    else:
        from ..runner.journal import RunJournal

        if checkpoint is not None or resume:
            raise RunnerError(
                "checkpoint/resume requires the exhaustive search path; "
                f"this space has {size} candidates > exhaustive_limit="
                f"{exhaustive_limit} and would hill-climb"
            )
        journal = RunJournal(name="optimize")
        evaluated = hill_climb(
            problem,
            space,
            shielding_aware=shielding_aware,
            policy=policy,
            keep_going=keep_going,
            journal=journal,
            cache=cache,
            **solve_options,
        )
        failures = journal.failures()
    if not evaluated:
        raise RunnerError(
            "architecture search: every candidate failed; "
            "see the run journal for per-candidate errors"
        )
    best = max(
        evaluated, key=lambda c: (c.result.rank, -c.metal_layers)
    )
    return OptimizationResult(
        best=best,
        evaluated=tuple(evaluated),
        pareto=tuple(pareto_front(evaluated)),
        failures=failures,
        journal=journal,
    )
