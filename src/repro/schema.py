"""Versioned wire schema: typed requests and responses (v1).

Every entry point that accepts "solve this architecture" parameters —
the HTTP service (:mod:`repro.service`), the CLI, persistence, and the
memoization layer — constructs the typed requests defined here instead
of ad-hoc keyword dicts.  The schema gives three guarantees:

* **validated** — :meth:`RankRequest.from_wire` rejects unknown keys,
  wrong types, non-finite numbers, and unsupported
  ``schema_version`` values with a :class:`~repro.errors.SchemaError`
  naming the offending field;
* **canonical** — :meth:`~RankRequest.canonicalize` produces one
  normalized plain-JSON form per *meaning*: defaults are materialized,
  keys are sorted, numbers are coerced to their field's type, and
  unit-suffixed spellings (``"500MHz"``, ``"0.5GHz"``) collapse to the
  same hertz value.  :meth:`~RankRequest.canonical_json` is therefore
  byte-stable: two requests that mean the same thing serialize to the
  same bytes;
* **fingerprinted** — :meth:`~RankRequest.fingerprint` is the SHA-256
  of the canonical bytes (the same digest discipline as
  :func:`repro.core.precompute.fingerprint`), which is the memoization
  key the service's result cache and in-flight request dedup use.

Non-semantic transport fields — ``deadline_s`` (per-request SLO) and
``backend`` (kernel selection; results are backend-identical) — are
accepted on the wire but *excluded* from the canonical form, so they
never fragment the cache.

The wire format is versioned: every request and response carries
``schema_version`` (currently :data:`SCHEMA_VERSION`).  Requests
omitting it are assumed current; requests carrying an unsupported
version are rejected, never guessed at.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Type, TypeVar

from .core.precompute import fingerprint_bytes
from .errors import SchemaError
from .units import GHZ, KILO, MHZ, TERA

#: Version tag written into (and required compatible by) every wire
#: payload this module produces or parses.
SCHEMA_VERSION = 1

#: Knobs a sweep may vary, mirroring the paper's Table 4 columns.
SWEEP_KNOBS = ("K", "M", "C", "R")

#: Registered rank solvers a request may ask for (the service refuses
#: the test-only exhaustive/reference solvers: unbounded runtime).
REQUEST_SOLVERS = ("dp", "greedy")

_FREQUENCY_SUFFIXES: Tuple[Tuple[str, float], ...] = (
    ("THz", TERA),
    ("GHz", GHZ),
    ("MHz", MHZ),
    ("kHz", KILO),
    ("Hz", 1.0),
)

T = TypeVar("T", bound="_Request")


# ---------------------------------------------------------------------------
# Field parsing helpers
# ---------------------------------------------------------------------------


def parse_frequency(value: object, field_name: str = "frequency") -> float:
    """Normalize a frequency to hertz.

    Accepts a positive number (hertz) or a string with an optional SI
    suffix: ``"500MHz"``, ``"0.5 GHz"``, ``"2e9"``.  Raises
    :class:`~repro.errors.SchemaError` on anything else — this is the
    unit normalization step of request canonicalization.
    """
    if isinstance(value, bool):
        raise SchemaError(f"{field_name}: expected a frequency, got {value!r}")
    if isinstance(value, (int, float)):
        return _finite_positive(float(value), field_name)
    if isinstance(value, str):
        text = value.strip()
        for suffix, scale in _FREQUENCY_SUFFIXES:
            if text.lower().endswith(suffix.lower()):
                number = text[: -len(suffix)].strip()
                try:
                    return _finite_positive(float(number) * scale, field_name)
                except ValueError:
                    break
        try:
            return _finite_positive(float(text), field_name)
        except ValueError:
            pass
        raise SchemaError(
            f"{field_name}: cannot parse frequency {value!r} "
            f"(use hertz, or a suffix like '500MHz' / '0.5GHz')"
        )
    raise SchemaError(f"{field_name}: expected a frequency, got {value!r}")


def _finite_positive(value: float, field_name: str) -> float:
    if not math.isfinite(value) or value <= 0:
        raise SchemaError(f"{field_name}: must be finite and > 0, got {value!r}")
    return value


def _as_float(value: object, field_name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{field_name}: expected a number, got {value!r}")
    result = float(value)
    if not math.isfinite(result):
        raise SchemaError(f"{field_name}: must be finite, got {value!r}")
    return result


def _as_positive_float(value: object, field_name: str) -> float:
    return _finite_positive(_as_float(value, field_name), field_name)


def _as_int(value: object, field_name: str, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"{field_name}: expected an integer, got {value!r}")
    if value < minimum:
        raise SchemaError(f"{field_name}: must be >= {minimum}, got {value!r}")
    return value


def _as_bool(value: object, field_name: str) -> bool:
    if not isinstance(value, bool):
        raise SchemaError(f"{field_name}: expected true/false, got {value!r}")
    return value


def _as_str(value: object, field_name: str) -> str:
    if not isinstance(value, str):
        raise SchemaError(f"{field_name}: expected a string, got {value!r}")
    return value


def _as_choice(
    value: object, field_name: str, choices: Sequence[str]
) -> str:
    text = _as_str(value, field_name)
    if text not in choices:
        raise SchemaError(
            f"{field_name}: {text!r} is not one of {tuple(choices)!r}"
        )
    return text


def _as_optional_count(value: object, field_name: str) -> Optional[int]:
    """``None``/``0`` both mean "disabled" and canonicalize to ``None``."""
    if value is None:
        return None
    count = _as_int(value, field_name, minimum=0)
    return count or None


def _require(payload: Mapping[str, object], name: str, what: str) -> object:
    if name not in payload:
        raise SchemaError(f"{what}: missing required field {name!r}")
    return payload[name]


def _check_schema_version(payload: Mapping[str, object]) -> None:
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"schema_version: unsupported value {version!r} "
            f"(this build speaks version {SCHEMA_VERSION})"
        )


def _reject_unknown(
    payload: Mapping[str, object], known: Sequence[str], what: str
) -> None:
    unknown = sorted(set(payload) - set(known) - {"schema_version"})
    if unknown:
        raise SchemaError(
            f"{what}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"known fields: {', '.join(sorted(known))}"
        )


def canonical_json_bytes(payload: Mapping[str, object]) -> bytes:
    """The canonical serialization: sorted keys, no whitespace, ASCII."""
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    ).encode("ascii")


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Request:
    """Shared problem/solve fields of every v1 request.

    The defaults are the paper's Table 2 baseline, mirroring
    :func:`repro.api.baseline_problem`; a canonical request always
    carries every field explicitly.
    """

    node: str = "130nm"
    gates: int = 1_000_000
    clock_frequency: float = 500.0 * MHZ
    repeater_fraction: float = 0.4
    permittivity: float = 3.9
    miller_factor: float = 2.0
    rent_exponent: float = 0.6
    local_pairs: int = 1
    semi_global_pairs: int = 2
    global_pairs: int = 1
    target_kind: str = "linear"
    solver: str = "dp"
    bunch_size: Optional[int] = 10_000
    max_groups: Optional[int] = None
    repeater_units: int = 512
    #: Transport-only: per-request wall-clock budget in seconds.
    deadline_s: Optional[float] = None
    #: Transport-only: DP kernel hint (results are backend-identical).
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        _finite_positive(self.clock_frequency, "clock_frequency")
        if self.gates < 1:
            raise SchemaError(f"gates: must be >= 1, got {self.gates!r}")
        if not 0.0 < self.repeater_fraction <= 1.0:
            raise SchemaError(
                f"repeater_fraction: must be in (0, 1], "
                f"got {self.repeater_fraction!r}"
            )
        if self.permittivity < 1.0:
            raise SchemaError(
                f"permittivity: must be >= 1.0 (vacuum), "
                f"got {self.permittivity!r}"
            )
        if not 0.0 < self.rent_exponent < 1.0:
            raise SchemaError(
                f"rent_exponent: must be in (0, 1), got {self.rent_exponent!r}"
            )
        if self.solver not in REQUEST_SOLVERS:
            raise SchemaError(
                f"solver: {self.solver!r} is not one of {REQUEST_SOLVERS!r}"
            )
        if self.local_pairs < 1:
            raise SchemaError(
                f"local_pairs: must be >= 1, got {self.local_pairs!r}"
            )
        if self.repeater_units < 1:
            raise SchemaError(
                f"repeater_units: must be >= 1, got {self.repeater_units!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SchemaError(
                f"deadline_s: must be > 0, got {self.deadline_s!r}"
            )
        if self.backend is not None and self.backend not in ("numpy", "python"):
            raise SchemaError(
                f"backend: {self.backend!r} is not one of ('numpy', 'python')"
            )

    # -- parsing -------------------------------------------------------

    @classmethod
    def _base_kwargs(cls, payload: Mapping[str, object]) -> Dict[str, Any]:
        """Parse the shared fields out of a wire payload."""
        kwargs: Dict[str, Any] = {}
        if "node" in payload:
            kwargs["node"] = _as_str(payload["node"], "node")
        if "gates" in payload:
            kwargs["gates"] = _as_int(payload["gates"], "gates", minimum=1)
        if "clock_frequency" in payload:
            kwargs["clock_frequency"] = parse_frequency(
                payload["clock_frequency"], "clock_frequency"
            )
        for name in ("repeater_fraction", "permittivity", "miller_factor",
                     "rent_exponent"):
            if name in payload:
                kwargs[name] = _as_positive_float(payload[name], name)
        if "local_pairs" in payload:
            kwargs["local_pairs"] = _as_int(
                payload["local_pairs"], "local_pairs", minimum=1
            )
        for name in ("semi_global_pairs", "global_pairs"):
            if name in payload:
                kwargs[name] = _as_int(payload[name], name, minimum=0)
        if "target_kind" in payload:
            kwargs["target_kind"] = _as_choice(
                payload["target_kind"], "target_kind", ("linear", "quadratic")
            )
        if "solver" in payload:
            kwargs["solver"] = _as_choice(
                payload["solver"], "solver", REQUEST_SOLVERS
            )
        if "bunch_size" in payload:
            kwargs["bunch_size"] = _as_optional_count(
                payload["bunch_size"], "bunch_size"
            )
        if "max_groups" in payload:
            kwargs["max_groups"] = _as_optional_count(
                payload["max_groups"], "max_groups"
            )
        if "repeater_units" in payload:
            kwargs["repeater_units"] = _as_int(
                payload["repeater_units"], "repeater_units", minimum=1
            )
        if payload.get("deadline_s") is not None:
            kwargs["deadline_s"] = _as_positive_float(
                payload["deadline_s"], "deadline_s"
            )
        if payload.get("backend") is not None:
            kwargs["backend"] = _as_choice(
                payload["backend"], "backend", ("numpy", "python")
            )
        return kwargs

    @classmethod
    def _known_fields(cls) -> Tuple[str, ...]:
        return tuple(spec.name for spec in fields(cls))

    @classmethod
    def from_wire(cls: Type[T], payload: Mapping[str, object]) -> T:
        """Parse and validate a wire payload into a typed request."""
        if not isinstance(payload, Mapping):
            raise SchemaError(
                f"{cls.__name__}: expected a JSON object, got {payload!r}"
            )
        _check_schema_version(payload)
        _reject_unknown(payload, cls._known_fields(), cls.__name__)
        return cls(**cls._parse_kwargs(payload))

    @classmethod
    def _parse_kwargs(cls, payload: Mapping[str, object]) -> Dict[str, Any]:
        return cls._base_kwargs(payload)

    # -- canonical form ------------------------------------------------

    def _canonical_base(self) -> Dict[str, object]:
        """Shared semantic fields with normalized value types.

        Transport-only fields (``deadline_s``, ``backend``) are
        deliberately absent: they change how a request is *served*,
        never what it *means*, and must not fragment the memo cache.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "node": self.node,
            "gates": int(self.gates),
            "clock_frequency": float(self.clock_frequency),
            "repeater_fraction": float(self.repeater_fraction),
            "permittivity": float(self.permittivity),
            "miller_factor": float(self.miller_factor),
            "rent_exponent": float(self.rent_exponent),
            "local_pairs": int(self.local_pairs),
            "semi_global_pairs": int(self.semi_global_pairs),
            "global_pairs": int(self.global_pairs),
            "target_kind": self.target_kind,
            "solver": self.solver,
            "bunch_size": self.bunch_size,
            "max_groups": self.max_groups,
            "repeater_units": int(self.repeater_units),
        }

    def canonicalize(self) -> Dict[str, object]:
        """The canonical plain-JSON form: sorted keys, defaults filled,
        values unit-normalized; byte-stable once serialized."""
        return dict(sorted(self._canonical_base().items()))

    def canonical_json(self) -> bytes:
        """Canonical bytes: two equal-meaning requests serialize equal."""
        return canonical_json_bytes(self.canonicalize())

    def fingerprint(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the memoization key."""
        return fingerprint_bytes(self.canonical_json())

    def problem_kwargs(self) -> Dict[str, Any]:
        """Keywords for :func:`repro.api.baseline_problem`."""
        return {
            "clock_frequency": self.clock_frequency,
            "repeater_fraction": self.repeater_fraction,
            "permittivity": self.permittivity,
            "miller_factor": self.miller_factor,
            "rent_exponent": self.rent_exponent,
            "local_pairs": self.local_pairs,
            "semi_global_pairs": self.semi_global_pairs,
            "global_pairs": self.global_pairs,
            "target_kind": self.target_kind,
        }

    def solve_kwargs(self) -> Dict[str, Any]:
        """Keywords for :func:`repro.api.compute_rank` (sans deadline)."""
        return {
            "solver": self.solver,
            "bunch_size": self.bunch_size,
            "max_groups": self.max_groups,
            "repeater_units": self.repeater_units,
            "backend": self.backend,
        }


@dataclass(frozen=True)
class RankRequest(_Request):
    """``POST /v1/rank``: one rank computation."""


@dataclass(frozen=True)
class SweepRequest(_Request):
    """``POST /v1/sweep``: one Table 4 knob swept over given values.

    ``allow_partial`` is transport-only: when the request deadline
    expires mid-sweep, ``True`` returns the completed prefix marked
    ``partial`` (and skips memoization), ``False`` answers 504.
    """

    knob: str = "C"
    values: Tuple[float, ...] = ()
    allow_partial: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.knob not in SWEEP_KNOBS:
            raise SchemaError(
                f"knob: {self.knob!r} is not one of {SWEEP_KNOBS!r}"
            )
        if not self.values:
            raise SchemaError("values: a sweep needs at least one value")

    @classmethod
    def _parse_kwargs(cls, payload: Mapping[str, object]) -> Dict[str, Any]:
        kwargs = cls._base_kwargs(payload)
        if "knob" in payload:
            kwargs["knob"] = _as_choice(payload["knob"], "knob", SWEEP_KNOBS)
        if "values" in payload:
            raw = payload["values"]
            if not isinstance(raw, (list, tuple)):
                raise SchemaError(
                    f"values: expected a list of numbers, got {raw!r}"
                )
            # Clock sweeps ("C") take unit-suffixed spellings per value.
            knob = kwargs.get("knob", "C")
            parser = parse_frequency if knob == "C" else _as_positive_float
            kwargs["values"] = tuple(
                parser(item, f"values[{i}]") for i, item in enumerate(raw)
            )
        if "allow_partial" in payload:
            kwargs["allow_partial"] = _as_bool(
                payload["allow_partial"], "allow_partial"
            )
        return kwargs

    def _canonical_base(self) -> Dict[str, object]:
        base = super()._canonical_base()
        base["knob"] = self.knob
        base["values"] = [float(v) for v in self.values]
        return base

    def point_request(self, value: float) -> RankRequest:
        """The :class:`RankRequest` of one sweep point.

        Sweep points share the service's *point-level* memo cache with
        plain ``/v1/rank`` traffic because both canonicalize to the
        same request.
        """
        override = {
            "K": "permittivity",
            "M": "miller_factor",
            "C": "clock_frequency",
            "R": "repeater_fraction",
        }[self.knob]
        kwargs: Dict[str, Any] = {
            spec.name: getattr(self, spec.name)
            for spec in fields(RankRequest)
        }
        kwargs[override] = float(value)
        return RankRequest(**kwargs)


@dataclass(frozen=True)
class CornersRequest(_Request):
    """``POST /v1/corners``: sign-off rank across process corners.

    ``corners`` selects by name from the standard five-corner set
    (:data:`repro.analysis.corners.STANDARD_CORNERS`); empty means all.
    """

    corners: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        known = tuple(c.name for c in _standard_corners())
        for name in self.corners:
            if name not in known:
                raise SchemaError(
                    f"corners: unknown corner {name!r}; choose from {known!r}"
                )
        if len(set(self.corners)) != len(self.corners):
            raise SchemaError(f"corners: duplicate names in {self.corners!r}")

    @classmethod
    def _parse_kwargs(cls, payload: Mapping[str, object]) -> Dict[str, Any]:
        kwargs = cls._base_kwargs(payload)
        if "corners" in payload:
            raw = payload["corners"]
            if not isinstance(raw, (list, tuple)):
                raise SchemaError(
                    f"corners: expected a list of corner names, got {raw!r}"
                )
            kwargs["corners"] = tuple(
                _as_str(item, f"corners[{i}]") for i, item in enumerate(raw)
            )
        return kwargs

    def _canonical_base(self) -> Dict[str, object]:
        base = super()._canonical_base()
        # Selection is a set; canonical order is the standard-set order.
        selected = self.selected_corner_names()
        base["corners"] = list(selected)
        return base

    def selected_corner_names(self) -> Tuple[str, ...]:
        """Requested corners in standard-set order (empty = all)."""
        standard = tuple(c.name for c in _standard_corners())
        if not self.corners:
            return standard
        wanted = set(self.corners)
        return tuple(name for name in standard if name in wanted)


@dataclass(frozen=True)
class OptimizeRequest(_Request):
    """``POST /v1/optimize``: architecture search over a design space."""

    local_pairs_choices: Tuple[int, ...] = (1, 2)
    semi_global_pairs_choices: Tuple[int, ...] = (1, 2, 3)
    global_pairs_choices: Tuple[int, ...] = (1, 2)
    permittivities: Tuple[float, ...] = (3.9, 3.6, 2.8)
    miller_factors: Tuple[float, ...] = (2.0, 1.0)
    max_metal_layers: int = 12
    exhaustive_limit: int = 128

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("local_pairs_choices", "semi_global_pairs_choices",
                     "global_pairs_choices", "permittivities",
                     "miller_factors"):
            if not getattr(self, name):
                raise SchemaError(f"{name}: must not be empty")
        if min(self.local_pairs_choices) < 1:
            raise SchemaError(
                f"local_pairs_choices: must all be >= 1, "
                f"got {self.local_pairs_choices!r}"
            )
        if self.max_metal_layers < 2:
            raise SchemaError(
                f"max_metal_layers: must be >= 2, got {self.max_metal_layers!r}"
            )
        if self.exhaustive_limit < 1:
            raise SchemaError(
                f"exhaustive_limit: must be >= 1, got {self.exhaustive_limit!r}"
            )

    @classmethod
    def _parse_kwargs(cls, payload: Mapping[str, object]) -> Dict[str, Any]:
        kwargs = cls._base_kwargs(payload)
        for name in ("local_pairs_choices", "semi_global_pairs_choices",
                     "global_pairs_choices"):
            if name in payload:
                raw = payload[name]
                if not isinstance(raw, (list, tuple)):
                    raise SchemaError(
                        f"{name}: expected a list of integers, got {raw!r}"
                    )
                kwargs[name] = tuple(
                    _as_int(item, f"{name}[{i}]", minimum=0)
                    for i, item in enumerate(raw)
                )
        for name in ("permittivities", "miller_factors"):
            if name in payload:
                raw = payload[name]
                if not isinstance(raw, (list, tuple)):
                    raise SchemaError(
                        f"{name}: expected a list of numbers, got {raw!r}"
                    )
                kwargs[name] = tuple(
                    _as_positive_float(item, f"{name}[{i}]")
                    for i, item in enumerate(raw)
                )
        for name in ("max_metal_layers", "exhaustive_limit"):
            if name in payload:
                kwargs[name] = _as_int(payload[name], name, minimum=1)
        return kwargs

    def _canonical_base(self) -> Dict[str, object]:
        base = super()._canonical_base()
        base["local_pairs_choices"] = sorted(set(self.local_pairs_choices))
        base["semi_global_pairs_choices"] = sorted(
            set(self.semi_global_pairs_choices)
        )
        base["global_pairs_choices"] = sorted(set(self.global_pairs_choices))
        base["permittivities"] = sorted(
            {float(k) for k in self.permittivities}, reverse=True
        )
        base["miller_factors"] = sorted(
            {float(m) for m in self.miller_factors}, reverse=True
        )
        base["max_metal_layers"] = int(self.max_metal_layers)
        base["exhaustive_limit"] = int(self.exhaustive_limit)
        return base


def _standard_corners() -> Tuple[Any, ...]:
    # Deferred: repro.analysis pulls the runner stack, which this
    # module must not load at import time.
    from .analysis.corners import STANDARD_CORNERS

    return tuple(STANDARD_CORNERS)


#: Endpoint name -> request type, used by the service router and the
#: golden-file round-trip tests.
REQUEST_TYPES: Dict[str, Type[_Request]] = {
    "rank": RankRequest,
    "sweep": SweepRequest,
    "corners": CornersRequest,
    "optimize": OptimizeRequest,
}


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RankResponse:
    """Wire form of one rank result.

    Deliberately deterministic: no timing or cache metadata lives in
    the body (those travel as HTTP headers), so a memoized replay is
    byte-identical to the original response.
    """

    fingerprint: str
    rank: int
    normalized: float
    total_wires: int
    fits: bool
    error_bound: int
    solver: str

    @classmethod
    def from_result(cls, fingerprint: str, result: Any) -> "RankResponse":
        """Build from a :class:`repro.core.rank.RankResult`."""
        return cls(
            fingerprint=fingerprint,
            rank=int(result.rank),
            normalized=float(result.normalized),
            total_wires=int(result.total_wires),
            fits=bool(result.fits),
            error_bound=int(result.error_bound),
            solver=str(result.solver),
        )

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "RankResponse":
        """Parse a wire payload (round-trip / client use)."""
        _check_schema_version(payload)
        _reject_unknown(
            payload,
            ("fingerprint", "rank", "normalized", "total_wires", "fits",
             "error_bound", "solver"),
            cls.__name__,
        )
        name = cls.__name__
        return cls(
            fingerprint=_as_str(_require(payload, "fingerprint", name),
                                "fingerprint"),
            rank=_as_int(_require(payload, "rank", name), "rank"),
            normalized=_as_float(_require(payload, "normalized", name),
                                 "normalized"),
            total_wires=_as_int(_require(payload, "total_wires", name),
                                "total_wires"),
            fits=_as_bool(_require(payload, "fits", name), "fits"),
            error_bound=_as_int(_require(payload, "error_bound", name),
                                "error_bound"),
            solver=_as_str(_require(payload, "solver", name), "solver"),
        )

    def to_wire(self) -> Dict[str, object]:
        """Plain-JSON payload, canonical key order."""
        return dict(
            sorted(
                {
                    "schema_version": SCHEMA_VERSION,
                    "fingerprint": self.fingerprint,
                    "rank": self.rank,
                    "normalized": float(self.normalized),
                    "total_wires": self.total_wires,
                    "fits": self.fits,
                    "error_bound": self.error_bound,
                    "solver": self.solver,
                }.items()
            )
        )

    def canonical_json(self) -> bytes:
        """Byte-stable serialization of :meth:`to_wire`."""
        return canonical_json_bytes(self.to_wire())


__all__ = [
    "SCHEMA_VERSION",
    "SWEEP_KNOBS",
    "REQUEST_SOLVERS",
    "REQUEST_TYPES",
    "RankRequest",
    "SweepRequest",
    "CornersRequest",
    "OptimizeRequest",
    "RankResponse",
    "canonical_json_bytes",
    "fingerprint_bytes",
    "parse_frequency",
]
