"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A model object was constructed with inconsistent or invalid parameters.

    Examples: a layer-pair with non-positive wire width, a technology node
    whose metal stack is empty, a repeater budget fraction outside [0, 1).
    """


class UnitsError(ReproError):
    """A quantity was supplied in an impossible range for its physical unit."""


class WLDError(ReproError):
    """A wire length distribution is malformed.

    Raised for negative counts, non-positive lengths, empty distributions
    where a non-empty one is required, or coarsening parameters that cannot
    be honoured (e.g. a bunch size of zero).
    """


class DelayModelError(ReproError):
    """A delay computation was requested with parameters outside the model.

    Examples: non-positive wire length, a repeater count of zero where the
    Otten--Brayton formula requires at least one stage, or an optimal sizing
    query on a layer-pair with zero per-unit-length resistance.
    """


class AssignmentError(ReproError):
    """Wire assignment bookkeeping was driven into an invalid state.

    This signals misuse of the assignment engines (e.g. assigning to a
    layer-pair index outside the architecture), *not* mere infeasibility:
    infeasible assignments are reported through boolean results, mirroring
    the paper's M'/M'' oracles.
    """


class RankComputationError(ReproError):
    """The rank solver was configured inconsistently.

    Examples: a problem whose WLD and architecture use different die areas,
    zero repeater-area discretization cells, or an unknown solver name.
    """
