"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A model object was constructed with inconsistent or invalid parameters.

    Examples: a layer-pair with non-positive wire width, a technology node
    whose metal stack is empty, a repeater budget fraction outside [0, 1).
    """


class UnitsError(ReproError):
    """A quantity was supplied in an impossible range for its physical unit."""


class WLDError(ReproError):
    """A wire length distribution is malformed.

    Raised for negative counts, non-positive lengths, empty distributions
    where a non-empty one is required, or coarsening parameters that cannot
    be honoured (e.g. a bunch size of zero).
    """


class DelayModelError(ReproError):
    """A delay computation was requested with parameters outside the model.

    Examples: non-positive wire length, a repeater count of zero where the
    Otten--Brayton formula requires at least one stage, or an optimal sizing
    query on a layer-pair with zero per-unit-length resistance.
    """


class AssignmentError(ReproError):
    """Wire assignment bookkeeping was driven into an invalid state.

    This signals misuse of the assignment engines (e.g. assigning to a
    layer-pair index outside the architecture), *not* mere infeasibility:
    infeasible assignments are reported through boolean results, mirroring
    the paper's M'/M'' oracles.
    """


class RankComputationError(ReproError):
    """The rank solver was configured inconsistently.

    Examples: a problem whose WLD and architecture use different die areas,
    zero repeater-area discretization cells, or an unknown solver name.
    """


class RunnerError(ReproError):
    """A fault-tolerant batch run could not produce a result.

    Raised by :mod:`repro.runner` when a point exhausts its retry budget
    in strict mode, when a batch completes with zero successful points,
    or when the executor itself is misconfigured (e.g. duplicate point
    keys).  Per-point failures under ``keep_going`` are *not* raised;
    they are recorded as :class:`repro.runner.PointFailure` entries.
    """


class CheckpointError(RunnerError):
    """A checkpoint file is missing, malformed, or from a different run.

    Examples: unparseable JSON, a mismatched ``FORMAT_VERSION``, or a
    checkpoint written by a batch with a different run name.
    """


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint parsed but failed its embedded integrity check.

    Every checkpoint generation embeds a SHA-256 digest over its
    canonical JSON body; a mismatch means the bytes on disk were
    corrupted *after* the atomic write completed (bad disk, manual
    edit, injected fault).  The loader falls back to the previous
    generation (``<path>.prev``) when one exists; this error surfaces
    only when no generation survives.
    """


class FaultInjectionError(ReproError):
    """A fault-injection schedule is malformed or cannot be loaded.

    Raised while *parsing* a schedule (bad JSON in
    ``REPRO_FAULT_SCHEDULE``, an unknown fault kind, a missing schedule
    file) — never by an injected fault itself, which raises
    :class:`InjectedFault`.
    """


class SchemaError(ReproError):
    """A wire-schema payload failed validation.

    Raised by :mod:`repro.schema` for unknown fields, wrong types,
    non-finite numbers, or an unsupported ``schema_version``; the
    message always names the offending field.  The HTTP service maps
    it to a ``400 Bad Request``.
    """


class InjectedFault(ReproError):
    """An exception deliberately raised by the fault-injection subsystem.

    Subclasses :class:`ReproError`, so the default
    :class:`repro.runner.RetryPolicy` treats it as retryable — exactly
    like the transient evaluation failures it stands in for.
    """


class DeadlineExceeded(RunnerError):
    """A cooperative wall-clock deadline expired mid-computation.

    The DP solver checks the deadline between state expansions, so the
    exception surfaces promptly without killing the process; the runner
    treats it like any other retryable failure (typically retrying with
    a coarser bunch size).
    """
