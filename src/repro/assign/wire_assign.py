"""The M' oracle: wire assignment to one layer-pair with delay (Alg. 4).

Given a contiguous block of rank-ordered wire groups, one layer-pair,
the via blockage context from above, and an available repeater area,
``assign_with_delay`` decides whether every wire of the block fits in
the pair *and* meets its target delay using repeaters of the pair's
uniform optimal size, exactly as the paper's ``wire_assign``:

* available area is ``B_j = A_d - A_v,j-1 - A_u,j-1`` (wire + repeater
  via blockage from pairs above),
* wires are assigned longest-first; each failing wire receives repeaters
  incrementally until it meets its target or the repeater area runs out,
* the oracle reports failure if area or repeater budget is exhausted.

The incremental insertion of Algorithm 4 steps 8-11 is replaced by the
closed-form minimal stage count (precomputed in the tables) — the two
are equivalent because inserting uniform repeaters one at a time stops
exactly at the minimal feasible count.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import AssignmentError
from .tables import AssignmentTables


@dataclass(frozen=True)
class DelayAssignmentResult:
    """Outcome of assigning a block of groups to one pair with delay.

    Attributes
    ----------
    feasible:
        True iff every wire fit and met its target within the budget.
    wire_area_used:
        Routing area consumed in the pair, square metres.
    repeater_area_used:
        Repeater silicon area consumed from the budget, square metres.
    repeaters_inserted:
        Number of repeaters physically inserted (for downstream via
        blockage accounting).
    leftover_capacity:
        Routing area remaining in the pair after the block (only
        meaningful when feasible), square metres.
    """

    feasible: bool
    wire_area_used: float = 0.0
    repeater_area_used: float = 0.0
    repeaters_inserted: int = 0
    leftover_capacity: float = 0.0


_INFEASIBLE = DelayAssignmentResult(feasible=False)


def assign_with_delay(
    tables: AssignmentTables,
    pair: int,
    start_group: int,
    end_group: int,
    wires_above: int,
    repeaters_above: float,
    repeater_area_available: float,
) -> DelayAssignmentResult:
    """Assign groups ``[start_group, end_group)`` to ``pair`` with delay.

    Parameters
    ----------
    tables:
        Precomputed assignment tables.
    pair:
        0-based layer-pair index (0 = topmost).
    start_group, end_group:
        Rank-order group slice to assign; must satisfy
        ``0 <= start_group <= end_group <= G``.
    wires_above:
        Wires already assigned to pairs above (via blockage, the paper's
        ``i'_1`` feeding ``A_v,j-1``).
    repeaters_above:
        Repeaters already inserted in pairs above (the paper's ``z_r1``
        feeding ``A_u,j-1``).
    repeater_area_available:
        The paper's ``r_3``: repeater area this block may consume.

    Returns
    -------
    DelayAssignmentResult
        ``feasible`` is False when any wire cannot meet its target on
        this pair at any repeater count, when the block's wire area
        exceeds the blockage-adjusted capacity, or when the repeater
        area demanded exceeds ``repeater_area_available``.
    """
    num_groups = tables.num_groups
    if not 0 <= pair < tables.num_pairs:
        raise AssignmentError(
            f"pair index {pair} out of range for {tables.num_pairs} pairs"
        )
    if not 0 <= start_group <= end_group <= num_groups:
        raise AssignmentError(
            f"invalid group slice [{start_group}, {end_group}) for "
            f"{num_groups} groups"
        )
    if repeater_area_available < 0:
        raise AssignmentError(
            f"repeater area must be non-negative, got {repeater_area_available!r}"
        )

    capacity = tables.capacity(pair, wires_above, repeaters_above)
    if start_group == end_group:
        return DelayAssignmentResult(
            feasible=True, leftover_capacity=capacity
        )

    # Every group in the slice must be able to meet its target on this pair.
    if tables.next_infeasible[pair][start_group] < end_group:
        return _INFEASIBLE

    wire_area = float(
        tables.cum_wire_area[pair][end_group] - tables.cum_wire_area[pair][start_group]
    )
    if wire_area > capacity:
        return _INFEASIBLE

    rep_area = float(
        tables.cum_rep_area[pair][end_group] - tables.cum_rep_area[pair][start_group]
    )
    if rep_area > repeater_area_available:
        return _INFEASIBLE

    repeaters = int(
        tables.cum_inserted[pair][end_group] - tables.cum_inserted[pair][start_group]
    )
    return DelayAssignmentResult(
        feasible=True,
        wire_area_used=wire_area,
        repeater_area_used=rep_area,
        repeaters_inserted=repeaters,
        leftover_capacity=capacity - wire_area,
    )
