"""Wire assignment engines.

This package implements the paper's two feasibility oracles and the
precomputed tables they (and the rank solvers) run on:

* :mod:`repro.assign.tables` — per-(layer-pair, wire-group) areas,
  repeater demands and via footprints, computed once per problem,
* :mod:`repro.assign.wire_assign` — the M' oracle (paper Algorithm 4):
  assign a block of wires to one layer-pair *with* delay requirements,
  inserting uniform-size repeaters from a budget,
* :mod:`repro.assign.greedy_assign` — the M'' oracle (paper Algorithm 5,
  optimal by its Lemma 1): pack the remaining wires bottom-up into the
  remaining layer-pairs *ignoring* delay, with via-blockage reservations
  for wires destined to higher pairs.
"""

from .greedy_assign import PairFill, pack_suffix, pack_suffix_detail
from .tables import AssignmentTables, build_tables
from .wire_assign import DelayAssignmentResult, assign_with_delay

__all__ = [
    "AssignmentTables",
    "build_tables",
    "PairFill",
    "pack_suffix",
    "pack_suffix_detail",
    "DelayAssignmentResult",
    "assign_with_delay",
]
