"""The M'' oracle: bottom-up packing without delay (paper Algorithm 5).

``pack_suffix`` decides whether the remaining (shorter) wires of the WLD
fit into the remaining (lower) layer-pairs when delay requirements are
ignored.  Packing is greedy bottom-up — shortest wires into the lowest
pair first — which the paper's Lemma 1 proves optimal: the lowest pairs
see the least via blockage from the packing itself, and moving any wire
downward only relaxes the constraints.

Blockage bookkeeping follows Algorithm 5 exactly:

* the capacity of pair ``q`` is reduced by the via footprints of all
  prefix wires and repeaters living *above* the packed region
  (``B_q = A_d - ((z_r1 + z_r2) + v * i) * v_a``), and
* while packing pair ``q``, area is *reserved* for the vias of suffix
  wires not yet assigned — they will necessarily land above ``q`` and
  punch through it (``A_v,q = (p - i) * v * v_a``).

The per-wire while-loop of Algorithm 5 is replaced by a closed-form
"how many wires of this group still fit" computation per group, which
is exact because all wires of a group share one length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import AssignmentError
from .tables import AssignmentTables


@dataclass(frozen=True)
class PairFill:
    """Suffix wires packed into one layer-pair by the M'' packer.

    Attributes
    ----------
    pair:
        0-based layer-pair index (0 = topmost).
    wires:
        Suffix wires placed in the pair.
    area_used:
        Routing area they consume, square metres.
    """

    pair: int
    wires: int
    area_used: float


def _max_assignable(
    capacity: float,
    area_used: float,
    per_wire_area: float,
    via_footprint: float,
    wires_remaining: int,
    group_remaining: int,
) -> int:
    """How many wires of the current group fit in the current pair.

    Mirrors Algorithm 5's check-before-assign loop: wire ``x`` (1-based
    within this computation) is assignable iff

        area_used + x * per_wire_area
        + (wires_remaining - x) * via_footprint  <=  capacity

    and the loop stops at the first failure.  The left side is monotone
    in ``x`` with slope ``per_wire_area - via_footprint``; both slope
    signs reduce to closed forms.
    """
    budget = capacity - area_used - wires_remaining * via_footprint
    slope = per_wire_area - via_footprint
    if slope <= 0:
        # Each assignment frees net area: if the first wire fits, all of
        # the group's remainder does; otherwise the loop stops at once.
        first_fits = budget >= slope  # x = 1 term
        return group_remaining if first_fits else 0
    fit = int(budget // slope)
    return max(0, min(group_remaining, fit))


def pack_suffix_detail(
    tables: AssignmentTables,
    start_group: int,
    top_pair: int,
    wires_above: int,
    repeaters_above: float,
    top_pair_leftover: Optional[float] = None,
) -> Optional[List[PairFill]]:
    """Like :func:`pack_suffix` but returning the placement.

    Returns the per-pair fills (bottom pair first — the packing order)
    when the suffix fits, or ``None`` when it does not.  Used by
    assignment reports; the solvers call the boolean
    :func:`pack_suffix` on the hot path.
    """
    fills: List[PairFill] = []

    def record(pair: int, wires: int, area: float) -> None:
        if wires:
            fills.append(PairFill(pair=pair, wires=wires, area_used=area))

    feasible = _pack(
        tables,
        start_group,
        top_pair,
        wires_above,
        repeaters_above,
        top_pair_leftover,
        record,
    )
    return fills if feasible else None


def pack_suffix(
    tables: AssignmentTables,
    start_group: int,
    top_pair: int,
    wires_above: int,
    repeaters_above: float,
    top_pair_leftover: Optional[float] = None,
) -> bool:
    """Can groups ``[start_group, G)`` pack into pairs ``[top_pair, m)``?

    Parameters
    ----------
    tables:
        Precomputed assignment tables.
    start_group:
        First unassigned group (rank order); everything from here down
        is packed ignoring delay.
    top_pair:
        Highest pair available to the packing (0 = topmost).  Pairs
        above it hold the delay-meeting prefix.
    wires_above:
        Prefix wires assigned to pairs above ``top_pair`` *plus* any
        delay wires already inside ``top_pair`` when
        ``top_pair_leftover`` is given do NOT belong here — pass only
        wires whose vias cross the packed pairs from strictly above
        (for pair ``q > top_pair`` the caller's prefix count is applied
        uniformly, matching Algorithm 5's single ``i``).
    repeaters_above:
        Repeaters inserted in the prefix (each blocks one via footprint
        per packed pair).
    top_pair_leftover:
        If given, the remaining capacity of ``top_pair`` after its
        delay-meeting block (already blockage-adjusted); otherwise the
        pair's full blockage-adjusted capacity is used.

    Returns
    -------
    bool
        True iff every suffix wire is assigned — the value of the
        paper's ``M''``.
    """
    return _pack(
        tables,
        start_group,
        top_pair,
        wires_above,
        repeaters_above,
        top_pair_leftover,
        record=None,
    )


def _validate_range(
    tables: AssignmentTables, start_group: int, top_pair: int
) -> None:
    if not 0 <= start_group <= tables.num_groups:
        raise AssignmentError(
            f"start_group {start_group} out of range for "
            f"{tables.num_groups} groups"
        )
    if not 0 <= top_pair <= tables.num_pairs:
        raise AssignmentError(
            f"top_pair {top_pair} out of range for {tables.num_pairs} pairs"
        )


def _initial_state(tables: AssignmentTables, start_group: int):
    """Packing cursor at the shortest wire: (group, group_remaining, total)."""
    group = tables.num_groups - 1
    return (
        group,
        int(tables.counts[group]),
        int(tables.cum_wires[tables.num_groups] - tables.cum_wires[start_group]),
    )


def _fill_pair(
    tables: AssignmentTables,
    pair: int,
    capacity: float,
    start_group: int,
    group: int,
    group_remaining: int,
    total_remaining: int,
    record,
):
    """Pack one pair greedily; returns the advanced packing cursor."""
    via_footprint = tables.vias_per_wire * float(tables.via_area[pair])
    area_used = 0.0
    wires_here = 0
    while total_remaining > 0:
        per_wire_area = float(tables.lengths_m[group]) * float(
            tables.pair_pitch[pair]
        )
        fit = _max_assignable(
            capacity,
            area_used,
            per_wire_area,
            via_footprint,
            total_remaining,
            group_remaining,
        )
        if fit == 0:
            break  # pair is full; continue in the next pair up
        area_used += fit * per_wire_area
        wires_here += fit
        total_remaining -= fit
        group_remaining -= fit
        if group_remaining == 0:
            group -= 1
            if group < start_group:
                assert total_remaining == 0
                break
            group_remaining = int(tables.counts[group])
    if record is not None:
        record(pair, wires_here, area_used)
    return group, group_remaining, total_remaining


def _pack(
    tables: AssignmentTables,
    start_group: int,
    top_pair: int,
    wires_above: int,
    repeaters_above: float,
    top_pair_leftover: Optional[float],
    record,
) -> bool:
    """Algorithm 5 engine shared by the boolean and detailed fronts."""
    _validate_range(tables, start_group, top_pair)
    if start_group == tables.num_groups:
        return True  # nothing left to pack
    if top_pair == tables.num_pairs:
        return False  # wires remain but no pairs remain

    # Remaining wires per group, consumed shortest (last group) first.
    group, group_remaining, total_remaining = _initial_state(tables, start_group)

    for pair in range(tables.num_pairs - 1, top_pair - 1, -1):
        if total_remaining == 0:
            return True
        if pair == top_pair and top_pair_leftover is not None:
            capacity = top_pair_leftover
        else:
            capacity = tables.capacity(pair, wires_above, repeaters_above)
        if capacity <= 0:
            continue
        group, group_remaining, total_remaining = _fill_pair(
            tables,
            pair,
            capacity,
            start_group,
            group,
            group_remaining,
            total_remaining,
            record,
        )

    return total_remaining == 0


def pack_required_leftover(
    tables: AssignmentTables,
    start_group: int,
    top_pair: int,
    wires_above: int,
    repeaters_above: float,
) -> float:
    """Minimal ``top_pair_leftover`` that makes :func:`pack_suffix` succeed.

    The packing of every pair *below* ``top_pair`` uses the pairs' own
    blockage-adjusted capacities and never sees the leftover, so for a
    fixed ``(start_group, top_pair, wires_above, repeaters_above)`` state
    the suffix feasibility is a monotone threshold in the top pair's
    leftover capacity.  This computes the threshold in one pass: pack
    the lower pairs exactly as :func:`pack_suffix` would, then take the
    binding constraint of Algorithm 5's check-before-assign loop over
    the wires that remain for the top pair.

    Returns ``0.0`` when the suffix packs without the top pair at all.
    The DP solver memoizes this per ``(start_group, repeaters_above)``
    state to prune repeated failing pack checks (the threshold is also
    monotone non-decreasing in ``repeaters_above``: more prefix
    repeaters shrink every lower pair, leaving more for the top pair).

    Callers comparing a candidate leftover against the threshold should
    leave a small relative margin and fall back to :func:`pack_suffix`
    near the boundary: the closed-form constraint and the greedy loop
    can disagree by floating-point ulps at exact ties.
    """
    _validate_range(tables, start_group, top_pair)
    if start_group == tables.num_groups:
        return 0.0
    if top_pair >= tables.num_pairs:
        raise AssignmentError(
            f"top_pair {top_pair} out of range for {tables.num_pairs} pairs"
        )

    group, group_remaining, total_remaining = _initial_state(tables, start_group)
    for pair in range(tables.num_pairs - 1, top_pair, -1):
        if total_remaining == 0:
            return 0.0
        capacity = tables.capacity(pair, wires_above, repeaters_above)
        if capacity <= 0:
            continue
        group, group_remaining, total_remaining = _fill_pair(
            tables,
            pair,
            capacity,
            start_group,
            group,
            group_remaining,
            total_remaining,
            record=None,
        )
    if total_remaining == 0:
        return 0.0

    # Required capacity of the top pair: for each group, the binding
    # instant of Algorithm 5's loop — the x-th wire of the group needs
    #   area_used + x * per_wire_area + (remaining - x) * via_footprint
    # of capacity.  The left side is linear in x, so only the group's
    # first wire (slope <= 0) or last wire (slope > 0) can bind.
    via_footprint = tables.vias_per_wire * float(tables.via_area[top_pair])
    area_used = 0.0
    required = 0.0
    while total_remaining > 0:
        per_wire_area = float(tables.lengths_m[group]) * float(
            tables.pair_pitch[top_pair]
        )
        slope = per_wire_area - via_footprint
        if slope <= 0:
            bind = area_used + per_wire_area + (total_remaining - 1) * via_footprint
        else:
            bind = (
                area_used
                + total_remaining * via_footprint
                + group_remaining * slope
            )
        if bind > required:
            required = bind
        area_used += group_remaining * per_wire_area
        total_remaining -= group_remaining
        group -= 1
        if group < start_group:
            assert total_remaining == 0
            break
        group_remaining = int(tables.counts[group])
    return required
