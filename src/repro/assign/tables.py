"""Precomputed assignment tables.

Every rank solver needs the same per-(layer-pair, wire-group) quantities:
wire area, minimal repeater demand to meet the group's target delay, the
repeater silicon area that demand costs, and the via footprint the group
punches through lower pairs.  :func:`build_tables` computes them once,
vectorized, so the DP's inner loops are pure array arithmetic.

Conventions (shared with the whole library):

* layer-pair index 0 is the **topmost** pair;
* wire-group index 0 is the **longest** group (rank order);
* ``cum_*`` arrays have length ``G + 1`` with ``cum[g]`` = sum over
  groups ``0..g-1`` (so slices are ``cum[e] - cum[b]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arch.die import DieModel
from ..arch.stack import InterconnectArchitecture
from ..delay.ottenbrayton import wire_delay_batch
from ..delay.repeater import (
    min_stages_for_target_batch,
    optimal_repeater_size_batch,
)
from ..delay.target import TargetDelayModel
from ..errors import RankComputationError
from ..rc.models import stack_rc_arrays
from ..rc.via import DEFAULT_VIAS_PER_WIRE
from ..wld.distribution import WireLengthDistribution


@dataclass(frozen=True)
class AssignmentTables:
    """Everything the assignment engines and solvers read.

    Attributes
    ----------
    arch, die, wld:
        The problem's architecture, die model, and (coarsened) WLD.
    lengths_m:
        Physical group lengths in metres, shape ``(G,)``.
    counts:
        Wires per group, shape ``(G,)``.
    cum_wires:
        ``(G+1,)`` cumulative wire counts; ``cum_wires[g]`` is the rank
        of the last wire of group ``g-1``.
    targets:
        Per-group target delay in seconds, shape ``(G,)``.
    routing_capacity:
        Usable routing area per layer-pair before via blockage
        (``utilization * die_area``), square metres.
    repeater_budget_area:
        The paper's ``A_R`` in square metres.
    vias_per_wire:
        The paper's ``v``.
    via_area:
        ``(m,)`` blocked area ``v_a`` of one via in each pair.
    pair_pitch:
        ``(m,)`` wire pitch (W + S) per pair.
    repeater_size:
        ``(m,)`` Eq. (4) optimal repeater size per pair.
    repeater_unit_area:
        ``(m,)`` silicon area of one repeater in each pair
        (``size * min_inverter_area``).
    wire_area:
        ``(m, G)`` total routing area of each whole group on each pair.
    cum_wire_area:
        ``(m, G+1)`` cumulative group areas.
    stages:
        ``(m, G)`` budget-charged stage count per wire of each group on
        each pair: ``-1`` where no stage count meets the target, ``0``
        where the wire passes for free (only under the ``"free-bare"``
        driver policy, when the bare minimum-size driver already meets
        the target), else the minimal count of size-``s_opt,j`` stages.
        Under the default ``"budgeted"`` policy the upsized driver is a
        budgeted stage too — the paper's footnote 3 leaves driver sizing
        outside the gate-area budget, so it must come from the repeater
        allocation; this is the policy that reproduces the paper's
        linear-in-budget Table 4 ``R`` column.
    inserted:
        ``(m, G)`` repeaters *physically inserted along the wire* per
        wire (``max(stages - 1, 0)``) — this is what punches vias
        through lower pairs; the budget is charged for ``stages``.
    rep_area:
        ``(m, G)`` repeater budget area of each whole group
        (``count * stages * repeater_unit_area``); 0 where infeasible or
        free.
    cum_rep_area, cum_inserted:
        ``(m, G+1)`` cumulative repeater areas / inserted counts, with
        infeasible groups contributing ``+inf`` / large sentinels so a
        feasible slice is recognizable by a finite sum.
    next_infeasible:
        ``(m, G+1)``: ``next_infeasible[p][g]`` is the index of the
        first group ``>= g`` that cannot meet its target on pair ``p``
        (``G`` if none) — the hard ceiling on delay-prefix extension.
    """

    arch: InterconnectArchitecture
    die: DieModel
    wld: WireLengthDistribution
    lengths_m: np.ndarray
    counts: np.ndarray
    cum_wires: np.ndarray
    targets: np.ndarray
    routing_capacity: float
    repeater_budget_area: float
    vias_per_wire: int
    via_area: np.ndarray
    pair_pitch: np.ndarray
    repeater_size: np.ndarray
    repeater_unit_area: np.ndarray
    wire_area: np.ndarray
    cum_wire_area: np.ndarray
    stages: np.ndarray
    inserted: np.ndarray
    rep_area: np.ndarray
    cum_rep_area: np.ndarray
    cum_inserted: np.ndarray
    next_infeasible: np.ndarray
    driver_policy: str = "budgeted"

    @property
    def num_pairs(self) -> int:
        """The paper's ``m``."""
        return self.arch.num_pairs

    @property
    def num_groups(self) -> int:
        """Number of wire groups ``G`` in the (coarsened) WLD."""
        return int(self.counts.size)

    @property
    def total_wires(self) -> int:
        """The paper's ``n``."""
        return int(self.cum_wires[-1])

    def capacity(self, pair: int, wires_above: float, repeaters_above: float) -> float:
        """Routing area available in a pair given traffic from above.

        The paper's ``B_j = A_d - A_v,j-1 - A_u,j-1``: usable capacity
        minus via blockage from ``wires_above`` wires (``v`` vias each)
        and ``repeaters_above`` repeaters (one footprint each, following
        Algorithm 5 step 2).  Clamped at zero.
        """
        blocked = (
            repeaters_above + self.vias_per_wire * wires_above
        ) * float(self.via_area[pair])
        return max(0.0, self.routing_capacity - blocked)


def build_tables(
    arch: InterconnectArchitecture,
    die: DieModel,
    wld: WireLengthDistribution,
    target_model: TargetDelayModel,
    utilization: float = 1.0,
    vias_per_wire: int = DEFAULT_VIAS_PER_WIRE,
    max_stages_per_wire: Optional[int] = None,
    pair_capacity_factor: float = 2.0,
    driver_policy: str = "budgeted",
) -> AssignmentTables:
    """Precompute :class:`AssignmentTables` for one rank problem.

    Parameters
    ----------
    arch, die, wld:
        Architecture (top pair first), die model, and WLD in gate
        pitches (rank order).
    target_model:
        Maps physical wire length to target delay.
    utilization:
        Fraction of die area usable for routing per layer-pair, in
        ``(0, 1]``.  The paper uses the full ``A_d`` (1.0).
    vias_per_wire:
        The paper's ``v``.
    max_stages_per_wire:
        Optional cap modelling minimum repeater spacing.
    pair_capacity_factor:
        Routing area of one layer-pair in units of die area.  A pair is
        *two* orthogonal layers of area ``A_d`` each, and an L-shaped
        wire's H and V segments land on different layers, so the
        physically balanced capacity is ``2 * A_d`` (the default).  Set
        1.0 for the paper's conservative single-``A_d`` reading of
        Algorithms 4-5.
    driver_policy:
        ``"budgeted"`` (default): every wire that meets its target does
        so through size-``s_opt,j`` stages charged to the repeater
        budget, the driver stage included.  ``"free-bare"``: a wire
        whose bare minimum-size driver meets the target passes without
        budget (ablation; breaks the paper's linear ``R`` column).
    """
    if not 0.0 < utilization <= 1.0:
        raise RankComputationError(
            f"utilization must be in (0, 1], got {utilization!r}"
        )
    if pair_capacity_factor <= 0:
        raise RankComputationError(
            f"pair_capacity_factor must be positive, got {pair_capacity_factor!r}"
        )
    if driver_policy not in ("budgeted", "free-bare"):
        raise RankComputationError(
            f"unknown driver policy {driver_policy!r}; "
            "choose 'budgeted' or 'free-bare'"
        )
    if wld.num_groups == 0:
        raise RankComputationError("cannot build assignment tables for an empty WLD")

    num_pairs = arch.num_pairs
    num_groups = wld.num_groups
    device = die.node.device

    lengths_m = wld.lengths * die.adjusted_gate_pitch
    counts = wld.counts.astype(np.int64)
    cum_wires = np.concatenate(([0], np.cumsum(counts)))
    targets = target_model.targets(lengths_m)

    via_area = np.array([pair.via.blocked_area for pair in arch], dtype=float)
    pair_pitch = np.array([pair.wire_pitch for pair in arch], dtype=float)
    rc_arrays = stack_rc_arrays(pair.rc for pair in arch)
    repeater_size = optimal_repeater_size_batch(rc_arrays, device)
    repeater_unit_area = np.array(
        [device.repeater_area(size) for size in repeater_size], dtype=float
    )

    wire_area = np.empty((num_pairs, num_groups), dtype=float)
    stages = np.empty((num_pairs, num_groups), dtype=np.int64)
    inserted = np.empty((num_pairs, num_groups), dtype=np.int64)
    rep_area = np.empty((num_pairs, num_groups), dtype=float)
    cum_wire_area = np.empty((num_pairs, num_groups + 1), dtype=float)
    cum_rep_area = np.empty((num_pairs, num_groups + 1), dtype=float)
    cum_inserted = np.empty((num_pairs, num_groups + 1), dtype=float)
    next_infeasible = np.empty((num_pairs, num_groups + 1), dtype=np.int64)

    for p, pair in enumerate(arch):
        wire_area[p] = lengths_m * pair_pitch[p] * counts
        if driver_policy == "free-bare":
            # Free pass: the bare minimum-size driver (size 1, one
            # stage) meets the target without touching the budget.
            bare_delay = wire_delay_batch(
                pair.rc, device, 1.0, 1, lengths_m
            )
            bare_pass = bare_delay <= targets
        else:
            bare_pass = np.zeros(num_groups, dtype=bool)
        group_stages = min_stages_for_target_batch(
            pair.rc,
            device,
            lengths_m,
            targets,
            size=float(repeater_size[p]),
            max_stages=max_stages_per_wire,
        )
        stages[p] = np.where(bare_pass, 0, group_stages)
        feasible = stages[p] >= 0
        charged = np.where(stages[p] > 0, stages[p], 0)
        inserted[p] = np.maximum(charged - 1, 0)
        rep_area[p] = counts * charged * repeater_unit_area[p]
        cum_wire_area[p] = np.concatenate(([0.0], np.cumsum(wire_area[p])))
        # Infeasible groups poison cumulative repeater sums with +inf so
        # that any slice crossing one is recognized as infeasible.
        rep_terms = np.where(feasible, rep_area[p], np.inf)
        ins_terms = np.where(feasible, counts * inserted[p], np.inf)
        cum_rep_area[p] = np.concatenate(([0.0], np.cumsum(rep_terms)))
        cum_inserted[p] = np.concatenate(([0.0], np.cumsum(ins_terms)))
        # next_infeasible: suffix-minimum of infeasible indices — the
        # reversed cummin replaces the old backward Python scan.
        blocked_at = np.where(feasible, num_groups, np.arange(num_groups))
        next_infeasible[p][:num_groups] = np.minimum.accumulate(
            blocked_at[::-1]
        )[::-1]
        next_infeasible[p][num_groups] = num_groups

    return AssignmentTables(
        arch=arch,
        die=die,
        wld=wld,
        lengths_m=lengths_m,
        counts=counts,
        cum_wires=cum_wires,
        targets=targets,
        routing_capacity=utilization * pair_capacity_factor * die.die_area,
        repeater_budget_area=die.repeater_area,
        vias_per_wire=vias_per_wire,
        via_area=via_area,
        pair_pitch=pair_pitch,
        repeater_size=repeater_size,
        repeater_unit_area=repeater_unit_area,
        wire_area=wire_area,
        cum_wire_area=cum_wire_area,
        stages=stages,
        inserted=inserted,
        rep_area=rep_area,
        cum_rep_area=cum_rep_area,
        cum_inserted=cum_inserted,
        next_infeasible=next_infeasible,
        driver_policy=driver_policy,
    )
