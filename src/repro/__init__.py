"""repro — reproduction of the interconnect-architecture *rank* metric.

Implements Dasgupta, Kahng & Muddu, "A Novel Metric for Interconnect
Architecture Performance" (DATE 2003) end to end: the Davis stochastic
wire length distribution, geometry-driven RC extraction, the
Otten--Brayton repeatered delay model, via-blockage-aware wire
assignment, and the dynamic program that computes the rank of an
interconnect architecture — plus the greedy baseline, coarsening
(bunching / binning), and the analysis harness that regenerates every
table and figure of the paper.

Quickstart::

    from repro import paper_baseline_130nm, compute_rank

    problem = paper_baseline_130nm()
    result = compute_rank(problem, bunch_size=10_000)
    print(result.summary())
"""

from .arch import (
    ArchitectureSpec,
    DieModel,
    InterconnectArchitecture,
    LayerPair,
    build_architecture,
)
from .core import (
    RankProblem,
    RankResult,
    solve_rank_dp,
    solve_rank_exhaustive,
    solve_rank_greedy,
    solve_rank_reference,
)
from .core.scenarios import baseline_problem, paper_baseline_130nm
from . import obs
from .optimize import DesignSpace, optimize_architecture
from .power import PowerModel, witness_power
from .errors import (
    AssignmentError,
    CheckpointError,
    ConfigurationError,
    DeadlineExceeded,
    DelayModelError,
    RankComputationError,
    ReproError,
    RunnerError,
    UnitsError,
    WLDError,
)
from .runner import (
    BatchOutcome,
    PointFailure,
    PointSpec,
    RetryPolicy,
    RunJournal,
    run_batch,
)
from .tech import (
    NODE_90NM,
    NODE_130NM,
    NODE_180NM,
    DeviceParameters,
    MetalRule,
    TechnologyNode,
    ViaRule,
    available_nodes,
    get_node,
)
from .wld import (
    DavisParameters,
    WireLengthDistribution,
    bin_wld,
    bunch_wld,
    davis_wld,
)

# The stable facade.  The bare name ``api.optimize`` is NOT re-exported
# at top level: that name belongs to the ``repro.optimize`` subpackage,
# and shadowing it would break ``import repro.optimize.search``-style
# imports.  The facade-named ``optimize_rank`` alias (same callable) is
# what the top level carries instead.
from . import api
from .api import (
    SCHEMA_VERSION,
    CornersRequest,
    FaultSchedule,
    FaultSpec,
    OptimizeRequest,
    PrecomputeCache,
    RankRequest,
    RankResponse,
    SweepRequest,
    bench,
    budget_curve,
    compute_rank,
    corners,
    load_node,
    optimize_rank,
    parse_fault_schedule,
    solve_rank_request,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # architecture
    "ArchitectureSpec",
    "DieModel",
    "InterconnectArchitecture",
    "LayerPair",
    "build_architecture",
    # core
    "RankProblem",
    "RankResult",
    "compute_rank",
    "baseline_problem",
    "paper_baseline_130nm",
    "solve_rank_dp",
    "solve_rank_greedy",
    "solve_rank_reference",
    "solve_rank_exhaustive",
    # stable facade (repro.api); the bare ``api.optimize`` stays
    # namespaced to avoid shadowing the repro.optimize subpackage —
    # ``optimize_rank`` is the top-level spelling of the same callable
    "api",
    "sweep",
    "corners",
    "optimize_rank",
    "budget_curve",
    "load_node",
    "bench",
    "PrecomputeCache",
    "FaultSchedule",
    "FaultSpec",
    "parse_fault_schedule",
    # v1 wire schema (repro.schema)
    "SCHEMA_VERSION",
    "RankRequest",
    "SweepRequest",
    "CornersRequest",
    "OptimizeRequest",
    "RankResponse",
    "solve_rank_request",
    # technology
    "TechnologyNode",
    "MetalRule",
    "ViaRule",
    "DeviceParameters",
    "NODE_180NM",
    "NODE_130NM",
    "NODE_90NM",
    "available_nodes",
    "get_node",
    # WLD
    "WireLengthDistribution",
    "DavisParameters",
    "davis_wld",
    "bunch_wld",
    "bin_wld",
    # extensions
    "DesignSpace",
    "optimize_architecture",
    "PowerModel",
    "witness_power",
    # observability
    "obs",
    # fault-tolerant run harness
    "BatchOutcome",
    "PointFailure",
    "PointSpec",
    "RetryPolicy",
    "RunJournal",
    "run_batch",
    # errors
    "ReproError",
    "ConfigurationError",
    "UnitsError",
    "WLDError",
    "DelayModelError",
    "AssignmentError",
    "RankComputationError",
    "RunnerError",
    "CheckpointError",
    "DeadlineExceeded",
]
