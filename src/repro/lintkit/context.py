"""Per-file parse state and the finding record rules emit."""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional

#: Matches ``# noqa`` / ``# noqa: RPL001`` / ``# noqa: RPL001, RPL004``
#: anywhere in a physical line.  An empty code list suppresses every rule
#: on that line; an explicit list suppresses only the named codes.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?", re.IGNORECASE)

#: Sentinel set meaning "every code is suppressed on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``fingerprint`` identifies the violation for baseline matching: it
    hashes the rule code, the repo-relative path, and the *stripped
    source line text* — not the line number — so baselines survive
    unrelated edits that shift lines.
    """

    path: str  # repo-relative, POSIX separators
    line: int  # 1-based
    col: int  # 0-based
    code: str
    message: str
    fingerprint: str = field(default="", compare=False)

    def with_fingerprint(self, line_text: str) -> "Finding":
        digest = hashlib.sha256(
            f"{self.code}|{self.path}|{line_text.strip()}".encode("utf-8")
        ).hexdigest()[:16]
        return Finding(
            path=self.path,
            line=self.line,
            col=self.col,
            code=self.code,
            message=self.message,
            fingerprint=digest,
        )

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


def _noqa_codes(line: str) -> Optional[FrozenSet[str]]:
    """Codes suppressed by a ``# noqa`` comment on ``line`` (or None)."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return ALL_CODES
    return frozenset(c.strip().upper() for c in codes.split(","))


class FileContext:
    """A parsed source file plus the metadata rules need.

    Attributes
    ----------
    path:
        Absolute path on disk.
    rel:
        Repo-relative POSIX path (what findings and baselines record).
    module:
        Dotted module name when the file lives under ``src/`` (e.g.
        ``repro.core.dp``), else ``None``.
    tree:
        The parsed :class:`ast.Module`, or ``None`` on syntax error.
    syntax_error:
        The :class:`SyntaxError` raised during parsing, if any.
    """

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            rel_path = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel_path = path
        self.rel = rel_path.as_posix()
        self.module = _module_name(self.rel)
        self.source = path.read_text(encoding="utf-8")
        self.lines: List[str] = self.source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(self.source, filename=str(path))
        except SyntaxError as exc:  # surfaced as an RPL000 finding
            self.syntax_error = exc
        self._noqa: Dict[int, FrozenSet[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            codes = _noqa_codes(line)
            if codes is not None:
                self._noqa[number] = codes
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # ------------------------------------------------------------------
    # Helpers for rules
    # ------------------------------------------------------------------

    def in_module(self, *prefixes: str) -> bool:
        """Whether this file's module matches any dotted prefix."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def in_path(self, *prefixes: str) -> bool:
        """Whether the repo-relative path matches any prefix."""
        return any(
            self.rel == p or self.rel.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self._noqa.get(line)
        if codes is None:
            return False
        return codes is ALL_CODES or code.upper() in codes

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Lazily-built child → parent map over the AST."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
            self._parents = parents
        return self._parents

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a fingerprinted :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.rel, line=line, col=col, code=code, message=message
        ).with_fingerprint(self.line_text(line))


def _module_name(rel: str) -> Optional[str]:
    """Dotted module name for files under a ``src/`` layout."""
    parts = rel.split("/")
    if "src" not in parts:
        return None
    idx = parts.index("src")
    tail = parts[idx + 1 :]
    if not tail or not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    if not tail:
        return None
    return ".".join(tail)
