"""Repo-specific static analysis (``python -m repro.lintkit``).

The rank metric's credibility rests on invariants the test suite can
only sample: all arithmetic is SI-internal with unit conversions
confined to :mod:`repro.units`, the ``python`` and ``numpy`` DP
backends must stay bit-identical, and callers go through the
:mod:`repro.api` facade rather than ``repro.core`` internals.  This
package checks those invariants *statically*, at commit time, instead
of letting them surface as Table 4 divergence.

Architecture:

* :mod:`repro.lintkit.registry` — rule-plugin registry; each rule is a
  class with a stable ``RPLnnn`` code registered via
  :func:`~repro.lintkit.registry.register`.
* :mod:`repro.lintkit.context` — per-file parse state
  (:class:`~repro.lintkit.context.FileContext`) and the
  :class:`~repro.lintkit.context.Finding` record rules emit.
* :mod:`repro.lintkit.engine` — file collection, rule execution,
  ``# noqa`` suppression, deterministic ordering.
* :mod:`repro.lintkit.baseline` — grandfathered-violation baseline so
  the CI gate is strict on new code from day one.
* :mod:`repro.lintkit.callgraph` — shared whole-repo pre-pass: a
  module-level call graph with *fork-reachable* (worker entrypoints,
  ``.submit`` payloads) and *event-loop-reachable* (``async def``)
  closures, consumed by the concurrency rules.
* :mod:`repro.lintkit.reporters` — text and JSON output.
* :mod:`repro.lintkit.rules` — the shipped rules (RPL001–RPL011).

Shipped rules:

========  ==============================================================
RPL001    bare SI conversion literal outside ``repro.units``
RPL002    unit-suffix dimension mismatch at a call site
RPL003    nondeterminism in solver paths (wall clock / global RNG /
          unseeded RNG / set iteration order)
RPL004    facade boundary: ``repro.core`` / ``repro.assign`` internals
          imported from caller layers instead of ``repro.api``
RPL005    unguarded metrics publishing in hot paths (use the guarded
          ``repro.obs`` helpers)
RPL006    swallowed exceptions in recovery paths (``runner/``,
          ``faultkit/``)
RPL007    blocking calls in event-loop-reachable code (route heavy
          work through the solve executor)
RPL008    fork-hostile state crossing the ``fork()`` boundary
          (module-level handles, non-plain-data worker args)
RPL009    SharedMemory lifecycle: parent owns ``unlink``, workers only
          ``close``, creation guarantees release on error
RPL010    fault-site registry: literal ``fault_point`` sites, chaos
          globs must match a registered site (``--emit-fault-sites``)
RPL011    cooperative deadline coverage in ``repro.core`` /
          ``repro.assign`` loops
========  ==============================================================

``--explain RPLnnn`` prints any rule's full rationale with
trigger/avoid examples.
"""

from __future__ import annotations

from .baseline import Baseline
from .context import FileContext, Finding
from .engine import collect_files, lint_paths
from .registry import Rule, all_rules, get_rule, register

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "collect_files",
    "get_rule",
    "lint_paths",
    "register",
]
