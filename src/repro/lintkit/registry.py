"""Rule-plugin registry.

A rule is a class with a stable ``code`` (``RPLnnn``), a short ``name``,
a one-paragraph ``description`` (rendered by ``--list-rules`` and the
docs), and a ``check(ctx)`` generator yielding
:class:`~repro.lintkit.context.Finding` objects.  Rules that need a
whole-repo view first (e.g. RPL002's signature database) override
``prepare(contexts)``, which the engine calls once per run before any
``check``.

Rules register themselves at import time::

    from ..registry import Rule, register

    @register
    class MyRule(Rule):
        code = "RPL042"
        name = "my-rule"
        description = "What invariant this protects and why."

        def check(self, ctx):
            ...
            yield ctx.finding(node, self.code, "message")

The engine instantiates a fresh rule object per run, so per-run state
(signature databases, caches) lives on ``self`` without leaking between
invocations.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from .context import FileContext, Finding


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    code: str = ""
    name: str = ""
    description: str = ""

    def prepare(self, contexts: Sequence[FileContext]) -> None:
        """Whole-repo pre-pass hook (default: nothing)."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (default: none)."""
        return iter(())

    # ------------------------------------------------------------------
    # Shared AST helpers
    # ------------------------------------------------------------------

    @staticmethod
    def dotted_name(node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None


_RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (unique code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    existing = _RULES.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule code {cls.code}: {existing.__name__} and {cls.__name__}"
        )
    _RULES[cls.code] = cls
    return cls


def _load_builtin_rules() -> None:
    from . import rules as _rules  # noqa: F401  (import registers rules)


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by code."""
    _load_builtin_rules()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Type[Rule]:
    """Look one rule up by code (KeyError if unknown)."""
    _load_builtin_rules()
    return _RULES[code]


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate the active rule set for one run.

    ``select`` keeps only the named codes; ``ignore`` then drops codes.
    Unknown codes raise ``KeyError`` so typos fail loudly.
    """
    _load_builtin_rules()
    chosen = sorted(_RULES)
    if select is not None:
        wanted = {c.upper() for c in select}
        unknown = wanted - set(chosen)
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        chosen = [c for c in chosen if c in wanted]
    if ignore is not None:
        dropped = {c.upper() for c in ignore}
        unknown = dropped - set(_RULES)
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        chosen = [c for c in chosen if c not in dropped]
    return [_RULES[code]() for code in chosen]
