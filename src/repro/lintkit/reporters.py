"""Text and JSON reporters.

The JSON schema (version 1) is a stable contract asserted by
``tests/lintkit/test_reporters.py`` — CI uploads the payload as an
artifact, so downstream tooling may rely on every key below::

    {
      "version": 1,
      "tool": "repro.lintkit",
      "findings": [
        {"code": "...", "path": "...", "line": N, "col": N,
         "message": "...", "fingerprint": "..."}
      ],
      "summary": {
        "files": N, "total": N, "new": N, "baselined": N,
        "by_code": {"RPL001": N, ...}
      },
      "stale_baseline": [{"fingerprint": "...", "path": "...",
                          "code": "..."}]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from .baseline import BaselineEntry
from .context import Finding

JSON_SCHEMA_VERSION = 1


def render_text(
    new_findings: Sequence[Finding],
    *,
    files: int,
    baselined: int,
    stale: Sequence[BaselineEntry] = (),
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    for f in new_findings:
        lines.append(f"{f.location()}: {f.code} {f.message}")
    by_code = Counter(f.code for f in new_findings)
    summary = (
        f"{len(new_findings)} finding(s) in {files} file(s)"
        + (f", {baselined} baselined" if baselined else "")
    )
    if by_code:
        summary += " [" + ", ".join(
            f"{code}: {count}" for code, count in sorted(by_code.items())
        ) + "]"
    lines.append(summary)
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.fingerprint} "
            f"({entry.code} {entry.path}) — violation no longer exists; "
            "remove it or regenerate with --write-baseline"
        )
    return "\n".join(lines)


def render_json(
    new_findings: Sequence[Finding],
    *,
    files: int,
    baselined: int,
    stale: Sequence[BaselineEntry] = (),
) -> str:
    """The stable machine-readable report (see module docstring)."""
    by_code: Dict[str, int] = dict(
        sorted(Counter(f.code for f in new_findings).items())
    )
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro.lintkit",
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in new_findings
        ],
        "summary": {
            "files": files,
            "total": len(new_findings) + baselined,
            "new": len(new_findings),
            "baselined": baselined,
            "by_code": by_code,
        },
        "stale_baseline": [
            {"fingerprint": e.fingerprint, "path": e.path, "code": e.code}
            for e in stale
        ],
    }
    return json.dumps(payload, indent=2)
