"""Grandfathered-violation baseline.

A baseline file lets the CI gate start strict on *new* code while
existing, justified violations are carried explicitly.  Each entry
records the finding's fingerprint (rule code + path + stripped source
line — no line numbers, so baselines survive unrelated edits), an
allowed occurrence count, and an optional human justification that the
docs require for every entry.

Workflow::

    python -m repro.lintkit src tests tools --write-baseline   # regenerate
    # edit lint_baseline.json, add "justification" to each entry
    python -m repro.lintkit src tests tools                    # gate: new findings only

Matching consumes baseline capacity per fingerprint: two identical
violations on identical source lines need ``count: 2``.  Entries that
match nothing are reported as *stale* so the baseline only ever
shrinks.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .context import Finding
from ..errors import ReproError

FORMAT_VERSION = 1


class BaselineError(ReproError):
    """A baseline file is missing, malformed, or the wrong version."""


@dataclass
class BaselineEntry:
    """One grandfathered violation (or N identical ones via ``count``)."""

    fingerprint: str
    code: str
    path: str
    line_text: str
    count: int = 1
    justification: str = ""

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "fingerprint": self.fingerprint,
            "code": self.code,
            "path": self.path,
            "line_text": self.line_text,
            "count": self.count,
        }
        if self.justification:
            payload["justification"] = self.justification
        return payload


@dataclass
class Baseline:
    """The set of grandfathered findings loaded from / saved to JSON."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported version "
                f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
            )
        entries = []
        for raw in payload.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        fingerprint=str(raw["fingerprint"]),
                        code=str(raw["code"]),
                        path=str(raw["path"]),
                        line_text=str(raw.get("line_text", "")),
                        count=int(raw.get("count", 1)),
                        justification=str(raw.get("justification", "")),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(
                    f"baseline {path} has a malformed entry {raw!r}: {exc}"
                ) from exc
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": [e.to_json() for e in sorted(
                self.entries, key=lambda e: (e.path, e.code, e.line_text)
            )],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        line_texts: Dict[str, str],
        previous: "Baseline" = None,  # type: ignore[assignment]
    ) -> "Baseline":
        """Build a baseline covering ``findings``.

        ``line_texts`` maps fingerprint → stripped source line (for the
        human-readable ``line_text`` field).  Justifications are carried
        over from ``previous`` by fingerprint so regenerating a baseline
        never loses curation.
        """
        carried: Dict[str, str] = {}
        if previous is not None:
            carried = {
                e.fingerprint: e.justification
                for e in previous.entries
                if e.justification
            }
        counts: Counter = Counter(f.fingerprint for f in findings)
        by_fp: Dict[str, Finding] = {}
        for f in findings:
            by_fp.setdefault(f.fingerprint, f)
        entries = [
            BaselineEntry(
                fingerprint=fp,
                code=by_fp[fp].code,
                path=by_fp[fp].path,
                line_text=line_texts.get(fp, ""),
                count=count,
                justification=carried.get(fp, ""),
            )
            for fp, count in counts.items()
        ]
        return cls(entries=entries)

    def pruned(self, findings: Sequence[Finding]) -> "Baseline":
        """A copy with stale capacity removed.

        Each entry's ``count`` is clamped to the number of current
        findings that actually carry its fingerprint; entries matching
        nothing are dropped entirely.  Justifications on surviving
        entries are untouched — pruning only ever shrinks the baseline,
        which is the direction the gate's ratchet is allowed to move.
        """
        live: Counter = Counter(f.fingerprint for f in findings)
        remaining = dict(live)
        entries: List[BaselineEntry] = []
        for entry in self.entries:
            matched = min(max(0, entry.count), remaining.get(entry.fingerprint, 0))
            if matched <= 0:
                continue
            remaining[entry.fingerprint] -= matched
            entries.append(
                BaselineEntry(
                    fingerprint=entry.fingerprint,
                    code=entry.code,
                    path=entry.path,
                    line_text=entry.line_text,
                    count=matched,
                    justification=entry.justification,
                )
            )
        return Baseline(entries=entries)

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, List[BaselineEntry]]:
        """Split findings into (new, baselined_count, stale_entries).

        Each baseline entry absorbs up to ``count`` findings with its
        fingerprint; the remainder are *new* and should fail the gate.
        Entries with leftover capacity are *stale* — the violation they
        grandfathered no longer exists and they should be deleted.
        """
        capacity: Counter = Counter()
        for entry in self.entries:
            capacity[entry.fingerprint] += max(0, entry.count)
        new: List[Finding] = []
        baselined = 0
        for finding in findings:
            if capacity.get(finding.fingerprint, 0) > 0:
                capacity[finding.fingerprint] -= 1
                baselined += 1
            else:
                new.append(finding)
        stale = [e for e in self.entries if capacity.get(e.fingerprint, 0) > 0]
        # Multiple entries can share a fingerprint only through hand
        # editing; report each at most once.
        seen = set()
        unique_stale = []
        for entry in stale:
            if entry.fingerprint not in seen:
                seen.add(entry.fingerprint)
                unique_stale.append(entry)
        return new, baselined, unique_stale
