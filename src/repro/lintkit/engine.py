"""File collection and rule execution."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .context import FileContext, Finding
from .registry import Rule, select_rules

#: Directory names skipped while walking trees.  ``fixtures`` is on the
#: list because lint-rule fixture files (tests/lintkit/fixtures/) are
#: *intentionally* full of violations; tests lint them by passing the
#: file path explicitly, which bypasses the walk and its skip list.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "fixtures", "node_modules"})


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list.

    Explicitly-named files are always included (even inside a skipped
    directory); directory walks skip :data:`SKIP_DIRS` and hidden
    entries.
    """
    seen = set()
    out: List[Path] = []

    def add(p: Path) -> None:
        resolved = p.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(p)

    for path in paths:
        if path.is_file():
            add(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(part in SKIP_DIRS or part.startswith(".") for part in parts[:-1]):
                    continue
                if candidate.name.startswith("."):
                    continue
                add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out, key=lambda p: p.resolve().as_posix())


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], List[FileContext]]:
    """Run the active rules over ``paths``.

    Returns ``(findings, contexts)``: findings are ``# noqa``-filtered
    and sorted by (path, line, col, code); contexts are returned so
    callers (the CLI, the baseline writer) can map fingerprints back to
    source lines.

    Unparsable files yield a single ``RPL000`` finding rather than
    aborting the run — a syntax error in one file must not mask
    findings in the rest.
    """
    root = (root or Path.cwd()).resolve()
    files = collect_files([Path(p) for p in paths])
    contexts = [FileContext(f, root) for f in files]

    rules: List[Rule] = select_rules(select, ignore)
    for rule in rules:
        rule.prepare(contexts)

    findings: List[Finding] = []
    for ctx in contexts:
        if ctx.syntax_error is not None:
            err = ctx.syntax_error
            findings.append(
                Finding(
                    path=ctx.rel,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    code="RPL000",
                    message=f"syntax error: {err.msg}",
                ).with_fingerprint(ctx.line_text(err.lineno or 1))
            )
            continue
        for rule in rules:
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding.line, finding.code):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, contexts
