"""RPL006 — no swallowed exceptions in the recovery layer.

The runner and faultkit packages *are* the error-handling layer: when
they catch something broad, the failure must go somewhere a human or a
metric can see it.  A ``except Exception: pass`` in a recovery path
turns a worker death, a torn checkpoint, or an injected fault into
silent data loss — precisely the failure mode the chaos suite exists
to rule out.

Inside ``repro.runner`` and ``repro.faultkit`` this rule flags:

* a bare ``except:`` whose body does not re-raise — bare excepts catch
  ``KeyboardInterrupt``/``SystemExit``, so anything short of an
  unconditional hand-back is a hang or a swallowed shutdown;
* ``except Exception`` / ``except BaseException`` handlers that neither
  re-raise, nor return a value (converting the failure into data the
  caller must handle), nor record it through an approved channel (an
  obs counter such as ``inc``/``observe``, a journal ``add``/
  ``append``/``record``, a pipe ``send``/``send_bytes``, or a logger
  ``warning``/``error``/``exception``).

Narrow handlers (``except OSError``, ``except CheckpointError``) are
not flagged: catching a *specific* failure is a decision, not a
dragnet.  Survivors with a documented reason belong in the committed
baseline, justification required, like every other rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Packages whose except-handlers are recovery paths.
SCOPED_PACKAGES = ("repro.runner", "repro.faultkit")

#: Exception names that count as a broad catch.
BROAD_NAMES = ("Exception", "BaseException")

#: Call names (function or method) that count as recording the failure.
RECORDING_CALLS = frozenset(
    {
        # obs counters / measurements
        "inc",
        "gauge",
        "observe",
        # journal / collection recording
        "add",
        "append",
        "record",
        # shipping the failure across a process boundary
        "send",
        "send_bytes",
        "put",
        # logging
        "warn",
        "warning",
        "error",
        "exception",
        "log",
    }
)


def _is_broad(expr: ast.expr) -> bool:
    """Whether an ``except <expr>`` clause catches Exception-or-wider."""
    if isinstance(expr, ast.Name):
        return expr.id in BROAD_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr in BROAD_NAMES
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(item) for item in expr.elts)
    return False


def _is_recording_call(call: ast.Call) -> bool:
    """Whether a call looks like it records the caught failure.

    Matches the bare name (``inc``, ``warning``) and also wrapper
    helpers named after one (``_obs_inc``, ``journal_record``) — the
    repo's guarded-publish idiom (RPL005) forces obs access through
    such wrappers.
    """
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return False
    if name in RECORDING_CALLS:
        return True
    return name.rsplit("_", 1)[-1] in RECORDING_CALLS


def _handler_surfaces(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises, returns a value, or records."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Return) and node.value is not None:
            return True
        if isinstance(node, ast.Call) and _is_recording_call(node):
            return True
    return False


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class SwallowRule(Rule):
    code = "RPL006"
    name = "no-swallow"
    description = (
        "Recovery paths (repro.runner, repro.faultkit) must not swallow "
        "exceptions: a bare 'except:' must re-raise, and a broad "
        "'except Exception/BaseException' must re-raise, return a value, "
        "or record the failure (obs counter, journal, pipe, or logger)."
    )
    example_trigger = (
        "try:\n"
        "    attempt(point)\n"
        "except Exception:\n"
        "    pass                    # failure vanishes from the journal"
    )
    example_avoid = (
        "except Exception as exc:\n"
        "    inc('executor.attempt.failed')\n"
        "    journal.record_failure(point, exc)\n"
        "    raise"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not ctx.in_module(*SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    if not _handler_reraises(handler):
                        yield ctx.finding(
                            handler,
                            self.code,
                            "bare 'except:' without re-raise swallows "
                            "KeyboardInterrupt/SystemExit; catch a "
                            "specific exception or re-raise",
                        )
                elif _is_broad(handler.type) and not _handler_surfaces(handler):
                    yield ctx.finding(
                        handler,
                        self.code,
                        "broad except handler swallows the failure; "
                        "re-raise, return a value the caller must "
                        "handle, or record it (obs counter, journal, "
                        "pipe, logger)",
                    )
