"""RPL005 — guarded observability in hot paths.

The observability contract (PR 3) is *near-zero overhead when
disabled*: hot-path code publishes through the module-level guarded
helpers (:func:`repro.obs.metrics.inc` / ``gauge`` / ``observe`` or
``metrics_enabled()``-gated blocks), never through the registry object
directly — ``registry().inc(...)`` pays the lock and dict update even
when observability is off.

Inside the hot-path packages (``repro.core``, ``repro.assign``,
``repro.delay``) this rule flags:

* importing ``registry``, ``_REGISTRY``, or ``MetricsRegistry`` from
  :mod:`repro.obs.metrics` (hot paths have no business holding the
  registry — that is for reporters and aggregators);
* publish calls on a registry obtained inline:
  ``registry().inc(...)``, ``metrics.registry().observe(...)``;
* publish calls on the private global: ``_REGISTRY.inc(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Packages whose per-solve / per-transition code is the hot path.
HOT_PACKAGES = ("repro.core", "repro.assign", "repro.delay")

#: Publishing methods on MetricsRegistry.
PUBLISH_METHODS = ("inc", "gauge", "observe")

#: Names whose import into a hot path defeats the guard.
FORBIDDEN_IMPORTS = ("registry", "_REGISTRY", "MetricsRegistry")


@register
class ObsGuardRule(Rule):
    code = "RPL005"
    name = "obs-guard"
    description = (
        "Hot paths (core/, assign/, delay/) must publish metrics through "
        "the guarded repro.obs helpers (inc/gauge/observe, or blocks "
        "gated on metrics_enabled()), never through the registry object "
        "— unguarded publishing pays lock+dict cost with metrics off."
    )
    example_trigger = "_REGISTRY.counter('dp.relax').inc()   # unguarded, hot loop"
    example_avoid = (
        "from repro.obs import inc\n"
        "inc('dp.relax')                       # no-op when metrics off"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not ctx.in_module(*HOT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                finding = self._check_publish(ctx, node)
                if finding is not None:
                    yield finding

    def _check_import(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        module = node.module or ""
        if not (
            module.endswith("obs.metrics")
            or module.endswith("obs")
            or module == "metrics"
        ):
            return
        for alias in node.names:
            if alias.name in FORBIDDEN_IMPORTS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"hot-path import of '{alias.name}' from repro.obs."
                    "metrics; import the guarded helpers (inc, gauge, "
                    "observe, metrics_enabled) instead",
                )

    def _check_publish(self, ctx: FileContext, call: ast.Call) -> Optional[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in PUBLISH_METHODS:
            return None
        receiver = func.value
        # registry().inc(...) / obs.metrics.registry().observe(...)
        if isinstance(receiver, ast.Call):
            inner = receiver.func
            inner_name = (
                inner.id
                if isinstance(inner, ast.Name)
                else inner.attr
                if isinstance(inner, ast.Attribute)
                else None
            )
            if inner_name == "registry":
                return ctx.finding(
                    call,
                    self.code,
                    f"unguarded 'registry().{func.attr}(...)' in a hot "
                    "path; use the guarded module helper "
                    f"'{func.attr}(...)' from repro.obs.metrics",
                )
        # _REGISTRY.inc(...)
        name = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else receiver.attr
            if isinstance(receiver, ast.Attribute)
            else None
        )
        if name == "_REGISTRY":
            return ctx.finding(
                call,
                self.code,
                f"unguarded '_REGISTRY.{func.attr}(...)' in a hot path; "
                f"use the guarded module helper '{func.attr}(...)' from "
                "repro.obs.metrics",
            )
        return None
