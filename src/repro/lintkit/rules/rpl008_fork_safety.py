"""RPL008 — fork-safety of worker payloads.

The batch runner and the process-mode solve executor both use the
``fork`` start method on purpose (PR 7: warm caches arrive
copy-on-write), and that choice has a contract: state that crosses the
``fork()`` boundary must be *plain data*.  A ``threading.Lock`` held
by a parent thread at fork time is permanently stuck in the child; a
``Thread`` handle refers to a thread that does not exist after fork;
an event loop or socket duplicated into a worker is shared OS state
two processes now race on.  These bugs are timing-dependent and
near-impossible to reproduce — exactly the kind of invariant a static
gate should hold instead of a reviewer's memory.

Using the shared call-graph pre-pass, this rule flags, inside
*fork-reachable* functions (the closure from ``Process(target=...)``
/ pool-``initializer=`` / ``.submit``-payload seeds):

* reads of module-level variables bound to lock / thread / event-loop
  / socket handles (``_LOCK = threading.Lock()`` at module scope, used
  in a worker: the parent's handle, captured over fork);
* worker *entrypoint* parameters annotated with non-picklable,
  fork-hostile types (``threading.*``, ``asyncio.*``, ``socket.*``,
  ``concurrent.futures.*``, ``IO``/``TextIO``/``BinaryIO``) — worker
  entry args must be plain-data shapes.

Creating a *fresh* lock inside the worker is fine (it is the child's
own), and plain-data module globals (caches, flags) are legal by
design — fork gives each worker an independent copy-on-write copy.
The hazard this rule polices is synchronisation and OS handles, which
are precisely the objects whose post-fork semantics are undefined.

A module that registers an ``os.register_at_fork(after_in_child=...)``
handler has taken explicit fork ownership of its handles (the stdlib
``logging`` discipline: replace the lock in the child) and is exempt
from the module-handle check — ``repro.obs.trace`` does exactly this.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..callgraph import analyze, CallGraph, _annotation_name
from ..context import FileContext, Finding
from ..registry import Rule, register

#: Annotation prefixes that make a worker-entry parameter fork-hostile.
FORBIDDEN_PARAM_PREFIXES = (
    "threading.",
    "asyncio.",
    "socket.",
    "concurrent.futures.",
)

#: Bare annotation names that are fork-hostile regardless of module.
FORBIDDEN_PARAM_NAMES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Thread", "AbstractEventLoop", "Executor", "ThreadPoolExecutor",
    "IO", "TextIO", "BinaryIO",
})


@register
class ForkSafetyRule(Rule):
    code = "RPL008"
    name = "fork-safety"
    description = (
        "Fork-reachable code (worker entrypoints and everything they "
        "call) must not capture module-level lock/thread/loop/socket "
        "handles, and worker-entry parameters must be plain-data "
        "picklable shapes — handles crossing fork() have undefined "
        "semantics."
    )
    example_trigger = (
        "_LOCK = threading.Lock()          # module scope, pre-fork\n"
        "def _worker_main(task: threading.Event):  # non-plain-data arg\n"
        "    with _LOCK:                   # parent's handle, post-fork\n"
        "        ..."
    )
    example_avoid = (
        "def _worker_main(init_blob: bytes, parent_pid: int):\n"
        "    lock = threading.Lock()       # child-local, created post-fork\n"
        "    payload = loads_hoisted(init_blob)"
    )

    def __init__(self) -> None:
        self._graph: Optional[CallGraph] = None

    def prepare(self, contexts) -> None:  # type: ignore[no-untyped-def]
        self._graph = analyze(contexts)

    @staticmethod
    def _owns_fork(ctx: FileContext) -> bool:
        """Whether the module registers an after-fork child handler."""
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register_at_fork"
                and any(kw.arg == "after_in_child" for kw in node.keywords)
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = self._graph
        if graph is None or ctx.tree is None or not ctx.in_module("repro"):
            return
        handles = graph.module_handles(ctx.module)
        if handles and self._owns_fork(ctx):
            handles = {}
        for fi in graph.functions_in(ctx):
            if fi.qualname not in graph.fork_reachable:
                continue
            if fi.qualname in graph.fork_seeds:
                yield from self._check_entry_params(graph, ctx, fi)
            if not handles:
                continue
            for node in fi.walk():
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in handles
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"module-level {handles[node.id]} '{node.id}' used in "
                        f"fork-reachable {fi.qualname} "
                        f"(via {graph.chain(fi.qualname, 'fork')}); the "
                        "parent's handle has undefined semantics after "
                        "fork() — create it inside the worker instead",
                    )

    def _check_entry_params(
        self, graph: CallGraph, ctx: FileContext, fi
    ) -> Iterator[Finding]:  # type: ignore[no-untyped-def]
        args = fi.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            name = _annotation_name(arg.annotation)
            if name is None:
                continue
            absolute = graph.absolute_name(ctx, ast.parse(name, mode="eval").body)
            bare = name.split(".")[-1]
            hostile = bare in FORBIDDEN_PARAM_NAMES or (
                absolute is not None
                and absolute.startswith(FORBIDDEN_PARAM_PREFIXES)
            )
            if hostile:
                yield ctx.finding(
                    arg,
                    self.code,
                    f"worker entrypoint {fi.qualname} "
                    f"({graph.fork_seeds[fi.qualname]}) takes parameter "
                    f"'{arg.arg}: {name}' — worker entry args must be "
                    "plain-data picklable shapes, not synchronisation/OS "
                    "handles",
                )
