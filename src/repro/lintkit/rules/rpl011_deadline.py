"""RPL011 — cooperative deadline coverage in solver hot paths.

The fault-tolerant runner's per-attempt wall-clock budget and the
service's 504 deadline path both rely on *cooperative* cancellation:
:func:`repro.core.dp.check_deadline` raises ``DeadlineExceeded`` once
``time.monotonic()`` passes the budget.  Cooperation only works if
every loop that can iterate over problem-sized ranges actually calls
the check (or hands ``deadline`` down to a callee that does) — one
unchecked loop and a pathological point blows straight through its
budget, the watchdog SIGKILLs the worker, and a cheap retryable
timeout becomes an expensive crash-resubmit cycle.

The rule's scope is where the plumbing exists: inside ``repro.core``
and ``repro.assign``, every function that *accepts* a ``deadline``
parameter must, in each of its loops, either

* call ``check_deadline(...)`` somewhere in the loop body, or
* forward ``deadline`` to a callee inside the loop (the callee then
  owns the obligation — this is how the per-pair DP loops satisfy the
  rule through their kernel calls), or
* carry a ``# noqa: RPL011`` justification on the loop header for
  loops that are provably small (fixed-size unpacking, bounded
  configuration tuples).

Loops over literal constant collections (``for k in ("a", "b"):``) are
exempt automatically — they cannot be problem-sized.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Packages whose deadline-accepting functions are under the contract.
SCOPED_PACKAGES = ("repro.core", "repro.assign")

_Loop = Union[ast.For, ast.While]


def _is_constant_iterable(node: ast.For) -> bool:
    """Loops over literal tuples/lists/sets cannot be problem-sized."""
    iterable = node.iter
    if isinstance(iterable, (ast.Tuple, ast.List, ast.Set)):
        return all(isinstance(e, ast.Constant) for e in iterable.elts)
    return False


def _loop_satisfies(loop: _Loop) -> bool:
    """True when the loop body checks or forwards the deadline."""
    for node in ast.walk(loop):
        if node is loop or not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "check_deadline":
            return True
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id == "deadline":
                return True
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id == "deadline":
                return True
    return False


@register
class DeadlineCoverageRule(Rule):
    code = "RPL011"
    name = "deadline-coverage"
    description = (
        "In repro.core/repro.assign, every loop inside a function that "
        "accepts a deadline parameter must call check_deadline() or "
        "forward the deadline to a callee — an unchecked loop turns a "
        "cheap cooperative timeout into a watchdog SIGKILL."
    )
    example_trigger = (
        "def solve(tables, deadline):\n"
        "    for pair in pairs:        # problem-sized, never checks\n"
        "        best = relax(pair)"
    )
    example_avoid = (
        "def solve(tables, deadline):\n"
        "    for pair in pairs:\n"
        "        check_deadline(deadline, where=f'dp pair {pair}')\n"
        "        best = relax(pair)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not ctx.in_module(*SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params = {
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
            }
            if "deadline" not in params:
                continue
            yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> Iterator[Finding]:
        # Only this function's own loops: nested defs carry their own
        # deadline parameter (or are out of contract).  A loop nested
        # inside a loop that already checks/forwards is *covered*: the
        # enclosing check runs once per enclosing iteration, which is
        # the repo's deliberate coarse-granularity idiom (one
        # check_deadline per DP group row, not per transition — the
        # check itself has per-call cost).
        def visit(nodes: list, covered: bool) -> Iterator[Finding]:
            for node in nodes:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, (ast.For, ast.While)):
                    loop_covered = covered or _loop_satisfies(node)
                    if not loop_covered and not (
                        isinstance(node, ast.For) and _is_constant_iterable(node)
                    ):
                        yield ctx.finding(
                            node,
                            self.code,
                            f"loop in deadline-accepting {fn.name}() neither "
                            "calls check_deadline() nor forwards the "
                            "deadline (and no enclosing loop does); a "
                            "pathological point would blow through its "
                            "wall-clock budget (add the check, or "
                            "# noqa: RPL011 with why the loop is provably "
                            "small)",
                        )
                    yield from visit(
                        list(ast.iter_child_nodes(node)), loop_covered
                    )
                else:
                    yield from visit(list(ast.iter_child_nodes(node)), covered)

        yield from visit(list(fn.body), False)
