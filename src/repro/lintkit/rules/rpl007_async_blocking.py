"""RPL007 — no blocking calls in event-loop-reachable code.

``repro.service`` is a single-threaded asyncio server: one blocking
call anywhere in the synchronous call tree below an ``async def``
handler stalls *every* in-flight request, defeats the deadline
machinery (``asyncio.wait_for`` cannot pre-empt a stuck sync frame),
and turns the 429 backpressure path into a queue of frozen sockets.
The architectural rule is simple — heavy or blocking work goes through
:class:`repro.service.executor.SolveExecutor` — but nothing enforced
it until now.

This rule consumes the shared :mod:`repro.lintkit.callgraph` pre-pass:
every function reachable (over resolved call edges) from an ``async
def`` in the linted ``repro.*`` modules is *event-loop-reachable*, and
within those functions any call to a known blocking primitive is
flagged — ``time.sleep``, ``subprocess.*``, sync socket constructors
and ``urllib`` fetches, ``open()`` / ``Path.read_text``-family file
I/O, and the block-forever forms ``Future.result()`` / ``queue.get()``
/ ``.join()`` with no timeout argument.

Work routed through the executor is exempt *structurally*: a function
reference passed to ``.submit(...)`` is an argument, not a call edge,
so the loop closure stops at the executor boundary.  Deliberate
exceptions (the chaos ``hang`` fault is a blocking sleep *on purpose*)
carry ``# noqa: RPL007`` with a justification, as usual.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..callgraph import analyze, CallGraph
from ..context import FileContext, Finding
from ..registry import Rule, register

#: Calls that block the calling thread, by absolute dotted name
#: (resolved through the module's imports).
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.getoutput",
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "open",
})

#: ``Path`` / file-object methods that hit the disk synchronously.
BLOCKING_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
    "recv", "sendall", "accept", "connect",
})

#: Methods that block forever unless given a timeout argument.
TIMEOUT_METHODS = frozenset({"result", "get", "join", "acquire"})


@register
class AsyncBlockingRule(Rule):
    code = "RPL007"
    name = "async-blocking"
    description = (
        "No blocking calls (time.sleep, subprocess, sync socket/file "
        "I/O, Future.result()/queue.get() without timeout) in functions "
        "reachable from an async def: one stuck sync frame freezes the "
        "whole event loop.  Route heavy work through the solve executor."
    )
    example_trigger = (
        "async def handler(req):\n"
        "    time.sleep(0.1)          # blocks every in-flight request\n"
        "    data = open(p).read()    # sync disk I/O on the loop"
    )
    example_avoid = (
        "async def handler(req):\n"
        "    await asyncio.sleep(0.1)\n"
        "    future = self.executor.submit(solve_job, args)\n"
        "    payload = await asyncio.wrap_future(future)"
    )

    def __init__(self) -> None:
        self._graph: Optional[CallGraph] = None

    def prepare(self, contexts) -> None:  # type: ignore[no-untyped-def]
        self._graph = analyze(contexts)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = self._graph
        if graph is None or ctx.tree is None or not ctx.in_module("repro"):
            return
        for fi in graph.functions_in(ctx):
            if fi.qualname not in graph.loop_reachable:
                continue
            for node in fi.walk():
                if not isinstance(node, ast.Call):
                    continue
                why = self._blocking(graph, ctx, node)
                if why is None:
                    continue
                yield ctx.finding(
                    node,
                    self.code,
                    f"{why} in event-loop-reachable {fi.qualname} "
                    f"(via {graph.chain(fi.qualname, 'loop')}); route it "
                    "through the solve executor or use the asyncio "
                    "equivalent",
                )

    def _blocking(
        self, graph: CallGraph, ctx: FileContext, node: ast.Call
    ) -> Optional[str]:
        absolute = graph.absolute_name(ctx, node.func)
        if absolute in BLOCKING_CALLS:
            return f"blocking call {absolute}()"
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in BLOCKING_METHODS:
                return f"blocking .{attr}() I/O"
            if attr in TIMEOUT_METHODS and not node.args and not node.keywords:
                # dict.get()/str.join() always take arguments, so a
                # bare zero-argument form is the block-forever one.
                return f"unbounded .{attr}() (no timeout)"
        return None
