"""RPL003 — nondeterminism in the solver paths.

The backend-parity contract (PR 4) promises bit-identical ranks,
witnesses, and SolverStats across the ``python`` and ``numpy`` DP
kernels, and checkpoint/resume (PR 1) replays points assuming a pure
function of the inputs.  Both break the moment solver code consults a
wall clock, the process-global RNG, an unseeded RNG, or the hash-seed-
dependent iteration order of a ``set``.

Inside the scoped packages (``repro.core``, ``repro.assign``,
``repro.delay``, ``repro.wld``) this rule flags:

* wall-clock reads: ``time.time`` / ``time.time_ns`` /
  ``datetime.now`` / ``datetime.utcnow`` / ``datetime.today``
  (``time.monotonic`` / ``perf_counter`` stay legal — the runner uses
  them for *deadlines and metrics*, which never feed results);
* the process-global RNG: any ``random.<fn>()`` module call and any
  ``numpy.random.<fn>()`` legacy module call;
* unseeded RNG construction: ``random.Random()`` /
  ``numpy.random.default_rng()`` / ``numpy.random.RandomState()`` with
  no arguments, and ``random.SystemRandom`` anywhere;
* set-order dependence: iterating a set literal/comprehension or a
  direct ``set(...)`` call in a ``for`` loop, or materialising one via
  ``list(set(...))`` / ``tuple(set(...))`` without ``sorted``.

Seeded construction (``random.Random(seed)``,
``default_rng(seed)``) passes: determinism needs a pinned seed, not the
absence of randomness.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Packages under the backend-parity / resume-replay contract.
SCOPED_PACKAGES = ("repro.core", "repro.assign", "repro.delay", "repro.wld")

#: Module-level attribute calls that read the wall clock.
WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

#: ``random`` module attributes that are RNG *constructors*, judged by
#: their arguments rather than banned outright.
RNG_CONSTRUCTORS = {"Random"}


@register
class DeterminismRule(Rule):
    code = "RPL003"
    name = "determinism"
    description = (
        "Solver packages (core/, assign/, delay/, wld/) must be pure "
        "functions of their inputs: no wall-clock reads, no process-"
        "global or unseeded RNGs, no set-iteration-order dependence. "
        "Inject a seeded random.Random / numpy Generator instead."
    )
    example_trigger = (
        "start = random.choice(candidates)   # process-global RNG\n"
        "stamp = time.time()                 # wall clock in a solver"
    )
    example_avoid = (
        "def anneal(candidates, rng: random.Random):\n"
        "    start = rng.choice(candidates)  # caller-seeded, replayable"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not ctx.in_module(*SCOPED_PACKAGES):
            return
        from_imports = self._wall_clock_from_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, from_imports)
            elif isinstance(node, ast.For):
                finding = self._set_iteration(ctx, node.iter)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Attribute):
                if node.attr == "SystemRandom" and self._base(node) == "random":
                    yield ctx.finding(
                        node,
                        self.code,
                        "random.SystemRandom is nondeterministic by design; "
                        "inject a seeded random.Random instead",
                    )

    # ------------------------------------------------------------------

    @staticmethod
    def _wall_clock_from_imports(tree: ast.Module) -> Set[str]:
        """Local names bound to wall-clock callables via ``from`` imports."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _base(node: ast.Attribute) -> Optional[str]:
        if isinstance(node.value, ast.Name):
            return node.value.id
        return None

    @classmethod
    def _attr_chain(cls, node: ast.AST) -> Optional[str]:
        return Rule.dotted_name(node)

    def _check_call(
        self, ctx: FileContext, call: ast.Call, from_imports: Set[str]
    ) -> Iterator[Finding]:
        func = call.func
        unseeded = not call.args and not call.keywords

        if isinstance(func, ast.Name) and func.id in from_imports:
            yield ctx.finding(
                call, self.code,
                f"wall-clock read '{func.id}()' in solver code; results "
                "must be a pure function of the inputs",
            )
            return
        chain = self._attr_chain(func)
        if chain is None:
            return
        parts = chain.split(".")

        # time.time() / datetime.datetime.now() / datetime.now()
        if tuple(parts[-2:]) in WALL_CLOCK:
            yield ctx.finding(
                call, self.code,
                f"wall-clock read '{chain}()' in solver code; results "
                "must be a pure function of the inputs "
                "(time.monotonic/perf_counter are fine for deadlines)",
            )
            return

        # random.<anything>: module-level global RNG, or Random()/SystemRandom.
        if parts[0] == "random" and len(parts) == 2:
            attr = parts[1]
            if attr == "SystemRandom":
                return  # flagged at the Attribute node
            if attr in RNG_CONSTRUCTORS:
                if unseeded:
                    yield ctx.finding(
                        call, self.code,
                        f"unseeded '{chain}()' in solver code; construct "
                        "it with an explicit seed (or accept an injected "
                        "instance)",
                    )
                return
            yield ctx.finding(
                call, self.code,
                f"process-global RNG call '{chain}()' in solver code; "
                "inject a seeded random.Random instead",
            )
            return

        # numpy.random.* — legacy global RNG and unseeded constructors.
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
            attr = parts[-1]
            if attr in ("default_rng", "RandomState", "Generator", "SeedSequence"):
                if unseeded:
                    yield ctx.finding(
                        call, self.code,
                        f"unseeded '{chain}()' in solver code; pass an "
                        "explicit seed",
                    )
                return
            yield ctx.finding(
                call, self.code,
                f"numpy global-RNG call '{chain}()' in solver code; use a "
                "seeded numpy.random.Generator instead",
            )
            return

        # list(set(...)) / tuple(set(...)) without sorted().
        if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
            if len(call.args) == 1 and self._is_set_expr(call.args[0]):
                yield ctx.finding(
                    call, self.code,
                    f"{func.id}(set(...)) materialises hash-order; wrap in "
                    "sorted(...) to pin a deterministic order",
                )

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        return False

    def _set_iteration(self, ctx: FileContext, iter_expr: ast.AST) -> Optional[Finding]:
        if self._is_set_expr(iter_expr):
            return ctx.finding(
                iter_expr, self.code,
                "iterating a set in solver code depends on hash order; "
                "iterate sorted(...) instead",
            )
        return None
