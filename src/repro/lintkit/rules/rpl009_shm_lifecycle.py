"""RPL009 — shared-memory segment lifecycle.

``/dev/shm`` segments are the one resource in this codebase that
outlives a crashed process: a ``SharedMemory`` segment with no
``unlink`` leaks kernel memory until reboot, and an ``unlink`` from
the wrong side of the fork boundary yanks the mapping out from under
sibling workers mid-batch.  PR 7 settled the ownership protocol —
**the parent that creates a segment owns its ``unlink``; workers only
ever ``close`` their attachment** (see
``repro.core.precompute._release_segment_quietly``) — and this rule
makes the protocol machine-checked:

* ``SharedMemory(..., create=True)`` in a *fork-reachable* function is
  flagged: workers must never create segments (an orphan is guaranteed
  if the worker is SIGKILLed, which the chaos suite does on purpose);
* ``.unlink()`` on a shm handle (a variable assigned from a
  ``SharedMemory(...)`` call or a parameter annotated ``SharedMemory``)
  in fork-reachable code is flagged: unlink is the owner's job;
* a function that creates a segment must guarantee release on error
  paths: the creating function needs a ``try`` whose handler or
  ``finally`` releases the segment — either ``.close()`` + ``.unlink()``
  inline, or a call to a same-module helper whose body contains both
  (the ``_release_segment(shm)`` idiom).

The receiver-type tracking keeps ``Path.unlink()`` (checkpoint
cleanup) out of scope: only names that provably hold a ``SharedMemory``
handle count.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..callgraph import analyze, CallGraph, FunctionInfo, _annotation_name
from ..context import FileContext, Finding
from ..registry import Rule, register


def _is_shm_ctor(graph: CallGraph, ctx: FileContext, call: ast.Call) -> bool:
    absolute = graph.absolute_name(ctx, call.func) or ""
    return absolute.split(".")[-1] == "SharedMemory"


def _is_create(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _shm_names(graph: CallGraph, ctx: FileContext, fi: FunctionInfo) -> Set[str]:
    """Local names that provably hold a ``SharedMemory`` handle."""
    names: Set[str] = set()
    args = fi.node.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is not None:
            annotated = _annotation_name(arg.annotation) or ""
            if annotated.split(".")[-1] == "SharedMemory":
                names.add(arg.arg)
    for node in fi.walk():
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and _is_shm_ctor(graph, ctx, node.value)
        ):
            names.add(node.targets[0].id)
    return names


@register
class ShmLifecycleRule(Rule):
    code = "RPL009"
    name = "shm-lifecycle"
    description = (
        "SharedMemory segments follow the parent-owns-unlink protocol: "
        "creation must guarantee close+unlink on error paths in the "
        "owning scope, workers never create segments, and .unlink() "
        "must not appear in fork-reachable code (workers only close "
        "their attachment)."
    )
    example_trigger = (
        "def _worker(manifest):\n"
        "    shm = SharedMemory(name=manifest.name)\n"
        "    shm.unlink()     # worker unlinks: siblings lose the mapping"
    )
    example_avoid = (
        "shm = SharedMemory(name=..., create=True, size=n)  # parent\n"
        "try:\n"
        "    publish(shm)\n"
        "except BaseException:\n"
        "    _release_segment(shm)   # close() + unlink() helper\n"
        "    raise"
    )

    def __init__(self) -> None:
        self._graph: Optional[CallGraph] = None

    def prepare(self, contexts) -> None:  # type: ignore[no-untyped-def]
        self._graph = analyze(contexts)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        graph = self._graph
        if graph is None or ctx.tree is None or not ctx.in_module("repro"):
            return
        for fi in graph.functions_in(ctx):
            fork_side = fi.qualname in graph.fork_reachable
            shm_names = _shm_names(graph, ctx, fi)
            created: List[ast.Call] = []
            for node in fi.walk():
                if isinstance(node, ast.Call) and _is_shm_ctor(graph, ctx, node):
                    if _is_create(node):
                        created.append(node)
                        if fork_side:
                            yield ctx.finding(
                                node,
                                self.code,
                                f"SharedMemory created in fork-reachable "
                                f"{fi.qualname} "
                                f"(via {graph.chain(fi.qualname, 'fork')}); "
                                "only the parent may create segments — a "
                                "SIGKILLed worker would orphan it",
                            )
                if (
                    fork_side
                    and isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in shm_names
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f".unlink() on shm handle '{node.func.value.id}' in "
                        f"fork-reachable {fi.qualname} "
                        f"(via {graph.chain(fi.qualname, 'fork')}); unlink "
                        "belongs to the owning parent — workers only "
                        "close() their attachment",
                    )
            if created and not fork_side and not self._releases_on_error(graph, fi):
                yield ctx.finding(
                    created[0],
                    self.code,
                    f"{fi.qualname} creates a SharedMemory segment without "
                    "a try whose handler/finally releases it "
                    "(close()+unlink(), directly or via a release helper) "
                    "— an exception here leaks /dev/shm until reboot",
                )

    # ------------------------------------------------------------------

    def _releases_on_error(self, graph: CallGraph, fi: FunctionInfo) -> bool:
        for node in fi.walk():
            if not isinstance(node, ast.Try):
                continue
            cleanup: List[ast.stmt] = list(node.finalbody)
            for handler in node.handlers:
                cleanup.extend(handler.body)
            if not cleanup:
                continue
            if self._body_releases(graph, fi, cleanup, depth=1):
                return True
        return False

    def _body_releases(
        self,
        graph: CallGraph,
        fi: FunctionInfo,
        body: List[ast.stmt],
        depth: int,
    ) -> bool:
        attrs: Set[str] = set()
        calls: List[ast.Call] = []
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    calls.append(node)
                    if isinstance(node.func, ast.Attribute):
                        attrs.add(node.func.attr)
        if {"close", "unlink"} <= attrs:
            return True
        if depth <= 0:
            return False
        for call in calls:
            target = graph._callable_target(fi, call.func)
            if target is None:
                continue
            helper = graph.functions.get(target)
            if helper is None:
                continue
            helper_attrs = {
                node.func.attr
                for node in helper.walk()
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            }
            if {"close", "unlink"} <= helper_attrs:
                return True
        return False
