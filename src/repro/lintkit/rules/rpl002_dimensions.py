"""RPL002 — unit-suffix dimension consistency across call sites.

Functions in the physical-model layers (``repro.delay``, ``repro.rc``,
``repro.tech``) may carry unit suffixes on parameter names, return-value
naming, or the function name itself — ``length_m``, ``min_delay_s``,
``clock_hz``.  This rule builds a lightweight signature database from
those definitions in a pre-pass, then checks every call site in the
linted set: an argument whose *own* name carries a unit suffix of a
different physical dimension than the parameter it binds to is flagged
(``wire_delay(length_m=rise_time_s)``), as is assigning a
suffix-returning function to a name of a different dimension
(``length_m = total_delay_s(...)``).

Dimensions, not scales: the repo is SI-internal, so any non-SI scale
suffix (``_um``, ``_ps``) binding an SI-suffixed parameter is *also*
flagged — a micron-scaled value flowing into a metres parameter is
exactly the silent corruption this rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Packages whose function definitions seed the signature database.
MODEL_PACKAGES = ("repro.delay", "repro.rc", "repro.tech")

#: suffix → (dimension, SI?).  Suffixes are matched against the final
#: ``_``-separated segment of an identifier.
UNIT_SUFFIXES: Dict[str, Tuple[str, bool]] = {
    "m": ("length", True),
    "um": ("length", False),
    "nm": ("length", False),
    "mm": ("length", False),
    "m2": ("area", True),
    "um2": ("area", False),
    "mm2": ("area", False),
    "s": ("time", True),
    "ps": ("time", False),
    "ns": ("time", False),
    "us": ("time", False),
    "hz": ("frequency", True),
    "mhz": ("frequency", False),
    "ghz": ("frequency", False),
    "ohm": ("resistance", True),
    "f": ("capacitance", True),
    "ff": ("capacitance", False),
    "pf": ("capacitance", False),
}


def suffix_dimension(identifier: str) -> Optional[Tuple[str, str, bool]]:
    """``(suffix, dimension, is_si)`` when ``identifier`` ends in a unit
    suffix, else ``None``.  The suffix must be a proper trailing segment
    (``length_m`` yes; ``m`` alone, ``alarm`` no)."""
    if "_" not in identifier:
        return None
    head, _, tail = identifier.rpartition("_")
    if not head or tail not in UNIT_SUFFIXES:
        return None
    dimension, is_si = UNIT_SUFFIXES[tail]
    return tail, dimension, is_si


class _Signature:
    """Unit-suffix view of one model-layer function."""

    def __init__(
        self,
        qualname: str,
        positional: List[str],
        kwonly: List[str],
        has_varargs: bool,
        return_suffix: Optional[Tuple[str, str, bool]],
    ) -> None:
        self.qualname = qualname
        self.positional = positional
        self.params = positional + kwonly
        self.param_suffix = {p: suffix_dimension(p) for p in self.params}
        self.has_varargs = has_varargs
        self.return_suffix = return_suffix

    @property
    def carries_units(self) -> bool:
        return self.return_suffix is not None or any(
            s is not None for s in self.param_suffix.values()
        )


@register
class DimensionRule(Rule):
    code = "RPL002"
    name = "dimension-annotation"
    description = (
        "Unit-suffixed names (_m, _s, _hz, _ohm, _f, ...) must bind "
        "consistently: an argument named with one physical dimension "
        "must not flow into a model-layer parameter suffixed with "
        "another, and non-SI scale suffixes (_um, _ps) must not bind "
        "SI-suffixed parameters — the repo computes SI-internal."
    )
    example_trigger = (
        "def rc_delay(res_ohm, cap_f): ...\n"
        "rc_delay(trace_len_m, cap_f)   # a length bound to a resistance"
    )
    example_avoid = (
        "res_ohm = sheet_res(trace_len_m, width_m)\n"
        "rc_delay(res_ohm, cap_f)       # dimensions line up"
    )

    def __init__(self) -> None:
        self._db: Dict[str, Optional[_Signature]] = {}

    # ------------------------------------------------------------------
    # Pre-pass: signature database over the model packages
    # ------------------------------------------------------------------

    def prepare(self, contexts: Sequence[FileContext]) -> None:
        for ctx in contexts:
            if ctx.tree is None or not ctx.in_module(*MODEL_PACKAGES):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("_"):
                    continue
                args = node.args
                params = [a.arg for a in args.posonlyargs + args.args]
                kwonly = [a.arg for a in args.kwonlyargs]
                sig = _Signature(
                    qualname=f"{ctx.module}.{node.name}",
                    positional=params,
                    kwonly=kwonly,
                    has_varargs=args.vararg is not None,
                    return_suffix=suffix_dimension(node.name),
                )
                if not sig.carries_units:
                    continue
                if node.name in self._db and self._db[node.name] is not None:
                    other = self._db[node.name]
                    if other is not None and other.qualname != sig.qualname:
                        # Name collision across modules: ambiguous at a
                        # bare-name call site, so stand down for it.
                        self._db[node.name] = None
                        continue
                self._db[node.name] = sig

    # ------------------------------------------------------------------
    # Per-file check
    # ------------------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not self._db:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(ctx, node)

    def _lookup(self, func: ast.AST) -> Optional[_Signature]:
        if isinstance(func, ast.Name):
            return self._db.get(func.id)
        if isinstance(func, ast.Attribute):
            return self._db.get(func.attr)
        return None

    @staticmethod
    def _arg_name(expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        sig = self._lookup(call.func)
        if sig is None:
            return
        positional: List[str] = sig.positional
        if positional and positional[0] in ("self", "cls") and isinstance(
            call.func, ast.Attribute
        ):
            positional = positional[1:]
        bindings: List[Tuple[str, ast.AST]] = []
        if not sig.has_varargs and not any(
            isinstance(a, ast.Starred) for a in call.args
        ):
            for param, arg in zip(positional, call.args):
                bindings.append((param, arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in sig.param_suffix:
                bindings.append((kw.arg, kw.value))
        for param, arg in bindings:
            param_info = sig.param_suffix.get(param)
            if param_info is None:
                continue
            name = self._arg_name(arg)
            if name is None:
                continue
            arg_info = suffix_dimension(name)
            if arg_info is None:
                continue
            p_suffix, p_dim, _p_si = param_info
            a_suffix, a_dim, _a_si = arg_info
            if a_suffix == p_suffix:
                continue
            if a_dim != p_dim:
                problem = f"dimension mismatch ({a_dim} vs {p_dim})"
            else:
                problem = f"unit-scale mismatch (_{a_suffix} vs _{p_suffix})"
            yield ctx.finding(
                arg,
                self.code,
                f"argument '{name}' bound to parameter '{param}' of "
                f"{sig.qualname}: {problem}; convert via repro.units or "
                "rename to the parameter's unit suffix",
            )

    def _check_assign(self, ctx: FileContext, node: ast.Assign) -> Iterator[Finding]:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        if not isinstance(node.value, ast.Call):
            return
        sig = self._lookup(node.value.func)
        if sig is None or sig.return_suffix is None:
            return
        target = node.targets[0].id
        target_info = suffix_dimension(target)
        if target_info is None:
            return
        r_suffix, r_dim, _ = sig.return_suffix
        t_suffix, t_dim, _ = target_info
        if t_suffix == r_suffix or t_dim == r_dim:
            return
        yield ctx.finding(
            node.targets[0],
            self.code,
            f"result of {sig.qualname} (unit _{r_suffix}, {r_dim}) "
            f"assigned to '{target}' ({t_dim}); rename the target or "
            "convert via repro.units",
        )
