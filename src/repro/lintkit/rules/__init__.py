"""Built-in rule plugins; importing this package registers them all."""

from __future__ import annotations

from . import (  # noqa: F401
    rpl001_unit_literals,
    rpl002_dimensions,
    rpl003_determinism,
    rpl004_facade,
    rpl005_obs_guard,
    rpl006_swallow,
    rpl007_async_blocking,
    rpl008_fork_safety,
    rpl009_shm_lifecycle,
    rpl010_fault_sites,
    rpl011_deadline,
)
