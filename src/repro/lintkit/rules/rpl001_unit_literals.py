"""RPL001 — bare SI conversion literals outside ``repro.units``.

The library computes internally in SI units; conversions belong in
:mod:`repro.units` so they are grep-able, validated, and single-sourced
(the Hefeida stochastic-WLD work is a case study in how silently
mismatched unit coefficients corrupt wire-length models).  This rule
flags power-of-ten literals from the SI-prefix conversion set when they
appear as a *multiplicative* operand — ``feature / 1e-9``,
``area * 1e6`` — anywhere outside ``repro.units``.

Additive uses are exempt on purpose: ``capacity * (1 + 1e-12)`` and
``ceil(low - 1e-12)`` are numerical tolerances, not unit conversions,
and the two populations separate cleanly on that syntactic axis.
Non-conversion magnitudes (``2e-6``, ``1e-4``) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Literal values treated as SI-prefix conversion factors.  1e±3 is
#: excluded: milli-scale literals are overwhelmingly display scalings
#: (ms, mW) whose false-positive rate would swamp the signal.
CONVERSION_VALUES = frozenset(
    {1e-15, 1e-12, 1e-9, 1e-6, 1e6, 1e9, 1e12, 1e15}
)

#: Modules/files exempt because they *define* the conversion constants.
EXEMPT_MODULES = ("repro.units",)


@register
class UnitLiteralRule(Rule):
    code = "RPL001"
    name = "unit-literal"
    description = (
        "Bare SI conversion literal (1e-6, 1e-9, 1e-15, ...) used "
        "multiplicatively outside repro.units; route it through the "
        "named constants/helpers (UM, NM, FF, to_um, MEGA, ...) so "
        "every unit conversion in the repo is grep-able and validated."
    )
    example_trigger = "wire_len = length_um * 1e-6    # magic SI factor"
    example_avoid = (
        "from repro.units import UM\n"
        "wire_len = length_um * UM      # named, validated conversion"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.in_module(*EXEMPT_MODULES):
            return
        parents = ctx.parent_map()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            # Only float literals: integer multiplications (n * 1000000)
            # are counts, not unit conversions.
            if not isinstance(value, float) or value not in CONVERSION_VALUES:
                continue
            # Look through a unary sign to the enclosing expression.
            child: ast.AST = node
            parent = parents.get(child)
            while isinstance(parent, ast.UnaryOp) and isinstance(
                parent.op, (ast.UAdd, ast.USub)
            ):
                child = parent
                parent = parents.get(child)
            if not isinstance(parent, ast.BinOp):
                continue
            if not isinstance(parent.op, (ast.Mult, ast.Div)):
                continue
            if child is not parent.left and child is not parent.right:
                continue
            yield ctx.finding(
                node,
                self.code,
                f"bare SI conversion literal {value!r} in arithmetic; "
                "use the named repro.units constants (UM, NM, FF, MEGA, "
                "...) or helpers (um(), to_um(), ...) instead",
            )
