"""RPL004 — facade boundary.

:mod:`repro.api` is the stable, keyword-only public surface (PR 4);
``repro.core`` and ``repro.assign`` are implementation internals whose
signatures may churn freely.  Caller layers — the CLI, the HTTP
serving layer (``service/``), ``analysis/``, ``tools/``,
``benchmarks/`` — must import the facade so internal refactors never
ripple outward.  The facade carries non-shadowing spellings where the
obvious name collides with a subpackage (``api.optimize_rank`` for
``api.optimize``, which cannot be re-exported at top level without
shadowing ``repro.optimize``), so no caller layer has a structural
excuse to reach inside.

Flagged: any ``import``/``from`` of ``repro.core``/``repro.assign`` (or
their relative spellings ``from .core ...`` / ``from ..assign ...``)
from a scoped file.  Exempt: imports inside ``if TYPE_CHECKING:``
blocks, which express a typing dependency without runtime coupling.

The ``analysis/`` package is the facade's own implementation layer and
cannot import ``repro.api`` back (circular); its existing internal
imports are carried in the committed baseline with per-entry
justifications rather than silently exempted, so any *new* coupling
still trips the gate.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..context import FileContext, Finding
from ..registry import Rule, register

#: Repo-relative path prefixes under the facade contract.
SCOPED_PATHS = (
    "src/repro/cli.py",
    "src/repro/analysis",
    "src/repro/service",
    "tools",
    "benchmarks",
)

#: Forbidden import targets (dotted-module prefixes).
INTERNAL_PACKAGES = ("repro.core", "repro.assign")


@register
class FacadeBoundaryRule(Rule):
    code = "RPL004"
    name = "facade-boundary"
    description = (
        "Caller layers (cli.py, service/, analysis/, tools/, "
        "benchmarks/) must import the stable repro.api facade, not "
        "repro.core / repro.assign internals; TYPE_CHECKING-only "
        "imports are exempt."
    )
    example_trigger = "from repro.core.dp import solve_rank    # caller layer"
    example_avoid = (
        "from repro.api import rank_architectures  # stable facade\n"
        "if TYPE_CHECKING:\n"
        "    from repro.core.dp import DPTables     # types-only: exempt"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not ctx.in_path(*SCOPED_PATHS):
            return
        type_checking_lines = self._type_checking_lines(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_internal(alias.name):
                        if node.lineno in type_checking_lines:
                            continue
                        yield self._flag(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.lineno in type_checking_lines:
                    continue
                target = self._resolve(ctx, node)
                if target is None:
                    continue
                if self._is_internal(target):
                    yield self._flag(ctx, node, target)
                elif node.module is None or not node.module:
                    # ``from . import core`` / ``from .. import assign``:
                    # the imported *names* are the submodules.
                    for alias in node.names:
                        candidate = f"{target}.{alias.name}" if target else alias.name
                        if self._is_internal(candidate):
                            yield self._flag(ctx, node, candidate)

    # ------------------------------------------------------------------

    @staticmethod
    def _is_internal(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in INTERNAL_PACKAGES
        )

    @staticmethod
    def _resolve(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted target of a (possibly relative) from-import."""
        if node.level == 0:
            return node.module
        if ctx.module is None:
            return None
        # Package the importing module lives in: one level strips the
        # module name itself, each further level one package.
        parts = ctx.module.split(".")
        if len(parts) < node.level:
            return None
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    @staticmethod
    def _type_checking_lines(tree: ast.Module) -> Set[int]:
        """Line numbers inside ``if TYPE_CHECKING:`` bodies."""
        lines: Set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            name = (
                test.id
                if isinstance(test, ast.Name)
                else test.attr
                if isinstance(test, ast.Attribute)
                else None
            )
            if name != "TYPE_CHECKING":
                continue
            for stmt in node.body:
                end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
                lines.update(range(stmt.lineno, end + 1))
        return lines

    def _flag(self, ctx: FileContext, node: ast.AST, target: str) -> Finding:
        return ctx.finding(
            node,
            self.code,
            f"internal import '{target}' from a caller layer; go through "
            "the stable repro.api facade (or baseline with justification "
            "if the facade genuinely cannot cover it)",
        )
