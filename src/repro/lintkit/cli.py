"""Command-line front end: ``python -m repro.lintkit [paths]``.

Exit codes (stable contract, asserted by ``tests/lintkit/test_cli.py``):

* ``0`` — no non-baselined findings;
* ``1`` — at least one new finding (or, with ``--strict-baseline``, a
  stale baseline entry);
* ``2`` — usage error (unknown rule code, missing path, bad baseline).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import Baseline, BaselineError
from .context import FileContext, Finding
from .engine import lint_paths
from .registry import all_rules
from .reporters import render_json, render_text

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Baseline picked up automatically when it exists next to the cwd.
DEFAULT_BASELINE = "lint_baseline.json"

#: Paths linted when none are given (the repo's own gate).
DEFAULT_PATHS = ("src", "tests", "tools", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description="Repo-specific static analysis (rules RPL001-RPL011).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover all current findings "
        "(justifications on unchanged entries are preserved) and exit 0",
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--prune-stale", action="store_true",
        help="rewrite the baseline with stale capacity removed "
        "(counts clamped to live findings, dead entries dropped) and exit 0",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--root", metavar="DIR", default=".",
        help="repository root findings are reported relative to "
        "(default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print one rule's rationale with trigger/avoid examples and exit",
    )
    parser.add_argument(
        "--emit-fault-sites", metavar="FILE",
        help="write the registry of literal fault_point() sites found in "
        "the linted paths to FILE as markdown and exit",
    )
    parser.add_argument(
        "--check-fault-sites", metavar="FILE",
        help="fail (exit 1) when FILE does not match the fault-site "
        "registry that --emit-fault-sites would write",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"    {cls.description}")
    return "\n".join(lines)


def _indent(block: str) -> str:
    return "\n".join(f"    {line}" for line in block.splitlines())


def _explain(code: str) -> Optional[str]:
    """Human-oriented writeup of one rule: rationale plus examples."""
    wanted = code.strip().upper()
    for cls in all_rules():
        if cls.code != wanted:
            continue
        parts = [f"{cls.code} — {cls.name}", "", cls.description]
        module = sys.modules.get(cls.__module__)
        doc = (module.__doc__ or "").strip() if module else ""
        if doc:
            parts += ["", doc]
        trigger = getattr(cls, "example_trigger", "")
        avoid = getattr(cls, "example_avoid", "")
        if trigger:
            parts += ["", "Triggers:", _indent(trigger)]
        if avoid:
            parts += ["", "Passes:", _indent(avoid)]
        return "\n".join(parts)
    return None


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``--explain ... | head``) closed
        # stdout early; that is a normal way to stop reading, not a
        # failure.  Detach stdout so the interpreter's shutdown flush
        # cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


def _run(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_OK

    if args.explain:
        text = _explain(args.explain)
        if text is None:
            print(f"error: unknown rule code {args.explain!r}", file=sys.stderr)
            return EXIT_USAGE
        print(text)
        return EXIT_OK

    root = Path(args.root)
    raw_paths = args.paths or [
        p for p in DEFAULT_PATHS if (root / p).exists()
    ]
    paths = [Path(p) for p in raw_paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such file or directory: "
            f"{', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    try:
        findings, contexts = lint_paths(
            paths, root, select=_codes(args.select), ignore=_codes(args.ignore)
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    if args.emit_fault_sites or args.check_fault_sites:
        from .rules.rpl010_fault_sites import collect_fault_sites, render_fault_sites

        registry = collect_fault_sites(contexts)
        rendered = render_fault_sites(registry)
        if args.emit_fault_sites:
            Path(args.emit_fault_sites).write_text(rendered, encoding="utf-8")
            print(
                f"wrote {args.emit_fault_sites} "
                f"({len(registry)} registered site(s))"
            )
            return EXIT_OK
        target = Path(args.check_fault_sites)
        current = target.read_text(encoding="utf-8") if target.exists() else None
        if current != rendered:
            print(
                f"error: {target} is stale — regenerate it with "
                "--emit-fault-sites",
                file=sys.stderr,
            )
            return EXIT_FINDINGS
        print(f"{target} matches the fault-site registry")
        return EXIT_OK

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        elif (root / DEFAULT_BASELINE).exists() or args.write_baseline:
            baseline_path = root / DEFAULT_BASELINE

    if args.write_baseline:
        if baseline_path is None:
            print("error: --write-baseline needs --baseline or a repo root",
                  file=sys.stderr)
            return EXIT_USAGE
        previous = None
        if baseline_path.exists():
            try:
                previous = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
        line_texts = _line_texts(findings, contexts)
        Baseline.from_findings(findings, line_texts, previous).save(baseline_path)
        print(
            f"wrote {baseline_path} covering {len(findings)} finding(s); "
            "add a justification to every entry"
        )
        return EXIT_OK

    if args.prune_stale:
        if baseline_path is None or not baseline_path.exists():
            print("error: --prune-stale needs an existing baseline file",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        pruned = baseline.pruned(findings)
        before = sum(max(0, e.count) for e in baseline.entries)
        after = sum(e.count for e in pruned.entries)
        pruned.save(baseline_path)
        print(
            f"pruned {baseline_path}: {len(baseline.entries)} -> "
            f"{len(pruned.entries)} entries "
            f"({before - after} stale occurrence(s) removed)"
        )
        return EXIT_OK

    baselined = 0
    stale: List = []
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, baselined, stale = baseline.apply(findings)

    renderer = render_json if args.format == "json" else render_text
    report = renderer(
        findings, files=len(contexts), baselined=baselined, stale=stale
    )
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)

    if findings:
        return EXIT_FINDINGS
    if stale and args.strict_baseline:
        return EXIT_FINDINGS
    return EXIT_OK


def _line_texts(
    findings: Sequence[Finding], contexts: Sequence[FileContext]
) -> Dict[str, str]:
    by_rel = {ctx.rel: ctx for ctx in contexts}
    texts: Dict[str, str] = {}
    for f in findings:
        ctx = by_rel.get(f.path)
        if ctx is not None:
            texts[f.fingerprint] = ctx.line_text(f.line).strip()
    return texts
