"""Module-level call graph and concurrency reachability (shared pre-pass).

The concurrency rules (RPL007-RPL009) all need the same whole-repo
view: *which functions can run on the asyncio event loop* and *which
functions can run inside a forked worker process*.  Neither property is
local to a file — a ``time.sleep`` three calls below an ``async def``
handler blocks the loop just as surely as one written inline — so this
module builds, once per lint run:

* a **function table** — every ``def``/``async def`` in the linted
  ``repro.*`` modules, keyed by dotted qualname
  (``repro.service.app.RankApp.dispatch``);
* a **call graph** — edges resolved through imports (absolute and
  relative), ``self.``/``cls.`` method calls, same-module names, class
  instantiation (edge to ``__init__``), and module-level variables with
  a class annotation (``_ACTIVE: Optional["_Armed"]`` makes
  ``_ACTIVE.fire(...)`` resolve to ``_Armed.fire``);
* an **event-loop-reachable** set — the closure over call edges from
  every ``async def`` (a sync function called from a coroutine runs on
  the loop);
* a **fork-reachable** set — the closure from worker entrypoints.
  Seeds are found syntactically: any function passed as a ``target=``
  or ``initializer=`` keyword (``multiprocessing.Process``, pool
  initializers), any function passed as the first argument of a
  ``.submit(...)`` call, and — via a *submit-forwarding* fixpoint —
  any function passed into a parameter that some callee eventually
  forwards into ``.submit``/``target=`` (this is how
  ``RankApp._solve_point(key, solve.solve_rank_job, ...)`` marks the
  solve jobs as executor payloads two frames away from the actual
  ``pool.submit``).

Work dispatched *through* an executor is naturally excluded from the
loop closure: a function reference passed to ``.submit`` is an
argument, not a call edge, so the loop closure stops exactly at the
executor boundary — which is the behaviour RPL007's "unless routed
through the executor" escape hatch requires.

The analysis is shared: every rule's ``prepare`` calls
:func:`analyze`, and a single-slot identity cache makes the first rule
pay for the build while the rest reuse it (the engine passes the same
``contexts`` list object to every rule in a run).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .context import FileContext

#: Module-level constructor calls whose result is a synchronisation /
#: OS handle that does not survive ``fork()`` intact (RPL008).
HANDLE_FACTORIES: Dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "threading.Thread": "thread handle",
    "threading.local": "thread-local",
    "asyncio.new_event_loop": "event loop",
    "asyncio.get_event_loop": "event loop",
    "socket.socket": "socket",
}


class FunctionInfo:
    """One ``def``/``async def`` in the linted set."""

    __slots__ = (
        "qualname", "ctx", "node", "class_name", "is_async", "params",
        "kwonly", "is_method",
    )

    def __init__(
        self,
        qualname: str,
        ctx: FileContext,
        node: ast.AST,
        class_name: Optional[str],
    ) -> None:
        self.qualname = qualname
        self.ctx = ctx
        self.node = node
        self.class_name = class_name
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        args = node.args  # type: ignore[attr-defined]
        self.params: List[str] = [a.arg for a in args.posonlyargs + args.args]
        self.kwonly: List[str] = [a.arg for a in args.kwonlyargs]
        self.is_method = class_name is not None and bool(
            self.params and self.params[0] in ("self", "cls")
        )

    def walk(self) -> Iterator[ast.AST]:
        """This function's own nodes; nested ``def`` subtrees excluded
        (they are separate graph nodes, linked by a parent edge)."""
        stack: List[ast.AST] = list(self.node.body)  # type: ignore[attr-defined]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)


class _ModuleInfo:
    """Per-module name-resolution state."""

    __slots__ = ("module", "imports", "var_types", "handle_vars")

    def __init__(self, module: str) -> None:
        self.module = module
        #: local alias -> absolute dotted target
        self.imports: Dict[str, str] = {}
        #: module-level variable -> class qualname (from annotation or
        #: a ``var = ClassName(...)`` assignment)
        self.var_types: Dict[str, str] = {}
        #: module-level variable -> handle kind (RPL008)
        self.handle_vars: Dict[str, str] = {}


def _resolve_relative(
    module: str, level: int, target: Optional[str], is_package: bool
) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) from-import.

    In a package ``__init__`` the module name *is* the package, so one
    relative level resolves against the module itself rather than
    stripping it (``from .inject import x`` inside ``repro.faultkit``'s
    ``__init__`` means ``repro.faultkit.inject``).
    """
    if level == 0:
        return target
    drop = level - 1 if is_package else level
    parts = module.split(".")
    if len(parts) < drop:
        return None
    base = parts[: len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _annotation_name(node: ast.AST) -> Optional[str]:
    """Innermost dotted name of an annotation, unwrapping ``Optional[...]``
    / ``Final[...]`` subscripts and string ("forward") annotations."""
    while True:
        if isinstance(node, ast.Subscript):
            outer = _dotted(node.value)
            if outer and outer.split(".")[-1] in ("Optional", "Final", "ClassVar"):
                node = node.slice
                continue
            return outer
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
                continue
            except SyntaxError:
                return None
        return _dotted(node)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """The shared analysis result.  Built by :func:`analyze`."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.class_names: Set[str] = set()
        self.edges: Dict[str, Set[str]] = {}
        #: seed qualname -> human-readable reason
        self.fork_seeds: Dict[str, str] = {}
        self.loop_seeds: Dict[str, str] = {}
        self.fork_reachable: Set[str] = set()
        self.loop_reachable: Set[str] = set()
        self._fork_parent: Dict[str, str] = {}
        self._loop_parent: Dict[str, str] = {}
        self._by_ctx: Dict[str, List[FunctionInfo]] = {}
        self._modinfo: Dict[str, _ModuleInfo] = {}

    # ------------------------------------------------------------------
    # Query API for rules
    # ------------------------------------------------------------------

    def functions_in(self, ctx: FileContext) -> List[FunctionInfo]:
        return self._by_ctx.get(ctx.rel, [])

    def module_handles(self, module: Optional[str]) -> Dict[str, str]:
        mi = self._modinfo.get(module or "")
        return mi.handle_vars if mi is not None else {}

    def absolute_name(self, ctx: FileContext, expr: ast.AST) -> Optional[str]:
        """Dotted name of ``expr`` with the head resolved through the
        module's imports (``sleep`` -> ``time.sleep``); names that are
        not imports pass through unchanged (``open`` -> ``open``)."""
        dotted = _dotted(expr)
        if dotted is None:
            return None
        mi = self._modinfo.get(ctx.module or "")
        if mi is None:
            return dotted
        head, _, rest = dotted.partition(".")
        target = mi.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def chain(self, qualname: str, kind: str) -> str:
        """``seed -> ... -> qualname`` evidence path for a finding."""
        parents = self._fork_parent if kind == "fork" else self._loop_parent
        seeds = self.fork_seeds if kind == "fork" else self.loop_seeds
        hops = [qualname]
        seen = {qualname}
        while hops[0] not in seeds and hops[0] in parents:
            nxt = parents[hops[0]]
            if nxt in seen:
                break
            seen.add(nxt)
            hops.insert(0, nxt)
        return " -> ".join(hops)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def resolve(self, fi: FunctionInfo, expr: ast.AST) -> Optional[str]:
        """Qualname of the known function or class ``expr`` refers to,
        in the scope of function ``fi`` — or ``None``."""
        mi = self._modinfo.get(fi.ctx.module or "")
        if mi is None:
            return None
        dotted = _dotted(expr)
        if dotted is None:
            return None
        return self._resolve_dotted(mi, fi, dotted)

    def _resolve_dotted(
        self, mi: _ModuleInfo, fi: Optional[FunctionInfo], dotted: str
    ) -> Optional[str]:
        parts = dotted.split(".")
        module = mi.module
        # self.method() / cls.method() inside a class body.
        if (
            fi is not None
            and len(parts) == 2
            and parts[0] in ("self", "cls")
            and fi.class_name
        ):
            candidate = f"{module}.{fi.class_name}.{parts[1]}"
            if candidate in self.functions:
                return candidate
            return None
        # Same-module name (function, class, or ClassName.method).
        candidate = f"{module}.{dotted}"
        if candidate in self.functions or candidate in self.class_names:
            return candidate
        # Through an import alias: the head maps to an absolute target.
        target = mi.imports.get(parts[0])
        if target is not None:
            candidate = ".".join([target] + parts[1:])
            resolved = self._chase_reexports(candidate)
            if resolved is not None:
                return resolved
        # A module-level variable with a known class type: var.method().
        if len(parts) == 2 and parts[0] in mi.var_types:
            candidate = f"{mi.var_types[parts[0]]}.{parts[1]}"
            if candidate in self.functions:
                return candidate
        return None

    def _chase_reexports(self, candidate: str, hops: int = 4) -> Optional[str]:
        """Resolve ``candidate`` through package re-exports.

        ``from ..faultkit import fault_point`` binds the *package's*
        name (``repro.faultkit.fault_point``); the definition lives at
        ``repro.faultkit.inject.fault_point`` via the ``__init__``'s
        own ``from .inject import fault_point``.  Walk those hops.
        """
        for _ in range(hops):
            if candidate in self.functions or candidate in self.class_names:
                return candidate
            parts = candidate.split(".")
            # Longest known-module prefix, then one re-exported name.
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                mi = self._modinfo.get(prefix)
                if mi is None:
                    continue
                target = mi.imports.get(parts[cut])
                if target is None:
                    return None
                candidate = ".".join([target] + parts[cut + 1 :])
                break
            else:
                return None
        return None

    def _callable_target(self, fi: FunctionInfo, expr: ast.AST) -> Optional[str]:
        """Resolve ``expr`` to a *function* qualname (classes resolve to
        their ``__init__`` when it exists, else ``None``)."""
        resolved = self.resolve(fi, expr)
        if resolved is None:
            return None
        if resolved in self.functions:
            return resolved
        init = f"{resolved}.__init__"
        return init if init in self.functions else None


def _collect(graph: CallGraph, contexts: Sequence[FileContext]) -> None:
    """Pass 1: function table, classes, imports, module-level handles."""
    for ctx in contexts:
        if ctx.tree is None or not ctx.in_module("repro"):
            continue
        module = ctx.module or ""
        is_package = ctx.path.name == "__init__.py"
        mi = graph._modinfo.setdefault(module, _ModuleInfo(module))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mi.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        mi.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(
                    module, node.level, node.module, is_package
                )
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    mi.imports[local] = f"{base}.{alias.name}" if base else alias.name

        bucket = graph._by_ctx.setdefault(ctx.rel, [])

        def visit(
            body: Sequence[ast.stmt],
            prefix: str,
            class_name: Optional[str],
            parent_fn: Optional[str],
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{stmt.name}"
                    info = FunctionInfo(qualname, ctx, stmt, class_name)
                    graph.functions[qualname] = info
                    bucket.append(info)
                    if parent_fn is not None:
                        # A nested def runs (if at all) in its parent's
                        # execution context: over-approximate with an edge.
                        graph.edges.setdefault(parent_fn, set()).add(qualname)
                    visit(stmt.body, qualname, None, qualname)
                elif isinstance(stmt, ast.ClassDef):
                    graph.class_names.add(f"{prefix}.{stmt.name}")
                    visit(stmt.body, f"{prefix}.{stmt.name}", stmt.name, parent_fn)

        visit(ctx.tree.body, module, None, None)

        # Module-level variable types and fork-hostile handles.
        for stmt in ctx.tree.body:
            target: Optional[str] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                target, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                target, value, annotation = stmt.target.id, stmt.value, stmt.annotation
            if target is None:
                continue
            if annotation is not None:
                name = _annotation_name(annotation)
                if name is not None:
                    mi.var_types.setdefault(target, f"__unresolved__.{name}")
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted is not None:
                    mi.var_types.setdefault(target, f"__unresolved__.{dotted}")


def _finish_var_types(graph: CallGraph) -> None:
    """Resolve the deferred module-level variable types now that every
    class and import in the linted set is known."""
    for mi in graph._modinfo.values():
        for var, marker in list(mi.var_types.items()):
            if not marker.startswith("__unresolved__."):
                continue
            dotted = marker[len("__unresolved__."):]
            resolved = graph._resolve_dotted(mi, None, dotted)
            if resolved is not None and resolved in graph.class_names:
                mi.var_types[var] = resolved
            else:
                # Not a known class: a handle factory, or foreign.
                absolute = dotted
                head, _, rest = dotted.partition(".")
                target = mi.imports.get(head)
                if target is not None:
                    absolute = f"{target}.{rest}" if rest else target
                del mi.var_types[var]
                kind = HANDLE_FACTORIES.get(absolute)
                if kind is not None:
                    mi.handle_vars[var] = kind


def _link(graph: CallGraph) -> None:
    """Pass 2: call edges plus fork/loop seed detection."""
    # (caller, callee, call node, via-attribute?) for the forwarding fixpoint.
    call_sites: List[Tuple[FunctionInfo, str, ast.Call, bool]] = []
    # (function, param) pairs whose value flows into .submit/target=.
    submitting: Dict[str, Set[str]] = {}

    def note_payload(fi: FunctionInfo, expr: ast.AST, how: str) -> None:
        target = graph._callable_target(fi, expr)
        if target is not None:
            graph.fork_seeds.setdefault(
                target, f"{how} at {fi.ctx.rel}:{getattr(expr, 'lineno', '?')}"
            )
            return
        dotted = _dotted(expr)
        if dotted is not None and dotted in fi.params + fi.kwonly:
            submitting.setdefault(fi.qualname, set()).add(dotted)

    for fi in graph.functions.values():
        if fi.is_async:
            graph.loop_seeds.setdefault(
                fi.qualname,
                f"async def at {fi.ctx.rel}:{fi.node.lineno}",  # type: ignore[attr-defined]
            )
        for node in fi.walk():
            if not isinstance(node, ast.Call):
                continue
            callee = graph._callable_target(fi, node.func)
            if callee is not None:
                graph.edges.setdefault(fi.qualname, set()).add(callee)
                call_sites.append(
                    (fi, callee, node, isinstance(node.func, ast.Attribute))
                )
            for kw in node.keywords:
                if kw.arg in ("target", "initializer"):
                    note_payload(fi, kw.value, f"worker entrypoint ({kw.arg}=)")
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                note_payload(fi, node.args[0], "executor payload (.submit)")

    # Submit-forwarding fixpoint: a function whose parameter is handed
    # into a known submitter's submitting parameter is itself a submitter,
    # and function references bound to such parameters are fork seeds.
    changed = True
    while changed:
        changed = False
        for fi, callee, node, via_attr in call_sites:
            params = submitting.get(callee)
            if not params:
                continue
            callee_info = graph.functions[callee]
            positional = callee_info.params
            if callee_info.is_method and via_attr:
                positional = positional[1:]
            bindings: List[Tuple[str, ast.AST]] = []
            if not any(isinstance(a, ast.Starred) for a in node.args):
                bindings.extend(zip(positional, node.args))
            for kw in node.keywords:
                if kw.arg is not None:
                    bindings.append((kw.arg, kw.value))
            for param, expr in bindings:
                if param not in params:
                    continue
                target = graph._callable_target(fi, expr)
                if target is not None and target not in graph.fork_seeds:
                    graph.fork_seeds[target] = (
                        "executor payload (forwarded to .submit) at "
                        f"{fi.ctx.rel}:{getattr(expr, 'lineno', '?')}"
                    )
                    changed = True
                    continue
                dotted = _dotted(expr)
                if dotted is not None and dotted in fi.params + fi.kwonly:
                    have = submitting.setdefault(fi.qualname, set())
                    if dotted not in have:
                        have.add(dotted)
                        changed = True


def _closure(
    graph: CallGraph, seeds: Dict[str, str]
) -> Tuple[Set[str], Dict[str, str]]:
    reachable: Set[str] = set(seeds)
    parents: Dict[str, str] = {}
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        for callee in graph.edges.get(current, ()):
            if callee not in reachable:
                reachable.add(callee)
                parents[callee] = current
                frontier.append(callee)
    return reachable, parents


#: Single-slot cache: the engine hands the same ``contexts`` list to
#: every rule's ``prepare`` within one run.
_CACHE: List[Tuple[object, CallGraph]] = []


def analyze(contexts: Sequence[FileContext]) -> CallGraph:
    """Build (or fetch the cached) call graph for one lint run."""
    if _CACHE and _CACHE[0][0] is contexts:
        return _CACHE[0][1]
    graph = CallGraph()
    _collect(graph, contexts)
    _finish_var_types(graph)
    _link(graph)
    graph.fork_reachable, graph._fork_parent = _closure(graph, graph.fork_seeds)
    graph.loop_reachable, graph._loop_parent = _closure(graph, graph.loop_seeds)
    del _CACHE[:]
    _CACHE.append((contexts, graph))
    return graph
