"""Deterministic fault schedules: *which* fault fires *where*.

A :class:`FaultSchedule` is an ordered tuple of :class:`FaultSpec`
entries.  Each spec names a fault **site** (a string woven into the
runner stack, e.g. ``parallel.worker.start``), a fault **kind** (what
happens when it fires), and matchers narrowing the firing to a specific
point key, attempt index, resubmission index, or per-process occurrence
count.  Schedules are plain data: they round-trip through JSON, travel
to worker processes by pickle, and can be generated reproducibly from
an injected :class:`random.Random` via :meth:`FaultSchedule.seeded` —
the same seed always yields the same chaos run.

Schedules describe *intent* only; arming them is
:func:`repro.faultkit.inject.install`'s job.  Nothing in this module
touches processes, files, or clocks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import random

from ..errors import FaultInjectionError

#: Environment variable consulted by :func:`schedule_from_env` — either
#: inline JSON (first non-space char ``[`` or ``{``) or a path to a
#: JSON file.
ENV_VAR = "REPRO_FAULT_SCHEDULE"

#: Every fault kind the injector knows how to perform.
KINDS: Tuple[str, ...] = ("raise", "kill", "hang", "pickle", "torn", "corrupt")

#: Fault sites woven into the runner stack (globs in specs may match
#: others; this tuple documents — and :meth:`FaultSchedule.seeded`
#: draws from — the canonical set).
SITES: Tuple[str, ...] = (
    "executor.attempt.start",
    "executor.attempt.end",
    "parallel.worker.start",
    "parallel.result",
    "pool.shm.export",
    "pool.shm.attach",
    "pool.chunk.dispatch",
    "pool.chunk.start",
    "checkpoint.write.pre",
    "checkpoint.write.mid",
    "checkpoint.write.post",
    "precompute.coarsen",
    "precompute.tables",
    "service.request.start",
    "service.solve.start",
)

#: Sites that only fire inside pool worker processes.  ``kill``/``hang``
#: faults are restricted to these by :meth:`FaultSchedule.seeded` so a
#: generated schedule never kills the parent (sequential) process.
#: ``pool.chunk.start`` fires once per received chunk (with the chunk's
#: first point as context), ``pool.shm.attach`` once at worker startup.
WORKER_SITES: Tuple[str, ...] = (
    "parallel.worker.start",
    "parallel.result",
    "pool.chunk.start",
    "pool.shm.attach",
)

#: Sites that receive a ``path`` context value and therefore support
#: the file-mangling ``torn``/``corrupt`` kinds.  The shared-memory
#: sites expose the ``/dev/shm`` segment path: ``corrupt`` at
#: ``pool.shm.export`` flips a byte *after* the parent computed the
#: segment digest, so every worker detects the mismatch on attach —
#: the canonical test of the fingerprint validation.  (``seeded`` only
#: draws checkpoint files: truncating a mapped segment can SIGBUS
#: readers, which is a crash shape the kill fault already covers.)
FILE_SITES: Tuple[str, ...] = (
    "checkpoint.write.post",
    "pool.shm.export",
    "pool.shm.attach",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    site:
        Fault-site name; ``fnmatch`` globs are honoured
        (``"checkpoint.write.*"``).
    kind:
        One of :data:`KINDS` — ``raise`` (an
        :class:`~repro.errors.InjectedFault`), ``kill`` (SIGKILL the
        current process), ``hang`` (sleep ``arg`` seconds, default 60),
        ``pickle`` (a :class:`pickle.PicklingError`), ``torn``
        (truncate the site's file mid-payload), ``corrupt`` (flip a
        byte in the site's file).
    point:
        Only fire for this point key (``None`` = any point).
    attempt:
        Only fire for this 0-based attempt index.
    submit:
        Only fire for this 0-based resubmission index (parallel
        backend).  ``kill``/``hang`` specs should pin ``submit=0`` so
        the resubmitted point survives.
    occurrence:
        Only fire on the n-th (0-based) invocation of the site within
        one process — the matcher for sites with no point context
        (checkpoint writes, precompute).
    times:
        How many times the spec may fire per process (default 1).
    arg:
        Kind-specific parameter (hang duration in seconds).
    """

    site: str
    kind: str
    point: Optional[str] = None
    attempt: Optional[int] = None
    submit: Optional[int] = None
    occurrence: Optional[int] = None
    times: int = 1
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultInjectionError("fault spec: site must be non-empty")
        if self.kind not in KINDS:
            raise FaultInjectionError(
                f"fault spec: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(KINDS)})"
            )
        if self.times < 1:
            raise FaultInjectionError(
                f"fault spec: times must be >= 1, got {self.times!r}"
            )
        for name in ("attempt", "submit", "occurrence"):
            value: Optional[int] = getattr(self, name)
            if value is not None and value < 0:
                raise FaultInjectionError(
                    f"fault spec: {name} must be >= 0, got {value!r}"
                )

    def matches(self, site: str, context: Mapping[str, object], seen: int) -> bool:
        """Whether this spec fires for one site invocation.

        ``seen`` is how many times the site has been invoked in this
        process *before* the current call (the occurrence matcher).
        """
        if site != self.site and not fnmatchcase(site, self.site):
            return False
        if self.point is not None and context.get("point") != self.point:
            return False
        if self.attempt is not None and context.get("attempt") != self.attempt:
            return False
        if self.submit is not None and context.get("submit") != self.submit:
            return False
        if self.occurrence is not None and seen != self.occurrence:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (defaults omitted)."""
        out: Dict[str, object] = {"site": self.site, "kind": self.kind}
        for name in ("point", "attempt", "submit", "occurrence", "arg"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.times != 1:
            out["times"] = self.times
        return out

    @classmethod
    def from_dict(cls, raw: object) -> "FaultSpec":
        if not isinstance(raw, Mapping):
            raise FaultInjectionError(
                f"fault spec must be a JSON object, got {type(raw).__name__}"
            )
        known = {
            "site", "kind", "point", "attempt", "submit",
            "occurrence", "times", "arg",
        }
        unknown = set(raw) - known
        if unknown:
            raise FaultInjectionError(
                f"fault spec: unknown field(s) {sorted(unknown)!r}"
            )
        if "site" not in raw or "kind" not in raw:
            raise FaultInjectionError(
                "fault spec: 'site' and 'kind' are required"
            )
        try:
            return cls(
                site=str(raw["site"]),
                kind=str(raw["kind"]),
                point=None if raw.get("point") is None else str(raw["point"]),
                attempt=None if raw.get("attempt") is None else int(raw["attempt"]),  # type: ignore[call-overload]
                submit=None if raw.get("submit") is None else int(raw["submit"]),  # type: ignore[call-overload]
                occurrence=(
                    None if raw.get("occurrence") is None else int(raw["occurrence"])  # type: ignore[call-overload]
                ),
                times=int(raw.get("times", 1)),  # type: ignore[call-overload]
                arg=None if raw.get("arg") is None else float(raw["arg"]),  # type: ignore[arg-type]
            )
        except (TypeError, ValueError) as exc:
            raise FaultInjectionError(f"fault spec: {exc}") from exc


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of planned faults.

    ``seed`` records provenance when the schedule was drawn by
    :meth:`seeded`; it is informational only — replaying a schedule
    replays its specs, not the generator.
    """

    specs: Tuple[FaultSpec, ...] = field(default=())
    seed: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self.specs)

    def to_json(self) -> str:
        """Serialize to the JSON form :meth:`from_json` accepts."""
        payload: Dict[str, object] = {
            "specs": [spec.to_dict() for spec in self.specs]
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from JSON — a bare spec list or a
        ``{"seed": ..., "specs": [...]}`` object."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"fault schedule is not valid JSON (char {exc.pos}): {exc.msg}"
            ) from exc
        seed: Optional[int] = None
        if isinstance(raw, Mapping):
            specs_raw = raw.get("specs", [])
            if raw.get("seed") is not None:
                try:
                    seed = int(raw["seed"])  # type: ignore[call-overload]
                except (TypeError, ValueError) as exc:
                    raise FaultInjectionError(
                        f"fault schedule: seed must be an integer, "
                        f"got {raw['seed']!r}"
                    ) from exc
        elif isinstance(raw, list):
            specs_raw = raw
        else:
            raise FaultInjectionError(
                "fault schedule must be a JSON list of specs or an object "
                f"with a 'specs' list, got {type(raw).__name__}"
            )
        if not isinstance(specs_raw, list):
            raise FaultInjectionError("fault schedule: 'specs' must be a list")
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in specs_raw),
            seed=seed,
        )

    @classmethod
    def seeded(
        cls,
        rng: random.Random,
        point_keys: Sequence[str],
        *,
        max_faults: int = 3,
        kinds: Iterable[str] = KINDS,
        max_attempt: int = 1,
        hang_s: float = 5.0,
        seed: Optional[int] = None,
    ) -> "FaultSchedule":
        """Draw a reproducible schedule from an injected RNG.

        Every choice — how many faults, which kind, which point, which
        attempt — comes from ``rng``, so the same generator state
        always produces the same schedule.  ``kill``/``hang``/``pickle``
        are pinned to worker-only sites at ``submit=0`` (the
        resubmitted point must be able to succeed) — ``kill``/``hang``
        draw between the per-point ``parallel.worker.start`` site and
        the per-chunk ``pool.chunk.start`` site (the latter only fires
        when the drawn point leads its chunk, so some schedules are
        deliberately inert under chunked dispatch); ``torn``/``corrupt``
        land on checkpoint writes by occurrence.
        """
        keys = list(point_keys)
        if not keys:
            raise FaultInjectionError("seeded schedule needs at least one point key")
        pool = [kind for kind in kinds if kind in KINDS]
        if not pool:
            raise FaultInjectionError(
                f"seeded schedule: no valid kinds in {list(kinds)!r}"
            )
        specs: List[FaultSpec] = []
        for _ in range(rng.randint(1, max(1, max_faults))):
            kind = rng.choice(pool)
            if kind == "raise":
                specs.append(
                    FaultSpec(
                        site="executor.attempt.start",
                        kind="raise",
                        point=rng.choice(keys),
                        attempt=rng.randint(0, max(0, max_attempt)),
                    )
                )
            elif kind in ("kill", "hang"):
                specs.append(
                    FaultSpec(
                        site=rng.choice(
                            ("parallel.worker.start", "pool.chunk.start")
                        ),
                        kind=kind,
                        point=rng.choice(keys),
                        submit=0,
                        arg=hang_s if kind == "hang" else None,
                    )
                )
            elif kind == "pickle":
                specs.append(
                    FaultSpec(
                        site="parallel.result",
                        kind="pickle",
                        point=rng.choice(keys),
                        submit=0,
                    )
                )
            else:  # torn / corrupt
                specs.append(
                    FaultSpec(
                        site="checkpoint.write.post",
                        kind=kind,
                        occurrence=rng.randint(0, len(keys)),
                    )
                )
        return cls(specs=tuple(specs), seed=seed)


def parse_fault_schedule(value: Union[str, Path]) -> FaultSchedule:
    """Parse a schedule from inline JSON or a path to a JSON file.

    The CLI and :func:`schedule_from_env` share this rule: a value
    whose first non-space character is ``[`` or ``{`` is inline JSON;
    anything else is a file path.
    """
    text = str(value).strip()
    if text.startswith("[") or text.startswith("{"):
        return FaultSchedule.from_json(text)
    path = Path(text)
    try:
        content = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FaultInjectionError(
            f"fault schedule file {path}: cannot read ({exc})"
        ) from exc
    return FaultSchedule.from_json(content)


def schedule_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultSchedule]:
    """The schedule requested via :data:`ENV_VAR`, or ``None``.

    An empty / unset variable disables injection entirely — the common
    case, and the one the runner's guard keeps free.
    """
    import os

    env = os.environ if environ is None else environ
    raw = env.get(ENV_VAR, "").strip()
    if not raw:
        return None
    return parse_fault_schedule(raw)
