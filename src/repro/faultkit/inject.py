"""Arming fault schedules: the :func:`fault_point` guard and actions.

The runner stack calls :func:`fault_point` at named sites.  The guard
is RPL005-style free when injection is off — a single module-global
falsy check (``if _ACTIVE is None: return``) with **no** argument
construction, locking, or dict lookups — so production hot paths pay
one pointer comparison.

:func:`install` arms a :class:`~repro.faultkit.schedule.FaultSchedule`
in the current process; per-site occurrence counters and per-spec fire
counts live on the armed state, so worker processes (which each
install their own copy of the schedule) count independently and
deterministically.

Fault actions
-------------
``raise``
    Raise :class:`~repro.errors.InjectedFault` — retryable under the
    default :class:`~repro.runner.RetryPolicy`.
``kill``
    ``SIGKILL`` the *current* process: the worker crash / OOM-kill
    stand-in.  Unblockable, uncatchable, leaves no trace.
``hang``
    Sleep ``spec.arg`` seconds (default 60): a worker stuck past its
    cooperative deadline, for the watchdog to reap.
``pickle``
    Raise :class:`pickle.PicklingError` — an unpicklable result on the
    way back to the parent.
``torn``
    Truncate the site's file (``context["path"]``) mid-payload: a torn
    write that survived an ``os.replace``-free crash.
``corrupt``
    Flip one byte in the middle of the site's file: silent on-disk
    corruption that only a checksum can catch.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..errors import FaultInjectionError, InjectedFault
from ..obs.metrics import inc as _obs_inc
from .schedule import FaultSchedule, FaultSpec

#: Armed schedule state, or ``None`` when injection is disabled.  The
#: single falsy check on this global is the entire disabled-path cost.
_ACTIVE: Optional["_Armed"] = None


class _Armed:
    """A schedule plus the mutable firing state for one process."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._site_seen: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}

    def fire(self, site: str, context: Dict[str, object]) -> None:
        seen = self._site_seen.get(site, 0)
        self._site_seen[site] = seen + 1
        for index, spec in enumerate(self.schedule.specs):
            if self._fired.get(index, 0) >= spec.times:
                continue
            if not spec.matches(site, context, seen):
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            _perform(spec, site, context)


def fault_point(site: str, **context: object) -> None:
    """A named fault site; no-op unless a schedule is armed."""
    if _ACTIVE is None:
        return
    _ACTIVE.fire(site, context)


def install(schedule: FaultSchedule) -> None:
    """Arm ``schedule`` in this process (replacing any armed one)."""
    global _ACTIVE
    _ACTIVE = _Armed(schedule)


def uninstall() -> None:
    """Disarm fault injection in this process."""
    global _ACTIVE
    _ACTIVE = None


def active_schedule() -> Optional[FaultSchedule]:
    """The armed schedule, or ``None``."""
    return None if _ACTIVE is None else _ACTIVE.schedule


@contextmanager
def activated(schedule: Optional[FaultSchedule]) -> Iterator[None]:
    """Arm ``schedule`` for the duration of a block.

    A falsy schedule (``None`` or no specs) leaves the current state
    untouched, so the runner can wrap every batch unconditionally.
    """
    if not schedule:
        yield
        return
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = _Armed(schedule)
    try:
        yield
    finally:
        _ACTIVE = previous


def _perform(spec: FaultSpec, site: str, context: Dict[str, object]) -> None:
    """Carry out one fault.  Counted as ``fault.injected.<kind>``."""
    _obs_inc(f"fault.injected.{spec.kind}")
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected fault at {site} "
            f"(point={context.get('point')!r}, attempt={context.get('attempt')!r})"
        )
    if spec.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover — unreachable
    if spec.kind == "hang":
        # Blocking IS the injected fault: a "hang" must stall whichever
        # thread armed the site, event loop included.
        time.sleep(spec.arg if spec.arg is not None else 60.0)  # noqa: RPL007
        return
    if spec.kind == "pickle":
        raise pickle.PicklingError(
            f"injected pickling failure at {site} "
            f"(point={context.get('point')!r})"
        )
    path = context.get("path")
    if not isinstance(path, str) or not path:
        raise FaultInjectionError(
            f"fault kind {spec.kind!r} needs a file site "
            f"(got site {site!r} with no 'path' context)"
        )
    if spec.kind == "torn":
        _tear_file(path)
        return
    _corrupt_file(path)


def _tear_file(path: str) -> None:
    """Truncate a file to half its size — a torn write."""
    size = os.path.getsize(path)
    # Deliberate sync I/O: damaging the checkpoint in-line at the fault
    # site is the point; routing it through an executor would let the
    # victim read a half-torn file mid-surgery.
    with open(path, "rb+") as handle:  # noqa: RPL007
        handle.truncate(size // 2)


def _corrupt_file(path: str) -> None:
    """Flip one byte in the middle of a file — silent corruption."""
    size = os.path.getsize(path)
    if size == 0:
        return
    offset = size // 2
    # Same contract as _tear_file: corruption happens synchronously at
    # the site so the next reader observes it deterministically.
    with open(path, "rb+") as handle:  # noqa: RPL007
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\x00")
