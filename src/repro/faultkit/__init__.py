"""Deterministic fault injection for the batch runner (chaos testing).

``repro.faultkit`` reproduces the failure modes a long-lived rank
service actually meets — worker crashes, hangs, unpicklable results,
torn and corrupted checkpoint files — on a fixed, seeded schedule, so
every chaos run is exactly replayable and the runner's recovery paths
are testable in CI rather than in production.

Two halves:

* :mod:`~repro.faultkit.schedule` — :class:`FaultSpec` /
  :class:`FaultSchedule`: plain data describing which fault fires at
  which named site, JSON round-trippable, generable from an injected
  :class:`random.Random`;
* :mod:`~repro.faultkit.inject` — :func:`fault_point` (the guard the
  runner stack calls; one falsy check when disabled) and the armed
  state performing the faults.

Activation: pass ``fault_schedule=`` to the :mod:`repro.api` batch
entry points, or set ``REPRO_FAULT_SCHEDULE`` to inline JSON or a
schedule-file path.  See ``docs/usage.md`` §12.
"""

from .inject import (
    activated,
    active_schedule,
    fault_point,
    install,
    uninstall,
)
from .schedule import (
    ENV_VAR,
    KINDS,
    SITES,
    FaultSchedule,
    FaultSpec,
    parse_fault_schedule,
    schedule_from_env,
)

__all__ = [
    "ENV_VAR",
    "KINDS",
    "SITES",
    "FaultSchedule",
    "FaultSpec",
    "activated",
    "active_schedule",
    "fault_point",
    "install",
    "parse_fault_schedule",
    "schedule_from_env",
    "uninstall",
]
