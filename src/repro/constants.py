"""Physical constants and paper-fixed model constants.

The two switching constants ``a`` and ``b`` come from the Otten--Brayton
delay model used by the paper (its Eq. (2) footnote: ``a = 0.4`` and
``b = 0.7`` for wire delay computation).  The gate-pitch multiplier is the
ITRS-2001 empirical rule quoted in the paper's Section 5.2 (gate pitch =
12.6 x technology node).
"""

from __future__ import annotations

#: Vacuum permittivity, farads per metre.
EPS0 = 8.854187817e-12

#: Otten--Brayton quadratic (distributed-RC) switching constant ``a``.
SWITCHING_A = 0.4

#: Otten--Brayton linear (driver/load) switching constant ``b``.
SWITCHING_B = 0.7

#: Gate pitch as a multiple of the technology node (ITRS 2001 empirical
#: rule used by the paper: gate pitch = 12.6 x tech node).
GATE_PITCH_FACTOR = 12.6

#: Bulk resistivity of copper, ohm-metres (effective value including a
#: thin-barrier penalty typical of early-2000s damascene copper).
RESISTIVITY_COPPER = 2.2e-8

#: Bulk resistivity of aluminium interconnect, ohm-metres.
RESISTIVITY_ALUMINIUM = 3.3e-8

#: Relative permittivity of thermal SiO2 -- the paper's baseline ILD k.
K_SILICON_DIOXIDE = 3.9

#: Miller coupling factor for simultaneous opposite switching of both
#: neighbours -- the paper's baseline M.
MILLER_WORST_CASE = 2.0

#: Miller coupling factor achievable with double-sided shielding
#: (paper footnote 8: minimum value of the Miller factor is 1.0).
MILLER_SHIELDED = 1.0
