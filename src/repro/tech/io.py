"""Technology node serialization.

Lets users define their own process nodes in JSON instead of Python —
the adoption surface for evaluating a foundry stack the presets do not
cover.  The schema mirrors the dataclasses one-to-one; all geometry is
in metres and capacitances in farads (use explicit exponents in the
file: ``160e-9``).

Example (abridged)::

    {
      "name": "65nm-custom",
      "feature_size": 65e-9,
      "conductor": {"name": "copper", "resistivity": 2.2e-8},
      "dielectric": {"name": "OSG", "relative_permittivity": 2.8},
      "device": {"output_resistance": 2000.0, "input_capacitance": 4e-16,
                 "parasitic_capacitance": 3e-16,
                 "min_inverter_area": 6.3e-15, "supply_voltage": 1.0},
      "metal_rules": {"local": {"min_width": 9e-8, ...}, ...},
      "via_rules": {"local": {"min_width": 9e-8, "enclosure": 2e-8}, ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import ConfigurationError
from .device import DeviceParameters
from .materials import Conductor, Dielectric
from .node import MetalRule, TechnologyNode, ViaRule

PathLike = Union[str, Path]


def node_to_dict(node: TechnologyNode) -> dict:
    """Serialize a node to a plain JSON-ready dictionary."""
    return {
        "name": node.name,
        "feature_size": node.feature_size,
        "gate_pitch_factor": node.gate_pitch_factor,
        "conductor": {
            "name": node.conductor.name,
            "resistivity": node.conductor.resistivity,
        },
        "dielectric": {
            "name": node.dielectric.name,
            "relative_permittivity": node.dielectric.relative_permittivity,
        },
        "device": {
            "output_resistance": node.device.output_resistance,
            "input_capacitance": node.device.input_capacitance,
            "parasitic_capacitance": node.device.parasitic_capacitance,
            "min_inverter_area": node.device.min_inverter_area,
            "supply_voltage": node.device.supply_voltage,
        },
        "metal_rules": {
            tier: {
                "min_width": rule.min_width,
                "min_spacing": rule.min_spacing,
                "thickness": rule.thickness,
                "ild_height": rule.ild_height,
            }
            for tier, rule in node.metal_rules.items()
        },
        "via_rules": {
            tier: {"min_width": rule.min_width, "enclosure": rule.enclosure}
            for tier, rule in node.via_rules.items()
        },
    }


def node_from_dict(payload: dict) -> TechnologyNode:
    """Deserialize a node; raises ConfigurationError on malformed input."""
    try:
        metal_rules = {
            tier: MetalRule(
                min_width=rule["min_width"],
                min_spacing=rule["min_spacing"],
                thickness=rule["thickness"],
                ild_height=rule.get("ild_height", 0.0),
            )
            for tier, rule in payload["metal_rules"].items()
        }
        via_rules = {
            tier: ViaRule(
                min_width=rule["min_width"],
                enclosure=rule.get("enclosure", 0.0),
            )
            for tier, rule in payload["via_rules"].items()
        }
        device_data = payload["device"]
        device = DeviceParameters(
            output_resistance=device_data["output_resistance"],
            input_capacitance=device_data["input_capacitance"],
            parasitic_capacitance=device_data["parasitic_capacitance"],
            min_inverter_area=device_data["min_inverter_area"],
            supply_voltage=device_data.get("supply_voltage", 1.2),
        )
        conductor_data = payload["conductor"]
        dielectric_data = payload["dielectric"]
        return TechnologyNode(
            name=payload["name"],
            feature_size=payload["feature_size"],
            metal_rules=metal_rules,
            via_rules=via_rules,
            device=device,
            conductor=Conductor(
                name=conductor_data["name"],
                resistivity=conductor_data["resistivity"],
            ),
            dielectric=Dielectric(
                name=dielectric_data["name"],
                relative_permittivity=dielectric_data["relative_permittivity"],
            ),
            gate_pitch_factor=payload.get("gate_pitch_factor", 12.6),
        )
    except KeyError as exc:
        raise ConfigurationError(
            f"malformed technology-node payload: missing {exc}"
        ) from exc
    except TypeError as exc:
        raise ConfigurationError(
            f"malformed technology-node payload: {exc}"
        ) from exc


def save_node(node: TechnologyNode, path: PathLike) -> None:
    """Write a node description to a JSON file."""
    with open(path, "w") as handle:
        json.dump(node_to_dict(node), handle, indent=2)


def load_node(path: PathLike) -> TechnologyNode:
    """Read a node description from a JSON file."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: expected a JSON object")
    return node_from_dict(payload)
