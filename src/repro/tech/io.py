"""Technology node serialization.

Lets users define their own process nodes in JSON instead of Python —
the adoption surface for evaluating a foundry stack the presets do not
cover.  The schema mirrors the dataclasses one-to-one; all geometry is
in metres and capacitances in farads (use explicit exponents in the
file: ``160e-9``).

Example (abridged)::

    {
      "name": "65nm-custom",
      "feature_size": 65e-9,
      "conductor": {"name": "copper", "resistivity": 2.2e-8},
      "dielectric": {"name": "OSG", "relative_permittivity": 2.8},
      "device": {"output_resistance": 2000.0, "input_capacitance": 4e-16,
                 "parasitic_capacitance": 3e-16,
                 "min_inverter_area": 6.3e-15, "supply_voltage": 1.0},
      "metal_rules": {"local": {"min_width": 9e-8, ...}, ...},
      "via_rules": {"local": {"min_width": 9e-8, "enclosure": 2e-8}, ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import ConfigurationError
from .device import DeviceParameters
from .materials import Conductor, Dielectric
from .node import MetalRule, TechnologyNode, ViaRule

PathLike = Union[str, Path]


def node_to_dict(node: TechnologyNode) -> dict:
    """Serialize a node to a plain JSON-ready dictionary."""
    return {
        "name": node.name,
        "feature_size": node.feature_size,
        "gate_pitch_factor": node.gate_pitch_factor,
        "conductor": {
            "name": node.conductor.name,
            "resistivity": node.conductor.resistivity,
        },
        "dielectric": {
            "name": node.dielectric.name,
            "relative_permittivity": node.dielectric.relative_permittivity,
        },
        "device": {
            "output_resistance": node.device.output_resistance,
            "input_capacitance": node.device.input_capacitance,
            "parasitic_capacitance": node.device.parasitic_capacitance,
            "min_inverter_area": node.device.min_inverter_area,
            "supply_voltage": node.device.supply_voltage,
        },
        "metal_rules": {
            tier: {
                "min_width": rule.min_width,
                "min_spacing": rule.min_spacing,
                "thickness": rule.thickness,
                "ild_height": rule.ild_height,
            }
            for tier, rule in node.metal_rules.items()
        },
        "via_rules": {
            tier: {"min_width": rule.min_width, "enclosure": rule.enclosure}
            for tier, rule in node.via_rules.items()
        },
    }


_MISSING = object()


def _section(payload: dict, path: str) -> dict:
    """Fetch a required sub-object, diagnosing by field path."""
    if path not in payload:
        raise ConfigurationError(
            f"technology node: missing required section {path!r}"
        )
    section = payload[path]
    if not isinstance(section, dict):
        raise ConfigurationError(
            f"technology node field {path!r}: expected a JSON object, "
            f"got {type(section).__name__}"
        )
    return section


def _number(
    mapping: dict,
    path: str,
    minimum: float = 0.0,
    exclusive: bool = True,
    default: object = _MISSING,
) -> float:
    """Fetch and range-check one numeric field.

    Diagnostics always name the full field path and the expected range
    (e.g. ``metal_rules.global.min_width: expected a number > 0``), so
    a malformed ``--node-file`` fails with one actionable line instead
    of a traceback.
    """
    key = path.rsplit(".", 1)[-1]
    if key not in mapping:
        if default is not _MISSING:
            return float(default)  # optional field
        raise ConfigurationError(
            f"technology node: missing required field {path!r}"
        )
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"technology node field {path!r}: expected a number, got {value!r}"
        )
    bound = f"> {minimum:g}" if exclusive else f">= {minimum:g}"
    if (value <= minimum) if exclusive else (value < minimum):
        raise ConfigurationError(
            f"technology node field {path!r}: expected a number {bound}, "
            f"got {value!r}"
        )
    return float(value)


def _name(mapping: dict, path: str) -> str:
    key = path.rsplit(".", 1)[-1]
    value = mapping.get(key)
    if not isinstance(value, str) or not value:
        raise ConfigurationError(
            f"technology node field {path!r}: expected a non-empty string, "
            f"got {value!r}"
        )
    return value


def node_from_dict(payload: dict) -> TechnologyNode:
    """Deserialize a node; raises ConfigurationError on malformed input.

    Every missing, non-numeric, or out-of-range field is reported with
    its full path and the expected range.
    """
    metal_rules = {}
    for tier, rule in _section(payload, "metal_rules").items():
        if not isinstance(rule, dict):
            raise ConfigurationError(
                f"technology node field 'metal_rules.{tier}': "
                f"expected a JSON object, got {type(rule).__name__}"
            )
        prefix = f"metal_rules.{tier}"
        metal_rules[tier] = MetalRule(
            min_width=_number(rule, f"{prefix}.min_width"),
            min_spacing=_number(rule, f"{prefix}.min_spacing"),
            thickness=_number(rule, f"{prefix}.thickness"),
            ild_height=_number(
                rule, f"{prefix}.ild_height", exclusive=False, default=0.0
            ),
        )
    via_rules = {}
    for tier, rule in _section(payload, "via_rules").items():
        if not isinstance(rule, dict):
            raise ConfigurationError(
                f"technology node field 'via_rules.{tier}': "
                f"expected a JSON object, got {type(rule).__name__}"
            )
        prefix = f"via_rules.{tier}"
        via_rules[tier] = ViaRule(
            min_width=_number(rule, f"{prefix}.min_width"),
            enclosure=_number(
                rule, f"{prefix}.enclosure", exclusive=False, default=0.0
            ),
        )
    device_data = _section(payload, "device")
    device = DeviceParameters(
        output_resistance=_number(device_data, "device.output_resistance"),
        input_capacitance=_number(device_data, "device.input_capacitance"),
        parasitic_capacitance=_number(
            device_data, "device.parasitic_capacitance", exclusive=False
        ),
        min_inverter_area=_number(device_data, "device.min_inverter_area"),
        supply_voltage=_number(device_data, "device.supply_voltage", default=1.2),
    )
    conductor_data = _section(payload, "conductor")
    dielectric_data = _section(payload, "dielectric")
    return TechnologyNode(
        name=_name(payload, "name"),
        feature_size=_number(payload, "feature_size"),
        metal_rules=metal_rules,
        via_rules=via_rules,
        device=device,
        conductor=Conductor(
            name=_name(conductor_data, "conductor.name"),
            resistivity=_number(conductor_data, "conductor.resistivity"),
        ),
        dielectric=Dielectric(
            name=_name(dielectric_data, "dielectric.name"),
            relative_permittivity=_number(
                dielectric_data,
                "dielectric.relative_permittivity",
                minimum=1.0,
                exclusive=False,
            ),
        ),
        gate_pitch_factor=_number(payload, "gate_pitch_factor", default=12.6),
    )


def save_node(node: TechnologyNode, path: PathLike) -> None:
    """Write a node description to a JSON file."""
    with open(path, "w") as handle:
        json.dump(node_to_dict(node), handle, indent=2)


def load_node(path: PathLike) -> TechnologyNode:
    """Read a node description from a JSON file.

    Every failure mode — unreadable file, invalid JSON, missing or
    out-of-range fields — raises :class:`ConfigurationError` with a
    one-line actionable message, never an uncaught traceback.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"{path}: cannot read node file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: expected a JSON object")
    try:
        return node_from_dict(payload)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from exc
