"""Conductor and dielectric materials.

The rank metric is sensitive to two material knobs: conductor resistivity
(through per-unit-length resistance) and inter-layer-dielectric relative
permittivity (through per-unit-length capacitance).  The paper's Table 4
column ``K`` sweeps ILD permittivity from 3.9 (SiO2) down to 1.8
(aggressive low-k / airgap territory); this module provides the material
value objects those sweeps scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..constants import (
    EPS0,
    K_SILICON_DIOXIDE,
    RESISTIVITY_ALUMINIUM,
    RESISTIVITY_COPPER,
)
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Conductor:
    """A wiring conductor.

    Attributes
    ----------
    name:
        Human-readable material name.
    resistivity:
        Effective bulk resistivity in ohm-metres.  "Effective" means it may
        fold in barrier/liner and surface-scattering penalties so that
        ``rho / (width * thickness)`` reproduces realistic per-unit-length
        resistance for the node.
    """

    name: str
    resistivity: float

    def __post_init__(self) -> None:
        if self.resistivity <= 0:
            raise ConfigurationError(
                f"conductor {self.name!r}: resistivity must be positive, "
                f"got {self.resistivity!r}"
            )

    def sheet_resistance(self, thickness: float) -> float:
        """Sheet resistance (ohms/square) of a film of the given thickness."""
        if thickness <= 0:
            raise ConfigurationError(
                f"conductor {self.name!r}: thickness must be positive, "
                f"got {thickness!r}"
            )
        return self.resistivity / thickness


@dataclass(frozen=True)
class Dielectric:
    """An inter-layer dielectric.

    Attributes
    ----------
    name:
        Human-readable material name.
    relative_permittivity:
        Relative permittivity (the paper's ``k``); must be >= 1 because no
        passive dielectric is below vacuum.
    """

    name: str
    relative_permittivity: float

    def __post_init__(self) -> None:
        if self.relative_permittivity < 1.0:
            raise ConfigurationError(
                f"dielectric {self.name!r}: relative permittivity must be "
                f">= 1.0, got {self.relative_permittivity!r}"
            )

    @property
    def permittivity(self) -> float:
        """Absolute permittivity in farads per metre."""
        return self.relative_permittivity * EPS0

    def scaled(self, relative_permittivity: float, name: str | None = None) -> "Dielectric":
        """Return a copy with a different relative permittivity.

        This is the primitive behind the paper's Table 4 ``K`` sweep: the
        geometry stays fixed and only the ILD permittivity moves.
        """
        return replace(
            self,
            name=name if name is not None else f"{self.name}(k={relative_permittivity:g})",
            relative_permittivity=relative_permittivity,
        )


#: Damascene copper with barrier penalty (effective resistivity).
COPPER = Conductor(name="copper", resistivity=RESISTIVITY_COPPER)

#: Aluminium interconnect (180 nm-era back end).
ALUMINIUM = Conductor(name="aluminium", resistivity=RESISTIVITY_ALUMINIUM)

#: Thermal / CVD silicon dioxide, the paper's baseline ILD (k = 3.9).
SIO2 = Dielectric(name="SiO2", relative_permittivity=K_SILICON_DIOXIDE)

#: Fluorinated silicate glass -class low-k (k = 3.6).
LOW_K_36 = Dielectric(name="FSG", relative_permittivity=3.6)

#: Organosilicate-glass-class low-k (k = 2.8).
LOW_K_28 = Dielectric(name="OSG", relative_permittivity=2.8)
