"""Technology node description.

A :class:`TechnologyNode` bundles everything the rank metric needs from a
process: the metal geometry rules for the local (``M1``), semi-global
(``Mx``) and global (``Mt``) wiring tiers (the paper's Table 3), the via
rules for each tier boundary, the device parameters of the minimum
inverter, and the ITRS gate-pitch rule used to size the die.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..constants import GATE_PITCH_FACTOR
from ..errors import ConfigurationError
from .device import DeviceParameters
from .materials import Conductor, Dielectric


@dataclass(frozen=True)
class MetalRule:
    """Geometry rule for all layers of one wiring tier.

    The paper characterizes an IA by layer-pairs in which every wire has
    identical width and thickness, with constant spacing and constant ILD
    height between consecutive layer-pairs; a ``MetalRule`` is that tuple
    for one tier.

    Attributes
    ----------
    min_width:
        Minimum (and, per the paper's assumption, actual) wire width in
        metres.
    min_spacing:
        Spacing between adjacent wires in metres.
    thickness:
        Metal thickness in metres.
    ild_height:
        Height of the inter-layer dielectric between this tier's layers
        and the next, in metres.  Table 3 does not print ILD heights; the
        conventional H ~= T assumption is used as the default (pass an
        explicit value to override).
    """

    min_width: float
    min_spacing: float
    thickness: float
    ild_height: float = 0.0  # 0.0 means "default to thickness" (see __post_init__)

    def __post_init__(self) -> None:
        for attr in ("min_width", "min_spacing", "thickness"):
            value = getattr(self, attr)
            if value <= 0:
                raise ConfigurationError(
                    f"MetalRule.{attr} must be positive, got {value!r}"
                )
        if self.ild_height < 0:
            raise ConfigurationError(
                f"MetalRule.ild_height must be non-negative, got {self.ild_height!r}"
            )
        if self.ild_height == 0.0:
            object.__setattr__(self, "ild_height", self.thickness)

    @property
    def pitch(self) -> float:
        """Wire pitch: width plus spacing, in metres."""
        return self.min_width + self.min_spacing

    @property
    def aspect_ratio(self) -> float:
        """Thickness-to-width aspect ratio of a wire on this tier."""
        return self.thickness / self.min_width

    def scaled(self, factor: float) -> "MetalRule":
        """Uniformly scale all four geometric dimensions by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor!r}")
        return MetalRule(
            min_width=self.min_width * factor,
            min_spacing=self.min_spacing * factor,
            thickness=self.thickness * factor,
            ild_height=self.ild_height * factor,
        )


@dataclass(frozen=True)
class ViaRule:
    """Geometry rule for vias landing on one wiring tier.

    Attributes
    ----------
    min_width:
        Minimum via width (square vias assumed) in metres.
    enclosure:
        Metal enclosure required around the via on each side, in metres.
        The blocked footprint of one via is ``(w + 2e)^2``.
    """

    min_width: float
    enclosure: float = 0.0

    def __post_init__(self) -> None:
        if self.min_width <= 0:
            raise ConfigurationError(
                f"ViaRule.min_width must be positive, got {self.min_width!r}"
            )
        if self.enclosure < 0:
            raise ConfigurationError(
                f"ViaRule.enclosure must be non-negative, got {self.enclosure!r}"
            )

    @property
    def blocked_area(self) -> float:
        """Routing area blocked by one via, in square metres.

        This is the paper's ``v_a`` (area of a via, obtained from process
        parameters): the enclosed via footprint.
        """
        side = self.min_width + 2.0 * self.enclosure
        return side * side


#: Canonical tier names, ordered bottom (local) to top (global).
TIERS = ("local", "semi_global", "global")


@dataclass(frozen=True)
class TechnologyNode:
    """A process node: metal rules per tier, vias, devices, materials.

    Attributes
    ----------
    name:
        Display name, e.g. ``"130nm"``.
    feature_size:
        Drawn feature size in metres (e.g. ``130e-9``).
    metal_rules:
        Mapping from tier name (``"local"``, ``"semi_global"``,
        ``"global"``) to :class:`MetalRule` — the Table 3 rows ``M1``,
        ``Mx`` and ``Mt``.
    via_rules:
        Mapping from tier name to the :class:`ViaRule` of vias passing
        through that tier — the Table 3 rows ``V1``, ``Vx-1`` and
        ``Vt-1``.
    device:
        Minimum-inverter parameters used for drivers and repeaters.
    conductor:
        Wiring conductor (copper for 130/90 nm, aluminium-era for 180 nm).
    dielectric:
        Baseline inter-layer dielectric.
    gate_pitch_factor:
        Gate pitch as a multiple of ``feature_size`` (ITRS 2001 empirical
        rule: 12.6).
    """

    name: str
    feature_size: float
    metal_rules: Dict[str, MetalRule]
    via_rules: Dict[str, ViaRule]
    device: DeviceParameters
    conductor: Conductor
    dielectric: Dielectric
    gate_pitch_factor: float = GATE_PITCH_FACTOR

    def __post_init__(self) -> None:
        if self.feature_size <= 0:
            raise ConfigurationError(
                f"feature_size must be positive, got {self.feature_size!r}"
            )
        if self.gate_pitch_factor <= 0:
            raise ConfigurationError(
                f"gate_pitch_factor must be positive, got {self.gate_pitch_factor!r}"
            )
        missing = [tier for tier in TIERS if tier not in self.metal_rules]
        if missing:
            raise ConfigurationError(
                f"node {self.name!r}: missing metal rules for tiers {missing}"
            )
        missing_vias = [tier for tier in TIERS if tier not in self.via_rules]
        if missing_vias:
            raise ConfigurationError(
                f"node {self.name!r}: missing via rules for tiers {missing_vias}"
            )

    @property
    def gate_pitch(self) -> float:
        """Nominal gate pitch in metres (before repeater-area inflation).

        The paper computes die area from ``g^2 * N`` with
        ``g = 12.6 x tech node``; this is that ``g``.
        """
        return self.gate_pitch_factor * self.feature_size

    def metal(self, tier: str) -> MetalRule:
        """Metal rule for a tier name, with a helpful error for typos."""
        try:
            return self.metal_rules[tier]
        except KeyError:
            raise ConfigurationError(
                f"node {self.name!r} has no tier {tier!r}; "
                f"known tiers: {sorted(self.metal_rules)}"
            ) from None

    def via(self, tier: str) -> ViaRule:
        """Via rule for a tier name, with a helpful error for typos."""
        try:
            return self.via_rules[tier]
        except KeyError:
            raise ConfigurationError(
                f"node {self.name!r} has no via tier {tier!r}; "
                f"known tiers: {sorted(self.via_rules)}"
            ) from None

    def with_dielectric(self, dielectric: Dielectric) -> "TechnologyNode":
        """Copy of this node with a different ILD (the Table 4 ``K`` knob)."""
        return replace(self, dielectric=dielectric)

    def with_permittivity(self, k: float) -> "TechnologyNode":
        """Copy of this node with ILD relative permittivity set to ``k``."""
        return self.with_dielectric(self.dielectric.scaled(k))

    def with_device(self, device: DeviceParameters) -> "TechnologyNode":
        """Copy of this node with different minimum-inverter parameters."""
        return replace(self, device=device)
