"""Process-node presets: the paper's Table 3, plus device parameters.

The geometric numbers below are copied verbatim from Table 3 of the paper
("Technology parameters used for study of variation of rank"), which the
paper sources from TSMC for the 180 nm, 130 nm and 90 nm nodes:

========================  =========  =========  =========
Parameter                 180 nm     130 nm     90 nm
========================  =========  =========  =========
M1 minimum width          0.230 um   0.160 um   0.120 um
M1 minimum spacing        0.230 um   0.180 um   0.120 um
M1 thickness              0.483 um   0.336 um   0.260 um
Mx minimum width          0.280 um   0.200 um   0.140 um
Mx minimum spacing        0.280 um   0.210 um   0.140 um
Mx thickness              0.588 um   0.340 um   0.300 um
Mt minimum width          0.440 um   0.440 um   0.420 um
Mt minimum spacing        0.460 um   0.460 um   0.420 um
Mt thickness              0.960 um   1.020 um   0.880 um
V1 minimum width          0.260 um   0.190 um   0.130 um
Vx-1 minimum width        0.260 um   0.260 um   0.130 um
Vt-1 minimum width        0.360 um   0.360 um   0.360 um
========================  =========  =========  =========

For 180 nm, x = 2..5 and t = 6 (six metal layers); for 130 nm, x = 2..6
and t = 7; for 90 nm, x = 2..7 and t = 8.

Device parameters (minimum-inverter r_o, c_o, c_p, area) are *not* printed
in the paper; the values here are ITRS-2001-era textbook reconstructions
calibrated so that the baseline design reproduces the paper's Table 4
regime: the repeater budget binds at mid-WLD ranks (its ``R`` column is
linear in budget) and the driver-intrinsic delay wall sits below the
shortest-passing-wire lengths implied by its sweep maxima.
DESIGN.md records this substitution; rank shapes are insensitive to the
exact values (see ``tests/analysis/test_sensitivity.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .. import units
from ..errors import ConfigurationError
from .device import DeviceParameters
from .materials import ALUMINIUM, COPPER, SIO2
from .node import MetalRule, TechnologyNode, ViaRule


def _device(feature_size: float, r_o: float, c_o: float, c_p: float, vdd: float) -> DeviceParameters:
    """Build device parameters with a minimum-inverter area of 1.5 F^2.

    The repeater budget of the paper is *device* (gate) area, not placed
    standard-cell footprint: its footnote 3 leaves driver/receiver sizing
    outside the gate-area budget, and its Table 4 ``R`` column — rank
    growing linearly through ~0.5 of a multi-million-wire WLD within a
    0.1..0.5 die-area budget — is only arithmetically possible if one
    unit of repeater size costs on the order of the two minimum
    transistors' channel area (~1.5 F^2), three orders below a placed
    cell.  DESIGN.md records this calibration.
    """
    return DeviceParameters(
        output_resistance=r_o,
        input_capacitance=c_o,
        parasitic_capacitance=c_p,
        min_inverter_area=1.5 * feature_size * feature_size,
        supply_voltage=vdd,
    )


#: The paper's Table 3, 180 nm column.  Aluminium-era back end, six metals.
NODE_180NM = TechnologyNode(
    name="180nm",
    feature_size=units.nm(180),
    metal_rules={
        "local": MetalRule(
            min_width=units.um(0.230),
            min_spacing=units.um(0.230),
            thickness=units.um(0.483),
        ),
        "semi_global": MetalRule(
            min_width=units.um(0.280),
            min_spacing=units.um(0.280),
            thickness=units.um(0.588),
        ),
        "global": MetalRule(
            min_width=units.um(0.440),
            min_spacing=units.um(0.460),
            thickness=units.um(0.960),
        ),
    },
    via_rules={
        "local": ViaRule(min_width=units.um(0.260), enclosure=units.um(0.05)),
        "semi_global": ViaRule(min_width=units.um(0.260), enclosure=units.um(0.05)),
        "global": ViaRule(min_width=units.um(0.360), enclosure=units.um(0.05)),
    },
    device=_device(units.nm(180), r_o=3.2e3, c_o=units.ff(0.80), c_p=units.ff(0.55), vdd=1.8),
    conductor=ALUMINIUM,
    dielectric=SIO2,
)

#: The paper's Table 3, 130 nm column — the baseline node of Table 4.
NODE_130NM = TechnologyNode(
    name="130nm",
    feature_size=units.nm(130),
    metal_rules={
        "local": MetalRule(
            min_width=units.um(0.160),
            min_spacing=units.um(0.180),
            thickness=units.um(0.336),
        ),
        "semi_global": MetalRule(
            min_width=units.um(0.200),
            min_spacing=units.um(0.210),
            thickness=units.um(0.340),
        ),
        "global": MetalRule(
            min_width=units.um(0.440),
            min_spacing=units.um(0.460),
            thickness=units.um(1.020),
        ),
    },
    via_rules={
        "local": ViaRule(min_width=units.um(0.190), enclosure=units.um(0.04)),
        "semi_global": ViaRule(min_width=units.um(0.260), enclosure=units.um(0.04)),
        "global": ViaRule(min_width=units.um(0.360), enclosure=units.um(0.04)),
    },
    device=_device(units.nm(130), r_o=2.29e3, c_o=units.ff(0.60), c_p=units.ff(0.40), vdd=1.2),
    conductor=COPPER,
    dielectric=SIO2,
)

#: The paper's Table 3, 90 nm column.
NODE_90NM = TechnologyNode(
    name="90nm",
    feature_size=units.nm(90),
    metal_rules={
        "local": MetalRule(
            min_width=units.um(0.120),
            min_spacing=units.um(0.120),
            thickness=units.um(0.260),
        ),
        "semi_global": MetalRule(
            min_width=units.um(0.140),
            min_spacing=units.um(0.140),
            thickness=units.um(0.300),
        ),
        "global": MetalRule(
            min_width=units.um(0.420),
            min_spacing=units.um(0.420),
            thickness=units.um(0.880),
        ),
    },
    via_rules={
        "local": ViaRule(min_width=units.um(0.130), enclosure=units.um(0.03)),
        "semi_global": ViaRule(min_width=units.um(0.130), enclosure=units.um(0.03)),
        "global": ViaRule(min_width=units.um(0.360), enclosure=units.um(0.03)),
    },
    device=_device(units.nm(90), r_o=2.0e3, c_o=units.ff(0.45), c_p=units.ff(0.30), vdd=1.0),
    conductor=COPPER,
    dielectric=SIO2,
)


_NODES: Dict[str, TechnologyNode] = {
    "180nm": NODE_180NM,
    "130nm": NODE_130NM,
    "90nm": NODE_90NM,
}

#: Total metal-layer counts implied by Table 3's x/t index ranges.
METAL_LAYER_COUNTS: Dict[str, int] = {"180nm": 6, "130nm": 7, "90nm": 8}


def available_nodes() -> Tuple[str, ...]:
    """Names of the built-in technology nodes, coarsest first."""
    return tuple(_NODES)


def get_node(name: str) -> TechnologyNode:
    """Look up a built-in node by name (e.g. ``"130nm"``).

    Raises
    ------
    ConfigurationError
        If the name is not one of :func:`available_nodes`.
    """
    try:
        return _NODES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown technology node {name!r}; available: {sorted(_NODES)}"
        ) from None
