"""ITRS-style node projection.

The paper's Section 6 goal — "evaluating ITRS and foundry BEOL
architectures" — needs nodes beyond the Table 3 trio.  This module
projects a preset node forward by ideal-scaling rules, giving
plausible 65/45/32 nm-class stand-ins for roadmap studies:

* all metal/via geometry scales by the linear factor ``s`` (default
  0.7 per generation — the classic ITRS shrink);
* device resistance is held (constant-field scaling keeps drive
  resistance roughly flat), capacitances scale by ``s``, device area by
  ``s²``, supply by ``s^0.5`` (the historical slower-than-ideal Vdd
  walk);
* materials carry over (swap them separately via
  ``TechnologyNode.with_dielectric``).

Projection is a modelling convenience, clearly labelled in the node
name; it makes no claim to match any real 65 nm process.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..units import to_nm
from .device import DeviceParameters
from .node import TechnologyNode, ViaRule

#: Classic ITRS linear shrink per generation.
DEFAULT_SHRINK = 0.7


def project_node(
    base: TechnologyNode,
    generations: int = 1,
    shrink: float = DEFAULT_SHRINK,
) -> TechnologyNode:
    """Project a node ``generations`` steps down the roadmap.

    Parameters
    ----------
    base:
        Starting node (e.g. the 90 nm preset).
    generations:
        Number of shrink steps (>= 1).
    shrink:
        Linear scale factor per generation, in (0, 1).
    """
    if generations < 1:
        raise ConfigurationError(
            f"generations must be >= 1, got {generations!r}"
        )
    if not 0.0 < shrink < 1.0:
        raise ConfigurationError(f"shrink must be in (0, 1), got {shrink!r}")

    s = shrink ** generations
    feature = base.feature_size * s
    name = f"{to_nm(feature):.0f}nm-projected"

    metal_rules = {
        tier: rule.scaled(s) for tier, rule in base.metal_rules.items()
    }
    via_rules = {
        tier: ViaRule(
            min_width=rule.min_width * s, enclosure=rule.enclosure * s
        )
        for tier, rule in base.via_rules.items()
    }
    device = DeviceParameters(
        output_resistance=base.device.output_resistance,
        input_capacitance=base.device.input_capacitance * s,
        parasitic_capacitance=base.device.parasitic_capacitance * s,
        min_inverter_area=base.device.min_inverter_area * s * s,
        supply_voltage=base.device.supply_voltage * s ** 0.5,
    )
    return TechnologyNode(
        name=name,
        feature_size=feature,
        metal_rules=metal_rules,
        via_rules=via_rules,
        device=device,
        conductor=base.conductor,
        dielectric=base.dielectric,
        gate_pitch_factor=base.gate_pitch_factor,
    )


def roadmap_nodes(
    base: TechnologyNode, generations: int, shrink: float = DEFAULT_SHRINK
) -> List[TechnologyNode]:
    """The base node followed by ``generations`` projected successors."""
    nodes = [base]
    for g in range(1, generations + 1):
        nodes.append(project_node(base, generations=g, shrink=shrink))
    return nodes
