"""Minimum-inverter (driver / repeater) device parameters.

The paper's delay model (its Eqs. (2)-(4)) is parameterized by three
device constants of the minimum-sized inverter:

* ``r_o`` — output resistance,
* ``c_o`` — input capacitance,
* ``c_p`` — parasitic (drain junction) capacitance,

plus, for repeater-area accounting, the silicon area of a minimum
inverter (a repeater of size ``s`` occupies ``s`` minimum-inverter areas;
the paper's Eq. (5) counts repeaters as ``z_r = r / s_j``).

The paper does not print its device constants; per the substitution rule
they are reconstructed from ITRS-2001-era textbook values and recorded in
:mod:`repro.tech.presets`.  Rank depends on them smoothly, so the shapes
of the Table 4 sweeps are insensitive to the exact choices (verified by
``tests/analysis/test_sensitivity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DeviceParameters:
    """Electrical and area parameters of the minimum-sized inverter.

    Attributes
    ----------
    output_resistance:
        ``r_o`` in ohms: equivalent switching resistance of the minimum
        inverter's pull network.
    input_capacitance:
        ``c_o`` in farads: gate capacitance presented by the minimum
        inverter's input.
    parasitic_capacitance:
        ``c_p`` in farads: drain parasitic capacitance of the minimum
        inverter's output.
    min_inverter_area:
        Silicon area of a minimum inverter in square metres.  A repeater
        of size ``s`` (a multiple of minimum size) consumes
        ``s * min_inverter_area`` of the repeater budget.
    supply_voltage:
        Nominal supply in volts; used only by the power companion
        metric (:mod:`repro.power`), never by rank computation.
    """

    output_resistance: float
    input_capacitance: float
    parasitic_capacitance: float
    min_inverter_area: float
    supply_voltage: float = 1.2

    def __post_init__(self) -> None:
        for attr in (
            "output_resistance",
            "input_capacitance",
            "parasitic_capacitance",
            "min_inverter_area",
            "supply_voltage",
        ):
            value = getattr(self, attr)
            if value <= 0:
                raise ConfigurationError(
                    f"DeviceParameters.{attr} must be positive, got {value!r}"
                )

    @property
    def intrinsic_delay(self) -> float:
        """``r_o * (c_o + c_p)``: the size-invariant self-delay of one stage.

        A repeater of size ``s`` has resistance ``r_o / s`` and
        capacitances ``s * c_o`` and ``s * c_p``, so this product — and
        therefore the per-stage intrinsic delay term of the paper's
        Eq. (3) — does not change with sizing.  It is what makes very
        short wires unable to meet a target delay proportional to length.
        """
        return self.output_resistance * (
            self.input_capacitance + self.parasitic_capacitance
        )

    def repeater_resistance(self, size: float) -> float:
        """Output resistance of a repeater of the given size multiple."""
        if size <= 0:
            raise ConfigurationError(f"repeater size must be positive, got {size!r}")
        return self.output_resistance / size

    def repeater_input_capacitance(self, size: float) -> float:
        """Input capacitance of a repeater of the given size multiple."""
        if size <= 0:
            raise ConfigurationError(f"repeater size must be positive, got {size!r}")
        return self.input_capacitance * size

    def repeater_area(self, size: float) -> float:
        """Silicon area consumed by one repeater of the given size multiple."""
        if size <= 0:
            raise ConfigurationError(f"repeater size must be positive, got {size!r}")
        return self.min_inverter_area * size
