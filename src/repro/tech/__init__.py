"""Technology models: materials, devices, and process-node presets.

This package supplies the process-side inputs of the rank metric:

* :mod:`repro.tech.materials` — conductor and dielectric materials,
* :mod:`repro.tech.device` — minimum-inverter (driver/repeater) parameters,
* :mod:`repro.tech.node` — a :class:`~repro.tech.node.TechnologyNode`
  bundling metal geometry rules, via rules, device parameters and the
  ITRS gate-pitch rule,
* :mod:`repro.tech.presets` — the TSMC-style 180/130/90 nm parameter sets
  of the paper's Table 3.
"""

from .materials import Conductor, Dielectric, COPPER, ALUMINIUM, SIO2, LOW_K_36, LOW_K_28
from .device import DeviceParameters
from .node import MetalRule, ViaRule, TechnologyNode
from .io import load_node, node_from_dict, node_to_dict, save_node
from .projection import project_node, roadmap_nodes
from .presets import (
    NODE_180NM,
    NODE_130NM,
    NODE_90NM,
    available_nodes,
    get_node,
)

__all__ = [
    "Conductor",
    "Dielectric",
    "COPPER",
    "ALUMINIUM",
    "SIO2",
    "LOW_K_36",
    "LOW_K_28",
    "DeviceParameters",
    "MetalRule",
    "ViaRule",
    "TechnologyNode",
    "NODE_180NM",
    "NODE_130NM",
    "NODE_90NM",
    "available_nodes",
    "get_node",
    "load_node",
    "save_node",
    "node_to_dict",
    "node_from_dict",
    "project_node",
    "roadmap_nodes",
]
