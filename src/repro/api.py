"""Stable keyword-only facade over the library's entry points.

This module is the supported public surface of the package: everything
here is re-exported from :mod:`repro` and covered by the deprecation
policy (old spellings keep working for one minor release with a
:class:`DeprecationWarning`; facade signatures only grow, never
reorder).  Direct imports from implementation modules
(``repro.core.rank``, ``repro.analysis.sweep``, ...) still work but are
not part of the stable surface.

Design rules:

* **Keyword-only options.**  Every function takes its subject(s)
  positionally and everything else keyword-only, so options can be
  added or reordered without breaking callers.  Legacy positional
  calls to :func:`compute_rank` are shimmed with a
  :class:`DeprecationWarning` (see ``_LEGACY_POSITIONAL``).
* **One backend knob.**  Every rank-computing function accepts
  ``backend=`` (``"numpy"`` / ``"python"`` / ``None`` meaning the
  ``REPRO_RANK_BACKEND`` environment variable, then ``"numpy"``) and
  threads it to the DP transition kernels; results are identical
  across backends, only speed differs.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # import-time cycle guards; annotations are lazy
    from .analysis.corners import Corner, CornerReport
    from .analysis.sweep import SweepResult
    from .assign.tables import AssignmentTables
    from .core.curve import BudgetRankCurve
    from .optimize.search import DesignSpace, OptimizationResult

from .core.discretize import DEFAULT_REPEATER_UNITS
from .core.dp import BACKENDS, resolve_backend, solve_rank_dp
from .core.precompute import PrecomputeCache
from .core.problem import RankProblem
from .core.rank import RankResult
from .core.rank import compute_rank as _compute_rank_impl
from .core.scenarios import baseline_problem
from .errors import RankComputationError
from .faultkit import FaultSchedule, FaultSpec, parse_fault_schedule
from .optimize.space import DesignSpace
from .schema import (
    SCHEMA_VERSION,
    CornersRequest,
    OptimizeRequest,
    RankRequest,
    RankResponse,
    SweepRequest,
)
from .tech.io import load_node

__all__ = [
    "compute_rank",
    "sweep",
    "corners",
    "optimize",
    "optimize_rank",
    "budget_curve",
    "load_node",
    "bench",
    # Re-exported building blocks, so caller layers (CLI, tools,
    # benchmarks — see lintkit rule RPL004) never reach into
    # repro.core directly:
    "baseline_problem",
    "DesignSpace",
    "PrecomputeCache",
    "RankProblem",
    "RankResult",
    # Deterministic chaos testing: batch entry points (sweep, corners,
    # optimize) accept fault_schedule= and thread it to the runner.
    "FaultSchedule",
    "FaultSpec",
    "parse_fault_schedule",
    # The v1 wire schema (repro.schema): typed, canonicalizable,
    # fingerprinted requests — what the service, CLI, and persistence
    # construct instead of ad-hoc kwarg dicts.
    "SCHEMA_VERSION",
    "RankRequest",
    "SweepRequest",
    "CornersRequest",
    "OptimizeRequest",
    "RankResponse",
    "solve_rank_request",
]

#: Legacy positional parameter order of ``compute_rank`` (everything
#: after ``problem``), used by the deprecation shim below.
_LEGACY_POSITIONAL = (
    "solver",
    "bunch_size",
    "max_groups",
    "repeater_units",
    "collect_witness",
    "deadline",
    "cache",
)


def compute_rank(
    problem: RankProblem,
    *args: Any,
    solver: str = "dp",
    bunch_size: Optional[int] = None,
    max_groups: Optional[int] = None,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
    collect_witness: bool = False,
    deadline: Optional[float] = None,
    cache: Optional[PrecomputeCache] = None,
    backend: Optional[str] = None,
) -> RankResult:
    """Compute the rank of the problem's architecture.

    Facade over :func:`repro.core.rank.compute_rank` with a stable
    keyword-only signature.  Positional use of the option parameters
    (the pre-facade signature) still works but emits a
    :class:`DeprecationWarning`.

    See :func:`repro.core.rank.compute_rank` for parameter semantics;
    ``backend`` selects the DP transition kernels (``"numpy"`` /
    ``"python"``, identical results).
    """
    if args:
        warnings.warn(
            "positional options to compute_rank() are deprecated; "
            "pass solver=, bunch_size=, ... as keywords",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > len(_LEGACY_POSITIONAL):
            raise TypeError(
                f"compute_rank() takes at most {len(_LEGACY_POSITIONAL)} "
                f"positional options, got {len(args)}"
            )
        explicit = {
            "solver": solver,
            "bunch_size": bunch_size,
            "max_groups": max_groups,
            "repeater_units": repeater_units,
            "collect_witness": collect_witness,
            "deadline": deadline,
            "cache": cache,
        }
        for name, value in zip(_LEGACY_POSITIONAL, args):
            explicit[name] = value
        solver = explicit["solver"]
        bunch_size = explicit["bunch_size"]
        max_groups = explicit["max_groups"]
        repeater_units = explicit["repeater_units"]
        collect_witness = explicit["collect_witness"]
        deadline = explicit["deadline"]
        cache = explicit["cache"]
    return _compute_rank_impl(
        problem,
        solver=solver,
        bunch_size=bunch_size,
        max_groups=max_groups,
        repeater_units=repeater_units,
        collect_witness=collect_witness,
        deadline=deadline,
        cache=cache,
        backend=backend,
    )


def sweep(
    name: str,
    values: Sequence[float],
    make_problem: Callable[[float], RankProblem],
    *,
    backend: Optional[str] = None,
    **options: Any,
) -> "SweepResult":
    """Evaluate the rank at each knob value (the Table 4 engine).

    Facade over :func:`repro.analysis.sweep.run_sweep`; all of its
    keyword options (``paper``, ``solver``, ``bunch_size``,
    ``max_groups``, ``repeater_units``, retry/checkpoint/parallelism
    controls, ``cache``, ``fault_schedule``) pass through, plus the
    ``backend`` knob.
    """
    from .analysis.sweep import run_sweep

    return run_sweep(name, values, make_problem, backend=backend, **options)


def corners(
    problem: RankProblem,
    *,
    corners: Optional[Sequence["Corner"]] = None,
    backend: Optional[str] = None,
    **options: Any,
) -> "CornerReport":
    """Evaluate the rank across process/operating corners.

    Facade over :func:`repro.analysis.corners.rank_across_corners`
    (``corners=None`` evaluates the standard five-corner set); returns
    its :class:`~repro.analysis.corners.CornerReport`.
    """
    from .analysis.corners import STANDARD_CORNERS, rank_across_corners

    return rank_across_corners(
        problem,
        corners=STANDARD_CORNERS if corners is None else corners,
        backend=backend,
        **options,
    )


def optimize(
    problem: RankProblem,
    space: "DesignSpace",
    *,
    backend: Optional[str] = None,
    **options: Any,
) -> "OptimizationResult":
    """Search a design space for the highest-rank architecture.

    Facade over :func:`repro.optimize.search.optimize_architecture`;
    search controls (``exhaustive_limit``, ``shielding_aware``, retry /
    checkpoint / parallelism options) and solve options (``bunch_size``,
    ``repeater_units``, ...) pass through, plus the ``backend`` knob.
    """
    from .optimize.search import optimize_architecture

    return optimize_architecture(problem, space, backend=backend, **options)


#: Facade-named alias of :func:`optimize`, re-exported from the
#: :mod:`repro` top level.  The bare name ``optimize`` cannot live
#: there — it would shadow the ``repro.optimize`` subpackage and break
#: ``import repro.optimize.search`` — so the top level carries this
#: non-shadowing spelling instead; ``repro.api.optimize`` remains the
#: namespaced original.
optimize_rank = optimize


def solve_rank_request(
    request: RankRequest,
    *,
    cache: Optional[PrecomputeCache] = None,
    deadline: Optional[float] = None,
) -> RankResult:
    """Solve one typed :class:`~repro.schema.RankRequest`.

    The request carries the problem definition (node, gates, knobs)
    and the solve options; ``deadline`` (absolute ``time.monotonic()``,
    overriding the request's relative ``deadline_s`` when given) and
    ``cache`` are execution-context concerns supplied by the caller —
    the service passes its process-wide :class:`PrecomputeCache` and
    the per-request deadline here.
    """
    problem = baseline_problem(
        request.node, request.gates, **request.problem_kwargs()
    )
    if deadline is None and request.deadline_s is not None:
        deadline = time.monotonic() + request.deadline_s
    return compute_rank(
        problem, deadline=deadline, cache=cache, **request.solve_kwargs()
    )


def budget_curve(
    problem: RankProblem,
    *,
    bunch_size: Optional[int] = None,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
    cache: Optional[PrecomputeCache] = None,
) -> Tuple["BudgetRankCurve", "AssignmentTables"]:
    """Rank as a function of repeater budget, in one DP pass.

    Facade over :func:`repro.core.curve.solve_budget_rank_curve`.
    Returns ``(curve, tables)``: the
    :class:`~repro.core.curve.BudgetRankCurve` plus the assignment
    tables it was solved on (whose ``total_wires`` normalises the
    curve for reporting).
    """
    from .core.curve import solve_budget_rank_curve

    tables, _ = problem.tables(bunch_size=bunch_size, cache=cache)
    curve = solve_budget_rank_curve(tables, repeater_units=repeater_units)
    return curve, tables


def bench(
    *,
    node: str = "130nm",
    gates: int = 1_000_000,
    bunch_size: Optional[int] = 10_000,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
    backends: Sequence[str] = BACKENDS,
    repeats: int = 3,
    collect_witness: bool = False,
) -> Dict[str, object]:
    """Time the DP backends on one problem and check they agree.

    Builds the Table 4 baseline for ``node`` / ``gates``, solves it
    ``repeats`` times per backend (best-of to suppress scheduler
    noise), and returns per-backend timings plus the cross-backend
    speedup — the number ``tools/bench_to_json.py`` publishes as the
    ``kernel`` section of ``BENCH_rank.json``.

    Raises :class:`~repro.errors.RankComputationError` if the backends
    disagree on rank — a benchmark of wrong answers is worthless.
    """
    if repeats < 1:
        raise RankComputationError(f"repeats must be >= 1, got {repeats!r}")
    problem = baseline_problem(node, gates)

    t0 = time.perf_counter()
    tables, _ = problem.tables(bunch_size=bunch_size)
    tables_s = time.perf_counter() - t0

    timings: Dict[str, Dict[str, object]] = {}
    ranks = {}
    for backend in backends:
        backend = resolve_backend(backend)
        best = float("inf")
        raw = None
        for _ in range(repeats):
            start = time.perf_counter()
            raw = solve_rank_dp(
                tables,
                repeater_units=repeater_units,
                collect_witness=collect_witness,
                backend=backend,
            )
            best = min(best, time.perf_counter() - start)
        ranks[backend] = raw.rank
        timings[backend] = {
            "solve_s": best,
            "rank": raw.rank,
            "transitions": raw.stats.transitions,
        }
    if len(set(ranks.values())) > 1:
        raise RankComputationError(
            f"DP backends disagree on rank: {ranks} — refusing to benchmark"
        )

    speedup = None
    if "python" in timings and "numpy" in timings:
        numpy_s = timings["numpy"]["solve_s"]
        if numpy_s > 0:
            speedup = timings["python"]["solve_s"] / numpy_s
    return {
        "node": node,
        "gates": gates,
        "bunch_size": bunch_size,
        "repeater_units": repeater_units,
        "collect_witness": collect_witness,
        "repeats": repeats,
        "tables_s": tables_s,
        "backends": timings,
        "speedup_numpy_over_python": speedup,
    }
