"""Bounded LRU memoization of serialized responses.

The service memoizes at the *response-bytes* level: the key is a
request fingerprint (SHA-256 over canonical JSON, see
:meth:`repro.schema._Request.fingerprint`), the value the exact body
bytes previously sent.  A hit therefore replays a byte-identical
response — the acceptance contract of the serving layer — and costs a
dict lookup instead of a DP solve.

Thread-safe: handlers run on the event loop, but ``/v1/metrics`` and
tests may read stats from other threads, and locking an OrderedDict
move-to-end is too cheap to argue about.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from .. import obs

__all__ = ["ResultCache"]


class ResultCache:
    """LRU map of request fingerprint -> serialized response body."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, fingerprint: str) -> Optional[bytes]:
        """The memoized body for ``fingerprint``, or ``None``."""
        with self._lock:
            body = self._entries.get(fingerprint)
            if body is None:
                self._misses += 1
                obs.inc("service.cache.misses")
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            obs.inc("service.cache.hits")
            return body

    def put(self, fingerprint: str, body: bytes) -> None:
        """Memoize ``body``; evicts the least-recently-used entry."""
        with self._lock:
            self._entries[fingerprint] = body
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                obs.inc("service.cache.evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for ``/v1/metrics`` and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
