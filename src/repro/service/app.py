"""The rank service: request handling over the schema + executor.

Request lifecycle (the tentpole contract):

1. Parse JSON, build the typed request (:mod:`repro.schema`) — a
   :class:`~repro.errors.SchemaError` answers ``400``.
2. Canonicalize and fingerprint.  The fingerprint keys everything
   downstream; transport-only fields (deadline, backend) never reach
   it, so they cannot fragment the caches.
3. Memo lookup (:class:`~repro.service.memo.ResultCache`): a hit
   replays the stored body byte-identically (``X-Repro-Cache: hit``).
4. In-flight dedup: a second identical request arriving while the
   first still computes awaits the same future instead of submitting a
   duplicate solve (``X-Repro-Cache: coalesced``).
5. Miss: dispatch to the :class:`~repro.service.executor.SolveExecutor`
   under the request deadline.  Backpressure answers ``429`` with
   ``Retry-After``; a cooperative deadline expiry answers ``504``
   (sweeps may return the completed prefix instead, see
   :class:`~repro.schema.SweepRequest`).

Composite endpoints decompose into point-level work that shares the
same memo cache: each sweep value is solved as its equivalent
``/v1/rank`` request, each corner as a per-corner job keyed by the
base problem — so a sweep warms the cache for later rank requests and
vice versa.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Awaitable,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .. import __version__, obs
from ..errors import DeadlineExceeded, ReproError, SchemaError
from ..faultkit import fault_point
from ..schema import (
    SCHEMA_VERSION,
    CornersRequest,
    OptimizeRequest,
    RankRequest,
    SweepRequest,
    canonical_json_bytes,
    fingerprint_bytes,
)
from .executor import ServiceOverloaded, SolveExecutor
from .http import HttpError, HttpRequest, json_error_body
from .memo import ResultCache
from . import solve

__all__ = ["ServiceConfig", "RankApp", "Response"]

#: Per-endpoint latency reservoir size (ring buffer per endpoint).
_LATENCY_WINDOW = 2048


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (the ``ia-rank serve`` knobs)."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 1
    executor_mode: str = "auto"
    queue_depth: int = 16
    cache_entries: int = 256
    precompute_entries: int = 8
    default_deadline_s: Optional[float] = 30.0
    max_deadline_s: float = 300.0
    max_body_bytes: int = 1 << 20
    idle_timeout_s: float = 75.0
    warm_on_start: bool = False


@dataclass
class Response:
    """What a handler returns; the server layer renders it."""

    status: int
    body: bytes
    headers: Tuple[Tuple[str, str], ...] = ()


class _Latencies:
    """Bounded per-endpoint latency samples with cheap quantiles."""

    def __init__(self, window: int = _LATENCY_WINDOW) -> None:
        self._window = window
        self._samples: Dict[str, Deque[float]] = {}

    def record(self, endpoint: str, seconds: float) -> None:
        bucket = self._samples.get(endpoint)
        if bucket is None:
            bucket = self._samples[endpoint] = deque(maxlen=self._window)
        bucket.append(seconds)
        obs.observe(f"service.latency.{endpoint}", seconds)

    def summary(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for endpoint, bucket in sorted(self._samples.items()):
            data = sorted(bucket)
            n = len(data)
            if not n:
                continue
            out[endpoint] = {
                "count": float(n),
                "p50_s": data[(n - 1) // 2],
                "p99_s": data[min(n - 1, (99 * n) // 100)],
                "max_s": data[-1],
            }
        return out


class RankApp:
    """Route table + request lifecycle, independent of the socket layer.

    Split from the server so tests (and the benchmark harness) can
    drive the full pipeline — schema, memo, dedup, executor, deadlines
    — through :meth:`dispatch` without opening a port.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.memo = ResultCache(max_entries=config.cache_entries)
        self.executor = SolveExecutor(
            workers=config.workers,
            queue_depth=config.queue_depth,
            mode=config.executor_mode,
            precompute_entries=config.precompute_entries,
            warm=RankRequest().canonicalize() if config.warm_on_start else None,
        )
        self.latencies = _Latencies()
        self._inflight: Dict[str, "asyncio.Task[bytes]"] = {}
        self._started = time.monotonic()
        self._routes: Dict[Tuple[str, str], Callable[..., Awaitable[Response]]] = {
            ("POST", "/v1/rank"): self._handle_rank,
            ("POST", "/v1/sweep"): self._handle_sweep,
            ("POST", "/v1/corners"): self._handle_corners,
            ("POST", "/v1/optimize"): self._handle_optimize,
            ("GET", "/v1/metrics"): self._handle_metrics,
            ("GET", "/v1/healthz"): self._handle_healthz,
        }

    def start(self) -> None:
        """Bring up the executor (and obs metrics)."""
        obs.enable()
        self.executor.start()

    def close(self) -> None:
        self.executor.close()

    # ------------------------------------------------------------------
    # dispatch

    async def dispatch(self, request: HttpRequest) -> Response:
        """Route one request; every failure maps to a definite status."""
        endpoint = request.path.rsplit("/", 1)[-1] or "root"
        started = time.perf_counter()
        obs.inc("service.requests")
        try:
            fault_point(
                "service.request.start",
                method=request.method,
                path=request.path,
            )
            handler = self._routes.get((request.method, request.path))
            if handler is None:
                allowed = sorted(
                    method for method, path in self._routes if path == request.path
                )
                if allowed:
                    raise HttpError(
                        405,
                        f"{request.method} not allowed on {request.path}",
                        headers=(("Allow", ", ".join(allowed)),),
                    )
                raise HttpError(404, f"no such endpoint: {request.path}")
            response = await handler(request)
        except HttpError as exc:
            response = Response(
                exc.status,
                json_error_body(exc.status, _error_name(exc.status), exc.message),
                headers=exc.headers,
            )
        except SchemaError as exc:
            obs.inc("service.errors.schema")
            response = Response(400, json_error_body(400, "SchemaError", str(exc)))
        except ServiceOverloaded as exc:
            response = Response(
                429,
                json_error_body(429, "ServiceOverloaded", str(exc)),
                headers=(("Retry-After", f"{exc.retry_after_s:g}"),),
            )
        except DeadlineExceeded as exc:
            obs.inc("service.deadline.expired")
            response = Response(
                504, json_error_body(504, "DeadlineExceeded", str(exc))
            )
        except ReproError as exc:
            obs.inc("service.errors.internal")
            response = Response(
                500, json_error_body(500, type(exc).__name__, str(exc))
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - the service must answer
            obs.inc("service.errors.unexpected")
            response = Response(
                500, json_error_body(500, type(exc).__name__, str(exc))
            )
        elapsed = time.perf_counter() - started
        self.latencies.record(endpoint, elapsed)
        obs.inc(f"service.requests.{endpoint}")
        response.headers = response.headers + (
            ("X-Repro-Elapsed-S", f"{elapsed:.6f}"),
        )
        return response

    # ------------------------------------------------------------------
    # the point-level solve path (shared by /v1/rank and sweep points)

    def _deadline_from(self, deadline_s: Optional[float]) -> Optional[float]:
        """Absolute monotonic deadline for a request-relative one."""
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s is None:
            return None
        deadline_s = min(deadline_s, self.config.max_deadline_s)
        return time.monotonic() + deadline_s

    async def _solve_point(
        self,
        fingerprint: str,
        job: Callable[..., Mapping[str, object]],
        args: Tuple[Any, ...],
        deadline: Optional[float],
    ) -> Tuple[bytes, str]:
        """Memoized, deduplicated execution of one picklable job.

        Returns ``(body, source)`` with source one of ``hit`` /
        ``coalesced`` / ``miss``.  The body bytes are exactly what was
        (or will be) memoized, so every path replays byte-identically.
        """
        body = self.memo.get(fingerprint)
        if body is not None:
            return body, "hit"
        pending = self._inflight.get(fingerprint)
        if pending is not None:
            obs.inc("service.dedup.coalesced")
            # shield(): a waiter disconnecting must not cancel the
            # shared solve other waiters still want.
            return await asyncio.shield(pending), "coalesced"
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded("request deadline expired before dispatch")
        # Submit before creating the tracking task so backpressure
        # (ServiceOverloaded) raises in this requester's context.
        future = self.executor.submit(job, *args, deadline)

        async def _await_and_memoize() -> bytes:
            payload = await asyncio.wrap_future(future)
            result = canonical_json_bytes(payload)
            self.memo.put(fingerprint, result)
            return result

        task = asyncio.get_running_loop().create_task(_await_and_memoize())
        task.add_done_callback(self._solve_finished(fingerprint))
        self._inflight[fingerprint] = task
        return await asyncio.shield(task), "miss"

    def _solve_finished(
        self, fingerprint: str
    ) -> Callable[["asyncio.Task[bytes]"], None]:
        def _done(task: "asyncio.Task[bytes]") -> None:
            self._inflight.pop(fingerprint, None)
            if not task.cancelled():
                # Touch the exception so an unconsumed failure (every
                # waiter gone) doesn't log "never retrieved".
                task.exception()

        return _done

    # ------------------------------------------------------------------
    # endpoints

    async def _handle_rank(self, request: HttpRequest) -> Response:
        rank_request = RankRequest.from_wire(_parse_json(request.body))
        deadline = self._deadline_from(rank_request.deadline_s)
        body, source = await self._solve_point(
            rank_request.fingerprint(),
            solve.solve_rank_job,
            (rank_request.canonicalize(),),
            deadline,
        )
        return Response(200, body, headers=(("X-Repro-Cache", source),))

    async def _handle_sweep(self, request: HttpRequest) -> Response:
        sweep_request = SweepRequest.from_wire(_parse_json(request.body))
        fingerprint = sweep_request.fingerprint()
        memoized = self.memo.get(fingerprint)
        if memoized is not None:
            return Response(200, memoized, headers=(("X-Repro-Cache", "hit"),))
        deadline = self._deadline_from(sweep_request.deadline_s)

        points: List[Dict[str, object]] = []
        failures: List[Dict[str, object]] = []
        partial = False
        for value in sweep_request.values:
            if deadline is not None and time.monotonic() >= deadline:
                partial = True
                break
            point = sweep_request.point_request(value)
            try:
                body, _ = await self._solve_point(
                    point.fingerprint(),
                    solve.solve_rank_job,
                    (point.canonicalize(),),
                    deadline,
                )
            except DeadlineExceeded:
                partial = True
                break
            except ServiceOverloaded:
                raise
            except ReproError as exc:
                failures.append(
                    dict(
                        sorted(
                            {
                                "value": float(value),
                                "error": type(exc).__name__,
                                "message": str(exc),
                            }.items()
                        )
                    )
                )
                continue
            payload = json.loads(body)
            payload["value"] = float(value)
            points.append(dict(sorted(payload.items())))

        if partial and not sweep_request.allow_partial:
            raise DeadlineExceeded(
                f"sweep deadline expired after {len(points)} of "
                f"{len(sweep_request.values)} points (allow_partial=false)"
            )
        result = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "knob": sweep_request.knob,
            "points": points,
            "failures": failures,
            "partial": partial,
        }
        body = canonical_json_bytes(dict(sorted(result.items())))
        source = "miss"
        if not partial and not failures:
            # Partial/failed sweeps must not poison the memo: a retry
            # with more headroom should recompute, not replay the gap.
            self.memo.put(fingerprint, body)
        return Response(200, body, headers=(("X-Repro-Cache", source),))

    async def _handle_corners(self, request: HttpRequest) -> Response:
        corners_request = CornersRequest.from_wire(_parse_json(request.body))
        fingerprint = corners_request.fingerprint()
        memoized = self.memo.get(fingerprint)
        if memoized is not None:
            return Response(200, memoized, headers=(("X-Repro-Cache", "hit"),))
        deadline = self._deadline_from(corners_request.deadline_s)

        # Per-corner results memoize against the *base* problem (the
        # corner selection stripped), so different selections share.
        base = corners_request.canonicalize()
        base.pop("corners")
        base_fp = fingerprint_bytes(canonical_json_bytes(base))
        canonical = corners_request.canonicalize()
        results: List[Dict[str, object]] = []
        for name in corners_request.selected_corner_names():
            body, _ = await self._solve_point(
                f"corner:{base_fp}:{name}",
                solve.solve_corner_job,
                (canonical, name),
                deadline,
            )
            results.append(json.loads(body))

        worst = min(results, key=lambda r: (r["rank"], r["corner"]))
        nominal = next(
            (r for r in results if r["corner"] == "nominal"), results[0]
        )
        result = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "corners": results,
            "worst": worst["corner"],
            "guardband": float(nominal["normalized"]) - float(worst["normalized"]),
        }
        body = canonical_json_bytes(dict(sorted(result.items())))
        self.memo.put(fingerprint, body)
        return Response(200, body, headers=(("X-Repro-Cache", "miss"),))

    async def _handle_optimize(self, request: HttpRequest) -> Response:
        optimize_request = OptimizeRequest.from_wire(_parse_json(request.body))
        deadline = self._deadline_from(optimize_request.deadline_s)
        body, source = await self._solve_point(
            optimize_request.fingerprint(),
            solve.solve_optimize_job,
            (optimize_request.canonicalize(),),
            deadline,
        )
        return Response(200, body, headers=(("X-Repro-Cache", source),))

    async def _handle_metrics(self, request: HttpRequest) -> Response:
        snapshot = obs.snapshot()
        payload = {
            "schema_version": SCHEMA_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "metrics": snapshot,
            "latency": self.latencies.summary(),
            "cache": self.memo.stats(),
            "executor": self.executor.stats(),
            "precompute": solve.precompute_stats(),
        }
        return Response(
            200, json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    async def _handle_healthz(self, request: HttpRequest) -> Response:
        payload = {
            "status": "ok",
            "version": __version__,
            "schema_version": SCHEMA_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "executor": self.executor.stats(),
        }
        return Response(
            200, json.dumps(payload, sort_keys=True).encode("utf-8")
        )


# ----------------------------------------------------------------------


def _parse_json(body: bytes) -> Mapping[str, object]:
    if not body:
        raise HttpError(400, "request body must be a JSON object")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise HttpError(400, f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise HttpError(400, "request body must be a JSON object")
    return payload


def _error_name(status: int) -> str:
    return {
        400: "BadRequest",
        404: "NotFound",
        405: "MethodNotAllowed",
        408: "RequestTimeout",
        413: "PayloadTooLarge",
        429: "TooManyRequests",
        501: "NotImplemented",
        504: "DeadlineExceeded",
    }.get(status, "Error")
