"""A deliberately small HTTP/1.1 layer over asyncio streams.

The service speaks exactly the HTTP it needs — ``GET``/``POST``,
``Content-Length`` bodies, keep-alive — hand-rolled on
:mod:`asyncio.streams` so the package stays stdlib-only (the repo's
no-new-dependencies rule).  Anything outside that envelope (chunked
transfer, upgrades, multipart) is rejected with the appropriate 4xx/5xx
rather than guessed at.

Requests are parsed into :class:`HttpRequest`; handler-visible
failures raise :class:`HttpError`, which the connection loop turns
into a JSON error response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
    "json_error_body",
]

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    504: "Gateway Timeout",
}

#: Hard parsing limits: one request line / header line, header count.
MAX_LINE_BYTES = 8192
MAX_HEADERS = 64


class HttpError(Exception):
    """An HTTP-level failure with a definite status code."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    line = await reader.readline()
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> Optional[HttpRequest]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF before any request bytes (the peer
    closed an idle keep-alive connection); raises :class:`HttpError`
    for anything malformed or outside the supported envelope.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    try:
        text = request_line.decode("ascii").strip()
    except UnicodeDecodeError:
        raise HttpError(400, "request line is not ASCII") from None
    parts = text.split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {text!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "connection closed mid-headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise HttpError(400, "undecodable header") from None
        if not _:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, f"more than {MAX_HEADERS} headers")

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked transfer encoding is not supported")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if length > max_body_bytes:
            raise HttpError(
                413, f"request body of {length} bytes exceeds {max_body_bytes}"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed mid-body") from None

    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"

    # Strip any query string: the API is pure-path + JSON bodies.
    path = target.split("?", 1)[0]
    return HttpRequest(
        method=method, path=path, headers=headers, body=body,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """Serialize one response, headers and body, ready to write."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_error_body(status: int, error: str, message: str) -> bytes:
    """The uniform JSON error payload."""
    payload: Mapping[str, object] = {
        "status": status,
        "error": error,
        "message": message,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")
