"""``python -m repro.service`` — start the server with default knobs.

The full flag surface lives on ``ia-rank serve`` (see
:mod:`repro.cli`); this entry point exists so the service can be
launched from environments that only have the package importable.
"""

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
