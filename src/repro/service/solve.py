"""Worker-side job execution for the serving layer.

Everything here is importable and picklable at module level so the
same entry points run unchanged in both executor modes: in-process
threads (where all jobs share one lock-wrapped
:class:`~repro.api.PrecomputeCache`) and warm forked workers (where
each worker inherits the parent's warmed cache copy-on-write and keeps
its own private copy hot thereafter).

Jobs take the *canonical wire dict* of a request — tiny, JSON-safe,
cheap to pickle — and return the plain-JSON response payload.  All
validation already happened in the parent when the request was
canonicalized; reconstruction via ``from_wire`` here is a cheap
re-check, not a trust boundary.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional, Tuple

from .. import api
from ..errors import ReproError
from ..faultkit import fault_point
from ..schema import (
    CornersRequest,
    OptimizeRequest,
    RankRequest,
    RankResponse,
    SweepRequest,
)

__all__ = [
    "configure",
    "precompute_stats",
    "solve_rank_job",
    "solve_corner_job",
    "solve_optimize_job",
]


class _LockedPrecomputeCache(api.PrecomputeCache):
    """A :class:`~repro.api.PrecomputeCache` safe for thread workers.

    The base cache is a plain ``OrderedDict`` LRU with no locking (its
    documented contract).  Thread-mode executors share one instance
    across workers, so the mutation points are serialized here; a
    concurrent miss on the same key computes twice and puts twice,
    which is wasteful but idempotent — correctness never depends on
    single-flight at this layer.
    """

    def __init__(self, max_entries: int = 8) -> None:
        super().__init__(max_entries=max_entries)
        self._lock = threading.RLock()

    def _get(self, stage: str, key: Tuple[Any, ...]) -> Any:
        with self._lock:
            return super()._get(stage, key)

    def _put(self, key: Tuple[Any, ...], entry: object) -> None:
        with self._lock:
            super()._put(key, entry)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return super().stats()


#: Process-wide precompute cache (coarsened WLDs + assignment tables).
#: Created by :func:`configure`; in fork-pool mode each worker inherits
#: the parent's warmed instance copy-on-write.
_CACHE: Optional[api.PrecomputeCache] = None


def configure(precompute_entries: int, warm: Optional[Mapping[str, object]] = None) -> None:
    """Initialize this process's solve state.

    Runs once in the parent (thread mode) or as the pool initializer /
    pre-fork warmup (process mode).  ``warm``, when given, is the
    canonical dict of a representative request whose tables are solved
    immediately so the very first real request hits a warm cache.
    """
    global _CACHE
    _CACHE = _LockedPrecomputeCache(max_entries=precompute_entries)
    if warm is not None:
        try:
            solve_rank_job(warm, None)
        except ReproError:
            # A bad warmup hint must not keep the service from starting.
            pass


def precompute_stats() -> Dict[str, Any]:
    """Hit/miss counters of this process's precompute cache."""
    if _CACHE is None:
        return {}
    return _CACHE.stats()


def solve_rank_job(
    canonical: Mapping[str, object], deadline: Optional[float]
) -> Dict[str, object]:
    """Solve one canonicalized rank request; returns the wire payload."""
    fault_point("service.solve.start", kind="rank")
    request = RankRequest.from_wire(canonical)
    result = api.solve_rank_request(request, cache=_CACHE, deadline=deadline)
    return RankResponse.from_result(request.fingerprint(), result).to_wire()


def solve_corner_job(
    canonical: Mapping[str, object], corner_name: str, deadline: Optional[float]
) -> Dict[str, object]:
    """Solve one corner of a corners request's base problem.

    The corner transform is applied to the request's baseline problem
    (scaled clock, permittivity, Miller factor — see
    :data:`repro.analysis.corners.STANDARD_CORNERS`) and the result is
    annotated with the corner name so per-corner payloads memoize
    independently of which selection asked for them.
    """
    from ..analysis.corners import STANDARD_CORNERS, apply_corner

    fault_point("service.solve.start", kind="corner", corner=corner_name)
    request = CornersRequest.from_wire(canonical)
    by_name = {corner.name: corner for corner in STANDARD_CORNERS}
    corner = by_name[corner_name]
    problem = api.baseline_problem(
        request.node, request.gates, **request.problem_kwargs()
    )
    result = api.compute_rank(
        apply_corner(problem, corner),
        deadline=deadline,
        cache=_CACHE,
        **request.solve_kwargs(),
    )
    payload = RankResponse.from_result(request.fingerprint(), result).to_wire()
    payload["corner"] = corner_name
    return dict(sorted(payload.items()))


def solve_optimize_job(
    canonical: Mapping[str, object], deadline: Optional[float]
) -> Dict[str, object]:
    """Run one architecture search; returns the wire payload.

    The search itself is a batch of candidate evaluations; the request
    deadline rides the cooperative per-solve deadline of each
    candidate, so an expiry surfaces as :class:`DeadlineExceeded` from
    whichever candidate was in flight.
    """
    fault_point("service.solve.start", kind="optimize")
    request = OptimizeRequest.from_wire(canonical)
    problem = api.baseline_problem(
        request.node, request.gates, **request.problem_kwargs()
    )
    space = api.DesignSpace(
        node=problem.die.node,
        local_pairs=tuple(request.local_pairs_choices),
        semi_global_pairs=tuple(request.semi_global_pairs_choices),
        global_pairs=tuple(request.global_pairs_choices),
        permittivities=tuple(request.permittivities),
        miller_factors=tuple(request.miller_factors),
        max_metal_layers=request.max_metal_layers,
    )
    outcome = api.optimize_rank(
        problem,
        space,
        exhaustive_limit=request.exhaustive_limit,
        bunch_size=request.bunch_size,
        repeater_units=request.repeater_units,
        deadline=deadline,
        cache=_CACHE,
        backend=request.backend,
    )
    def _candidate(entry: Any) -> Dict[str, object]:
        return dict(
            sorted(
                {
                    "label": entry.label(),
                    "metal_layers": entry.metal_layers,
                    "rank": int(entry.result.rank),
                    "normalized": float(entry.normalized),
                }.items()
            )
        )

    return dict(
        sorted(
            {
                "schema_version": canonical["schema_version"],
                "fingerprint": request.fingerprint(),
                "best": _candidate(outcome.best),
                "pareto": [_candidate(c) for c in outcome.pareto],
                "evaluated": len(outcome.evaluated),
                "failures": len(outcome.failures),
            }.items()
        )
    )


#: Picklable sweep-point job: a sweep point *is* a rank request.
def solve_sweep_point_job(
    canonical: Mapping[str, object], deadline: Optional[float]
) -> Dict[str, object]:
    return solve_rank_job(canonical, deadline)
