"""Rank-as-a-service: an asyncio HTTP/JSON serving layer.

Exposes the facade's entry points over versioned wire endpoints::

    POST /v1/rank       one rank computation      (schema: RankRequest)
    POST /v1/sweep      a Table 4 knob sweep      (schema: SweepRequest)
    POST /v1/corners    sign-off across corners   (schema: CornersRequest)
    POST /v1/optimize   architecture search       (schema: OptimizeRequest)
    GET  /v1/metrics    obs registry + latency quantiles + cache stats
    GET  /v1/healthz    liveness, version, executor state

Stdlib-only by construction (hand-rolled HTTP/1.1 over asyncio
streams).  Start it with ``ia-rank serve`` or ``python -m
repro.service``; embed it with::

    from repro.service import RankService, ServiceConfig

    service = RankService(ServiceConfig(port=0))
    await service.start()

Identical requests are answered from a bounded response memo keyed by
the schema's canonical fingerprints — byte-identical replays, with
cache status in the ``X-Repro-Cache`` header — and heavy solves run on
warm workers behind a backpressured queue (429 on overload, 504 on
cooperative deadline expiry).
"""

from .app import RankApp, ServiceConfig
from .executor import ServiceOverloaded, SolveExecutor
from .memo import ResultCache
from .server import RankService, serve

__all__ = [
    "RankApp",
    "RankService",
    "ResultCache",
    "ServiceConfig",
    "ServiceOverloaded",
    "SolveExecutor",
    "serve",
]
