"""Bounded solve executor: warm workers behind a backpressured queue.

Heavy solves must never run on the event loop, so every cache miss is
dispatched here.  Two modes share one interface:

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` in-process.  The
    default on single-CPU hosts, where forked workers only add IPC and
    scheduling overhead (the same reasoning as the batch runner's
    ``pool_mode="auto"`` gate); all workers share one lock-wrapped
    :class:`~repro.api.PrecomputeCache`, so repeated near-identical
    requests stay table-warm.

``process``
    A warm forked worker pool (PR 7 lineage: long-lived workers, fork
    start method so the parent's pre-warmed caches arrive
    copy-on-write).  Chosen automatically with >= 2 workers on >= 2
    usable CPUs; survives worker death by recycling the pool.

Capacity is ``workers + queue_depth`` jobs in flight; a submit beyond
that raises :class:`ServiceOverloaded`, which the HTTP layer maps to
``429 Too Many Requests`` with a ``Retry-After`` hint.  Bounding the
queue is what turns overload into fast, explicit rejection instead of
unbounded latency growth.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Mapping, Optional

from .. import obs
from ..errors import ReproError
from ..runner.parallel import fork_context, usable_cpus
from . import solve

__all__ = ["ServiceOverloaded", "SolveExecutor", "resolve_mode"]

#: Executor modes (``auto`` resolves to one of the other two).
MODES = ("auto", "thread", "process")


class ServiceOverloaded(ReproError):
    """The solve queue is full; the caller should retry later.

    Carries ``retry_after_s``, the server's hint for the HTTP
    ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


def resolve_mode(mode: str, workers: int) -> str:
    """Concrete executor mode for a requested one.

    ``auto`` picks forked workers only when both the worker count and
    the usable-CPU count justify them — the serving twin of the batch
    runner's never-slower-than-sequential pool gate.
    """
    if mode not in MODES:
        raise ReproError(f"executor mode must be one of {MODES}, got {mode!r}")
    if mode != "auto":
        return mode
    if workers >= 2 and usable_cpus() >= 2:
        return "process"
    return "thread"


class SolveExecutor:
    """Dispatch picklable solve jobs to warm workers, with backpressure."""

    def __init__(
        self,
        *,
        workers: int = 1,
        queue_depth: int = 16,
        mode: str = "auto",
        precompute_entries: int = 8,
        warm: Optional[Mapping[str, object]] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers!r}")
        if queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {queue_depth!r}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.mode = resolve_mode(mode, workers)
        self.capacity = workers + queue_depth
        self._precompute_entries = precompute_entries
        self._warm = dict(warm) if warm is not None else None
        self._lock = threading.Lock()
        self._inflight = 0
        self._pool: Optional[Executor] = None
        self._closed = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Create the pool and warm the solve state.

        In both modes the parent process configures (and optionally
        pre-solves) the precompute cache first, so thread workers share
        it directly and forked workers inherit it copy-on-write.
        """
        solve.configure(self._precompute_entries, warm=self._warm)
        self._pool = self._make_pool()

    def _make_pool(self) -> Executor:
        if self.mode == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=fork_context(),
                initializer=solve.configure,
                initargs=(self._precompute_entries, None),
            )
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-solve"
        )

    def close(self) -> None:
        """Shut the pool down; queued-but-unstarted jobs are dropped."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Queue one job; raises :class:`ServiceOverloaded` when full."""
        with self._lock:
            if self._closed or self._pool is None:
                raise ReproError("solve executor is not running")
            if self._inflight >= self.capacity:
                obs.inc("service.backpressure.rejections")
                raise ServiceOverloaded(
                    f"solve queue is full ({self._inflight} jobs in flight, "
                    f"capacity {self.capacity}); retry later",
                    retry_after_s=1.0,
                )
            self._inflight += 1
            pool = self._pool
        try:
            future = pool.submit(fn, *args)
        except (RuntimeError, BrokenProcessPool):
            with self._lock:
                self._inflight -= 1
            raise
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: "Future[Any]") -> None:
        with self._lock:
            self._inflight -= 1
        exc = future.exception()
        if isinstance(exc, BrokenProcessPool):
            self.recycle()

    def recycle(self) -> None:
        """Replace a broken process pool with a fresh one.

        Called when a forked worker died mid-job (OOM kill, injected
        ``kill`` fault): jobs that were in the dead pool have already
        failed with :class:`BrokenProcessPool`; new submissions land in
        the replacement.
        """
        with self._lock:
            if self._closed or self.mode != "process":
                return
            old, self._pool = self._pool, None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        obs.inc("service.pool.recycles")
        pool = self._make_pool()
        with self._lock:
            if self._closed:
                pool.shutdown(wait=False)
            else:
                self._pool = pool

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Executor state for ``/v1/healthz`` and ``/v1/metrics``."""
        with self._lock:
            return {
                "mode": self.mode,
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "capacity": self.capacity,
                "inflight": self._inflight,
            }
