"""The socket layer: asyncio connections around :class:`RankApp`.

Separated from :mod:`.app` so the request pipeline is testable (and
benchmarkable) without a port; this module owns only connection
acceptance, keep-alive, per-connection error containment, and graceful
shutdown on SIGTERM/SIGINT.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from typing import Optional

from .app import RankApp, Response, ServiceConfig
from .http import HttpError, json_error_body, read_request, render_response

__all__ = ["RankService", "serve"]


class RankService:
    """One serving instance: app + listening socket.

    Usage (tests / embedding)::

        service = RankService(ServiceConfig(port=0))
        await service.start()
        ...  # talk to 127.0.0.1:service.port
        await service.stop()
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.app = RankApp(self.config)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        port: int = self._server.sockets[0].getsockname()[1]
        return port

    async def start(self) -> None:
        self.app.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.app.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("start() the service first")
        await self._server.serve_forever()

    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive connection: read, dispatch, write, repeat."""
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(
                            reader, max_body_bytes=self.config.max_body_bytes
                        ),
                        timeout=self.config.idle_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break
                except HttpError as exc:
                    # Parse failures poison stream framing: answer and
                    # close rather than resynchronize.
                    writer.write(
                        render_response(
                            exc.status,
                            json_error_body(exc.status, "BadRequest", exc.message),
                            keep_alive=False,
                            extra_headers=exc.headers,
                        )
                    )
                    await writer.drain()
                    break
                except (ValueError, ConnectionError):
                    break
                if request is None:
                    break
                response: Response = await self.app.dispatch(request)
                writer.write(
                    render_response(
                        response.status,
                        response.body,
                        keep_alive=request.keep_alive,
                        extra_headers=response.headers,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                with contextlib.suppress(asyncio.CancelledError):
                    await writer.wait_closed()


async def _run(config: ServiceConfig) -> int:
    """Start, serve until SIGTERM/SIGINT, stop cleanly."""
    service = RankService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    print(
        f"ia-rank serve: listening on http://{config.host}:{service.port} "
        f"(executor={service.app.executor.mode}, "
        f"workers={config.workers}, queue_depth={config.queue_depth})",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        await service.stop()
    return 0


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Blocking entry point used by ``ia-rank serve``."""
    try:
        return asyncio.run(_run(config or ServiceConfig()))
    except KeyboardInterrupt:
        return 130
