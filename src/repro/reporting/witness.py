"""Full assignment reports: where every wire of the WLD ended up.

Combines the DP witness (the delay-meeting prefix, per layer-pair) with
a re-run of the M'' packer (the delay-free suffix placement) into one
layer-by-layer table: wires, repeaters, and routing-area utilization per
pair.  This is the "show me the embedding" view a designer wants after
reading a single rank number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..assign.greedy_assign import pack_suffix_detail
from ..assign.tables import AssignmentTables
from ..core.rank import RankResult
from ..errors import RankComputationError
from .text import format_table


@dataclass(frozen=True)
class PairUsage:
    """Aggregate usage of one layer-pair in a full assignment.

    Attributes
    ----------
    pair:
        0-based index from the top.
    name:
        Layer-pair display name.
    prefix_wires:
        Delay-meeting wires assigned here.
    suffix_wires:
        Delay-free wires packed here.
    repeaters:
        Repeaters physically inserted in this pair's wires.
    area_used:
        Routing area consumed (both kinds of wires), square metres.
    capacity:
        Blockage-adjusted routing capacity of the pair, square metres.
    """

    pair: int
    name: str
    prefix_wires: int
    suffix_wires: int
    repeaters: int
    area_used: float
    capacity: float

    @property
    def utilization(self) -> float:
        """Fraction of the pair's capacity in use."""
        return self.area_used / self.capacity if self.capacity > 0 else 0.0


def assignment_usage(
    tables: AssignmentTables, result: RankResult
) -> List[PairUsage]:
    """Reconstruct per-pair usage from a witnessed rank result.

    Requires ``result.witness`` (run ``compute_rank`` with
    ``collect_witness=True``); re-runs the bottom-up packer for the
    suffix placement.
    """
    if result.witness is None:
        raise RankComputationError(
            "assignment report needs a witness; run compute_rank with "
            "collect_witness=True"
        )

    usage = {
        pair: dict(prefix=0, suffix=0, repeaters=0, area=0.0)
        for pair in range(tables.num_pairs)
    }
    wires_above = 0
    repeaters_above = 0.0
    top_pair = 0
    leftover = tables.capacity(0, 0, 0)
    for segment in result.witness:
        pair_usage = usage[segment.pair]
        wires = int(
            tables.cum_wires[segment.end_group]
            - tables.cum_wires[segment.start_group]
        )
        area = float(
            tables.cum_wire_area[segment.pair][segment.end_group]
            - tables.cum_wire_area[segment.pair][segment.start_group]
        )
        capacity = tables.capacity(segment.pair, wires_above, repeaters_above)
        pair_usage["prefix"] += wires
        pair_usage["repeaters"] += segment.repeaters
        pair_usage["area"] += area
        wires_above = int(tables.cum_wires[segment.end_group])
        repeaters_above += segment.repeaters
        top_pair = segment.pair
        leftover = capacity - area

    suffix_start = result.witness[-1].end_group if result.witness else 0
    fills = pack_suffix_detail(
        tables,
        suffix_start,
        top_pair,
        wires_above,
        repeaters_above,
        top_pair_leftover=leftover,
    )
    if fills is None:
        raise RankComputationError(
            "witnessed prefix exists but its suffix no longer packs — "
            "tables and result are inconsistent"
        )
    for fill in fills:
        usage[fill.pair]["suffix"] += fill.wires
        usage[fill.pair]["area"] += fill.area_used

    report: List[PairUsage] = []
    wires_above = 0
    repeaters_so_far = 0.0
    for pair in range(tables.num_pairs):
        data = usage[pair]
        capacity = tables.capacity(pair, wires_above, repeaters_so_far)
        report.append(
            PairUsage(
                pair=pair,
                name=tables.arch.pair(pair).name,
                prefix_wires=data["prefix"],
                suffix_wires=data["suffix"],
                repeaters=data["repeaters"],
                area_used=data["area"],
                capacity=capacity,
            )
        )
        wires_above += data["prefix"] + data["suffix"]
        repeaters_so_far += data["repeaters"]
    return report


def format_assignment_report(
    tables: AssignmentTables, result: RankResult, title: str = ""
) -> str:
    """Human-readable layer-by-layer assignment table."""
    usage = assignment_usage(tables, result)
    rows: List[Sequence[object]] = []
    for entry in usage:
        rows.append(
            (
                entry.name,
                f"{entry.prefix_wires:,}",
                f"{entry.suffix_wires:,}",
                f"{entry.repeaters:,}",
                f"{entry.utilization * 100:.1f}%",
            )
        )
    return format_table(
        (
            "layer-pair",
            "delay-met wires",
            "other wires",
            "repeaters",
            "area used",
        ),
        rows,
        title=title or f"Assignment for rank {result.rank:,}",
    )
