"""Experiment persistence: JSON round-trips for results and sweeps.

Reproduction runs are cheap but not free; persisting results lets the
benchmark harness, notebooks and CI diff runs against recorded ones.
The format is versioned, flat JSON — stable across refactors of the
in-memory dataclasses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..analysis.sweep import SweepPoint, SweepResult
from ..core.dp import SolverStats, WitnessSegment
from ..core.rank import RankResult
from ..errors import ReproError

PathLike = Union[str, Path]

#: Format version written into every file.
FORMAT_VERSION = 1


def _result_to_dict(result: RankResult) -> dict:
    payload = {
        "rank": result.rank,
        "normalized": result.normalized,
        "total_wires": result.total_wires,
        "fits": result.fits,
        "error_bound": result.error_bound,
        "solver": result.solver,
        "stats": {
            "solver": result.stats.solver,
            "states_explored": result.stats.states_explored,
            "transitions": result.stats.transitions,
            "pack_checks": result.stats.pack_checks,
            "pack_successes": result.stats.pack_successes,
            "runtime_seconds": result.stats.runtime_seconds,
        },
    }
    if result.witness is not None:
        payload["witness"] = [
            {
                "pair": s.pair,
                "start_group": s.start_group,
                "end_group": s.end_group,
                "repeater_cells": s.repeater_cells,
                "repeaters": s.repeaters,
            }
            for s in result.witness
        ]
    return payload


def _result_from_dict(payload: dict) -> RankResult:
    try:
        stats_data = payload["stats"]
        stats = SolverStats(
            solver=stats_data["solver"],
            states_explored=stats_data["states_explored"],
            transitions=stats_data["transitions"],
            pack_checks=stats_data["pack_checks"],
            pack_successes=stats_data["pack_successes"],
            runtime_seconds=stats_data["runtime_seconds"],
        )
        witness = None
        if "witness" in payload:
            witness = tuple(
                WitnessSegment(
                    pair=s["pair"],
                    start_group=s["start_group"],
                    end_group=s["end_group"],
                    repeater_cells=s["repeater_cells"],
                    repeaters=s["repeaters"],
                )
                for s in payload["witness"]
            )
        return RankResult(
            rank=payload["rank"],
            normalized=payload["normalized"],
            total_wires=payload["total_wires"],
            fits=payload["fits"],
            error_bound=payload["error_bound"],
            solver=payload["solver"],
            stats=stats,
            witness=witness,
        )
    except KeyError as exc:
        raise ReproError(f"malformed rank-result payload: missing {exc}") from exc


def save_rank_result(result: RankResult, path: PathLike) -> None:
    """Write one rank result (witness included if present) to JSON."""
    payload = {
        "format": "repro.rank_result",
        "version": FORMAT_VERSION,
        "result": _result_to_dict(result),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_rank_result(path: PathLike) -> RankResult:
    """Read a rank result written by :func:`save_rank_result`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.rank_result":
        raise ReproError(f"{path}: not a rank-result file")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    return _result_from_dict(payload["result"])


def save_sweep(sweep: SweepResult, path: PathLike) -> None:
    """Write a sweep (all points, paper values included) to JSON."""
    payload = {
        "format": "repro.sweep",
        "version": FORMAT_VERSION,
        "name": sweep.name,
        "points": [
            {
                "value": point.value,
                "paper_normalized": point.paper_normalized,
                "result": _result_to_dict(point.result),
            }
            for point in sweep.points
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_sweep(path: PathLike) -> SweepResult:
    """Read a sweep written by :func:`save_sweep`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.sweep":
        raise ReproError(f"{path}: not a sweep file")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    points = tuple(
        SweepPoint(
            value=point["value"],
            result=_result_from_dict(point["result"]),
            paper_normalized=point.get("paper_normalized"),
        )
        for point in payload["points"]
    )
    return SweepResult(name=payload["name"], points=points)
