"""Experiment persistence: JSON round-trips for results and sweeps.

Reproduction runs are cheap but not free; persisting results lets the
benchmark harness, notebooks and CI diff runs against recorded ones.
The format is versioned, flat JSON — stable across refactors of the
in-memory dataclasses.

All writes are **atomic**: content goes to ``<path>.tmp`` and is moved
into place with :func:`os.replace`, so a crash or SIGTERM mid-write can
never leave a truncated file behind.  This is what makes the runner's
incremental checkpoints (:mod:`repro.runner.checkpoint`) safe to resume
from after an interrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from ..analysis.sweep import SweepPoint, SweepResult
from ..core.dp import SolverStats, WitnessSegment
from ..core.rank import RankResult
from ..errors import ReproError, SchemaError
from ..runner.journal import PointFailure
from ..schema import REQUEST_TYPES

PathLike = Union[str, Path]

#: Format version written into every file.
FORMAT_VERSION = 1


def write_json_atomic(payload: dict, path: PathLike) -> None:
    """Serialize ``payload`` to ``path`` via temp file + ``os.replace``.

    The temp file lives next to the target (same filesystem) so the
    final rename is atomic; readers either see the old complete file or
    the new complete file, never a partial write.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()


def read_versioned_json(path: PathLike, expected_format: str) -> dict:
    """Load a versioned JSON file, validating format tag and version.

    Raises :class:`ReproError` (never ``KeyError``/``JSONDecodeError``)
    with an actionable message on unparseable files, wrong format tags,
    or a ``FORMAT_VERSION`` mismatch.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"{path}: cannot read: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: expected a JSON object")
    if payload.get("format") != expected_format:
        kind = expected_format.rsplit(".", 1)[-1].replace("_", "-")
        raise ReproError(
            f"{path}: not a {kind} file "
            f"(format tag {payload.get('format')!r}, expected {expected_format!r})"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported version {payload.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return payload


def rank_result_to_dict(result: RankResult) -> dict:
    """Serialize one rank result to a plain JSON-ready dictionary."""
    payload = {
        "rank": result.rank,
        "normalized": result.normalized,
        "total_wires": result.total_wires,
        "fits": result.fits,
        "error_bound": result.error_bound,
        "solver": result.solver,
        "stats": {
            "solver": result.stats.solver,
            "states_explored": result.stats.states_explored,
            "transitions": result.stats.transitions,
            "pack_checks": result.stats.pack_checks,
            "pack_successes": result.stats.pack_successes,
            "pack_pruned": result.stats.pack_pruned,
            "rows": result.stats.rows,
            "runtime_seconds": result.stats.runtime_seconds,
            "backend": result.stats.backend,
        },
    }
    if result.witness is not None:
        payload["witness"] = [
            {
                "pair": s.pair,
                "start_group": s.start_group,
                "end_group": s.end_group,
                "repeater_cells": s.repeater_cells,
                "repeaters": s.repeaters,
            }
            for s in result.witness
        ]
    return payload


def rank_result_from_dict(payload: dict) -> RankResult:
    """Inverse of :func:`rank_result_to_dict`; raises on missing keys."""
    try:
        stats_data = payload["stats"]
        stats = SolverStats(
            solver=stats_data["solver"],
            states_explored=stats_data["states_explored"],
            transitions=stats_data["transitions"],
            pack_checks=stats_data["pack_checks"],
            pack_successes=stats_data["pack_successes"],
            # absent in pre-memoization files: those ran unpruned
            pack_pruned=stats_data.get("pack_pruned", 0),
            # absent in pre-observability files
            rows=stats_data.get("rows", 0),
            runtime_seconds=stats_data["runtime_seconds"],
            # absent in pre-backend files (those ran the scalar loop,
            # but "" is honest: the field records what was persisted)
            backend=stats_data.get("backend", ""),
        )
        witness = None
        if "witness" in payload:
            witness = tuple(
                WitnessSegment(
                    pair=s["pair"],
                    start_group=s["start_group"],
                    end_group=s["end_group"],
                    repeater_cells=s["repeater_cells"],
                    repeaters=s["repeaters"],
                )
                for s in payload["witness"]
            )
        return RankResult(
            rank=payload["rank"],
            normalized=payload["normalized"],
            total_wires=payload["total_wires"],
            fits=payload["fits"],
            error_bound=payload["error_bound"],
            solver=payload["solver"],
            stats=stats,
            witness=witness,
        )
    except KeyError as exc:
        raise ReproError(f"malformed rank-result payload: missing {exc}") from exc


# Backwards-compatible private aliases (pre-runner name).
_result_to_dict = rank_result_to_dict
_result_from_dict = rank_result_from_dict


def save_rank_result(result: RankResult, path: PathLike) -> None:
    """Write one rank result (witness included if present) to JSON."""
    payload = {
        "format": "repro.rank_result",
        "version": FORMAT_VERSION,
        "result": rank_result_to_dict(result),
    }
    write_json_atomic(payload, path)


def load_rank_result(path: PathLike) -> RankResult:
    """Read a rank result written by :func:`save_rank_result`."""
    payload = read_versioned_json(path, "repro.rank_result")
    return rank_result_from_dict(payload["result"])


def save_sweep(sweep: SweepResult, path: PathLike) -> None:
    """Write a sweep (all points, paper values, failures) to JSON."""
    payload = {
        "format": "repro.sweep",
        "version": FORMAT_VERSION,
        "name": sweep.name,
        "points": [
            {
                "value": point.value,
                "paper_normalized": point.paper_normalized,
                "result": rank_result_to_dict(point.result),
            }
            for point in sweep.points
        ],
    }
    if sweep.failures:
        payload["failures"] = [f.to_dict() for f in sweep.failures]
    write_json_atomic(payload, path)


def save_request(request: object, path: PathLike) -> None:
    """Write one typed wire-schema request (see :mod:`repro.schema`).

    The canonical form is persisted — sorted keys, defaults filled,
    units normalized — so a saved request re-fingerprints identically
    on load.  Transport-only fields (``deadline_s``, ``backend``,
    ``allow_partial``) are not part of the canonical form and are not
    persisted: a stored request records *what* was asked, not how one
    particular serving of it was scheduled.
    """
    kind = next(
        (k for k, cls in REQUEST_TYPES.items() if type(request) is cls), None
    )
    if kind is None:
        raise ReproError(
            f"save_request() takes a repro.schema request type, "
            f"got {type(request).__name__}"
        )
    payload = {
        "format": "repro.request",
        "version": FORMAT_VERSION,
        "kind": kind,
        "request": request.canonicalize(),  # type: ignore[attr-defined]
    }
    write_json_atomic(payload, path)


def load_request(path: PathLike) -> object:
    """Read a request written by :func:`save_request`.

    Returns the typed request (``RankRequest``/``SweepRequest``/...)
    for its recorded ``kind``; the payload re-validates through
    ``from_wire``, so a hand-edited file fails loudly, not subtly.
    """
    payload = read_versioned_json(path, "repro.request")
    kind = payload.get("kind")
    request_type = REQUEST_TYPES.get(kind) if isinstance(kind, str) else None
    if request_type is None:
        raise ReproError(
            f"{path}: unknown request kind {kind!r} "
            f"(expected one of {sorted(REQUEST_TYPES)})"
        )
    body = payload.get("request")
    if not isinstance(body, dict):
        raise ReproError(f"{path}: 'request' must be a JSON object")
    try:
        return request_type.from_wire(body)
    except SchemaError as exc:
        raise ReproError(f"{path}: invalid request payload: {exc}") from exc


def load_sweep(path: PathLike) -> SweepResult:
    """Read a sweep written by :func:`save_sweep`."""
    payload = read_versioned_json(path, "repro.sweep")
    try:
        points = tuple(
            SweepPoint(
                value=point["value"],
                result=rank_result_from_dict(point["result"]),
                paper_normalized=point.get("paper_normalized"),
            )
            for point in payload["points"]
        )
        failures = tuple(
            PointFailure.from_dict(f) for f in payload.get("failures", ())
        )
        return SweepResult(
            name=payload["name"], points=points, failures=failures
        )
    except KeyError as exc:
        raise ReproError(f"{path}: malformed sweep payload: missing {exc}") from exc
