"""Minimal fixed-width text table rendering.

No third-party dependency: benchmarks and the CLI print paper-shaped
tables through :func:`format_table`, and fault-tolerant batch runs
render their journals through :func:`format_run_journal`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:
    from ..runner.journal import RunJournal


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a header rule.

    Cells are stringified with ``str``; columns are right-aligned except
    the first, which is left-aligned (conventional for label columns).
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_run_journal(journal: "RunJournal", verbose: bool = False) -> str:
    """Render a batch run journal for humans.

    The output always leads with the one-line summary; failed points
    get a table with their final error, and any degraded-but-successful
    points are listed so accuracy trades are never silent.  With
    ``verbose=True`` every point is tabulated, not just the notable
    ones.
    """
    from ..runner.journal import STATUS_FAILED

    lines = [journal.summary()]

    rows = []
    for record in journal.records:
        notable = record.status == STATUS_FAILED or (
            record.attempts and len(record.attempts) > 1
        )
        if not (verbose or notable):
            continue
        last = record.attempts[-1] if record.attempts else None
        error = f"{last.error_type}: {last.error_message}" if last and last.error_type else ""
        degraded = (
            " ".join(f"{k}={v:g}" for k, v in last.degradation.items())
            if last
            else ""
        )
        rows.append(
            (
                record.key,
                record.status,
                len(record.attempts),
                degraded or "-",
                error or "-",
            )
        )
    if rows:
        lines.append("")
        lines.append(
            format_table(
                ("point", "status", "attempts", "degradation", "last error"),
                rows,
                title="Attempt detail" if verbose else "Failures and retries",
            )
        )

    degradations = journal.degradations()
    if degradations:
        lines.append("")
        lines.append(
            "degraded points (results are coarser than requested): "
            + ", ".join(
                f"{key} [{' '.join(f'{k}={v:g}' for k, v in knobs.items())}]"
                for key, (_, knobs) in sorted(degradations.items())
            )
        )
    return "\n".join(lines)
