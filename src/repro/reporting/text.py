"""Minimal fixed-width text table rendering.

No third-party dependency: benchmarks and the CLI print paper-shaped
tables through :func:`format_table`.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a header rule.

    Cells are stringified with ``str``; columns are right-aligned except
    the first, which is left-aligned (conventional for label columns).
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
