"""Paper-shaped report tables.

These formatters turn analysis results into the same row/column shapes
the paper prints, with a reproduction column next to the paper column
where paper data exists — the exact output EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

from ..analysis.compare import NodeBaseline
from ..analysis.sensitivity import EquivalencePoint
from ..analysis.sweep import SweepResult
from ..units import MEGA
from .text import format_table

#: Human-readable labels for the Table 4 knobs.
KNOB_LABELS = {
    "K": "ILD permittivity",
    "M": "Miller coupling factor",
    "C": "target clock frequency [Hz]",
    "R": "max repeater fraction of die area",
}


def format_sweep_table(sweep: SweepResult, title: str = "") -> str:
    """Table 4-style column: knob value, reproduced rank, paper rank."""
    label = KNOB_LABELS.get(sweep.name, sweep.name)
    rows: List[Sequence[object]] = []
    for point in sweep.points:
        value = (
            f"{point.value:.2e}" if abs(point.value) >= 1e4 else f"{point.value:.2f}"
        )
        paper = (
            f"{point.paper_normalized:.6f}"
            if point.paper_normalized is not None
            else "-"
        )
        rows.append((value, f"{point.normalized:.6f}", paper))
    return format_table(
        headers=(label, "normalized rank (repro)", "normalized rank (paper)"),
        rows=rows,
        title=title or f"Table 4, column {sweep.name}",
    )


def format_equivalence_table(
    points: Sequence[EquivalencePoint],
    knob_a: str = "K",
    knob_b: str = "M",
    title: str = "",
) -> str:
    """Headline equivalence: %reductions of two knobs per rank level."""
    rows: List[Sequence[object]] = []
    for point in points:
        ra = "-" if point.reduction_a is None else f"{100 * point.reduction_a:.1f}%"
        rb = "-" if point.reduction_b is None else f"{100 * point.reduction_b:.1f}%"
        ratio = "-" if point.ratio is None else f"{point.ratio:.3f}"
        rows.append((f"{point.rank_level:.4f}", ra, rb, ratio))
    return format_table(
        headers=(
            "rank level",
            f"{knob_a} reduction",
            f"{knob_b} reduction",
            f"{knob_b}/{knob_a}",
        ),
        rows=rows,
        title=title or f"Equivalent {knob_a} vs {knob_b} reductions",
    )


def format_node_table(baselines: Sequence[NodeBaseline], title: str = "") -> str:
    """Cross-node baseline comparison rows."""
    rows: List[Sequence[object]] = []
    for base in baselines:
        rows.append(
            (
                f"{base.node_name}/{base.gate_count / MEGA:g}M",
                base.result.rank,
                f"{base.normalized:.6f}",
                "yes" if base.result.fits else "NO",
            )
        )
    return format_table(
        headers=("design", "rank", "normalized", "fits"),
        rows=rows,
        title=title or "Baseline rank per technology node",
    )


def sweep_to_csv(sweep: SweepResult) -> str:
    """CSV dump of a sweep (knob, repro rank, paper rank)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([sweep.name, "normalized_rank_repro", "normalized_rank_paper"])
    for point in sweep.points:
        writer.writerow(
            [
                repr(point.value),
                f"{point.normalized:.6f}",
                "" if point.paper_normalized is None else f"{point.paper_normalized:.6f}",
            ]
        )
    return buffer.getvalue()
