"""Report formatting: Table-4-style text tables, persistence, witnesses."""

from .persist import (
    load_rank_result,
    load_request,
    load_sweep,
    rank_result_from_dict,
    rank_result_to_dict,
    read_versioned_json,
    save_rank_result,
    save_request,
    save_sweep,
    write_json_atomic,
)
from .tables import (
    format_equivalence_table,
    format_node_table,
    format_sweep_table,
    sweep_to_csv,
)
from .text import format_run_journal, format_table
from .witness import PairUsage, assignment_usage, format_assignment_report

__all__ = [
    "format_table",
    "format_run_journal",
    "format_sweep_table",
    "format_equivalence_table",
    "format_node_table",
    "sweep_to_csv",
    "save_rank_result",
    "load_rank_result",
    "save_sweep",
    "load_sweep",
    "save_request",
    "load_request",
    "rank_result_to_dict",
    "rank_result_from_dict",
    "write_json_atomic",
    "read_versioned_json",
    "PairUsage",
    "assignment_usage",
    "format_assignment_report",
]
