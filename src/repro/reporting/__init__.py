"""Report formatting: Table-4-style text tables, persistence, witnesses."""

from .persist import load_rank_result, load_sweep, save_rank_result, save_sweep
from .tables import (
    format_equivalence_table,
    format_node_table,
    format_sweep_table,
    sweep_to_csv,
)
from .text import format_table
from .witness import PairUsage, assignment_usage, format_assignment_report

__all__ = [
    "format_table",
    "format_sweep_table",
    "format_equivalence_table",
    "format_node_table",
    "sweep_to_csv",
    "save_rank_result",
    "load_rank_result",
    "save_sweep",
    "load_sweep",
    "PairUsage",
    "assignment_usage",
    "format_assignment_report",
]
