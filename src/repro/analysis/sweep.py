"""Parameter sweeps: the paper's Table 4.

Each sweep varies one knob of the Table 2 baseline and records the
normalized rank, mirroring the four columns of Table 4:

* ``K`` — ILD permittivity 3.9 down to 1.8,
* ``M`` — Miller coupling factor 2.0 down to 1.0,
* ``C`` — target clock 500 MHz up to 1.7 GHz,
* ``R`` — repeater area fraction 0.1 up to 0.5.

The paper's own measured values are included as ``PAPER_TABLE4_*`` so
benchmarks and EXPERIMENTS.md can print paper-vs-reproduction tables
without copying numbers around.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..arch.builder import ArchitectureSpec, build_architecture
from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError

if TYPE_CHECKING:  # runner imported lazily at call time (cycle via persist)
    from pathlib import Path

    from ..faultkit.schedule import FaultSchedule

    from ..core.precompute import PrecomputeCache
    from ..runner.journal import PointFailure, RunJournal
    from ..runner.policy import RetryPolicy

#: Table 4 of the paper, column K: (ILD permittivity, normalized rank).
PAPER_TABLE4_K: Tuple[Tuple[float, float], ...] = (
    (3.90, 0.397288), (3.80, 0.402596), (3.70, 0.407019), (3.60, 0.413212),
    (3.50, 0.418520), (3.40, 0.424713), (3.30, 0.430021), (3.20, 0.437098),
    (3.10, 0.444175), (3.00, 0.450368), (2.90, 0.458330), (2.80, 0.465364),
    (2.70, 0.474210), (2.60, 0.482172), (2.50, 0.491904), (2.40, 0.501635),
    (2.30, 0.512251), (2.20, 0.522867), (2.10, 0.534368), (2.00, 0.547637),
    (1.90, 0.560907), (1.80, 0.575947),
)

#: Table 4 of the paper, column M: (Miller factor, normalized rank).
PAPER_TABLE4_M: Tuple[Tuple[float, float], ...] = (
    (2.00, 0.397288), (1.95, 0.401711), (1.90, 0.407019), (1.85, 0.412327),
    (1.80, 0.418520), (1.75, 0.423828), (1.70, 0.429136), (1.65, 0.435329),
    (1.60, 0.441521), (1.55, 0.449483), (1.50, 0.456561), (1.45, 0.463594),
    (1.40, 0.471556), (1.35, 0.479518), (1.30, 0.488365), (1.25, 0.498096),
    (1.20, 0.507828), (1.15, 0.518444), (1.10, 0.529060), (1.05, 0.540560),
    (1.00, 0.553830),
)

#: Table 4 of the paper, column C: (clock frequency Hz, normalized rank).
PAPER_TABLE4_C: Tuple[Tuple[float, float], ...] = (
    (5.00e8, 0.397288), (6.00e8, 0.391980), (7.00e8, 0.388441),
    (8.00e8, 0.385787), (9.00e8, 0.384018), (1.00e9, 0.382249),
    (1.10e9, 0.309706), (1.20e9, 0.309706), (1.30e9, 0.309706),
    (1.40e9, 0.309706), (1.50e9, 0.309706), (1.60e9, 0.235608),
    (1.70e9, 0.235608),
)

#: Table 4 of the paper, column R: (repeater fraction, normalized rank).
PAPER_TABLE4_R: Tuple[Tuple[float, float], ...] = (
    (0.10, 0.117438), (0.20, 0.210967), (0.30, 0.303728),
    (0.40, 0.397288), (0.50, 0.491019),
)

#: Default coarsening used by sweeps — the paper's Section 5.2 bunch size.
DEFAULT_BUNCH_SIZE = 10_000


@dataclass(frozen=True)
class SweepPoint:
    """One row of a sweep: knob value, result, and paper value if known."""

    value: float
    result: RankResult
    paper_normalized: Optional[float] = None

    @property
    def normalized(self) -> float:
        """Normalized rank of the reproduction at this point."""
        return self.result.normalized


@dataclass(frozen=True)
class SweepResult:
    """A (possibly partial) sweep over one knob.

    Attributes
    ----------
    name:
        Knob name: ``"K"``, ``"M"``, ``"C"`` or ``"R"`` (or a custom
        label for user-defined sweeps).
    points:
        *Completed* sweep rows in the order swept.  Under a
        ``keep_going`` run, failed points are absent here and recorded
        in ``failures`` instead — a gap is always explicit.
    failures:
        Points that exhausted their retry budget (empty for a clean
        run).
    journal:
        Run journal of the batch execution, when the sweep ran through
        the fault-tolerant harness.  Excluded from equality so a
        resumed sweep compares equal to an uninterrupted one.
    """

    name: str
    points: Tuple[SweepPoint, ...]
    failures: Tuple["PointFailure", ...] = ()
    journal: Optional["RunJournal"] = field(default=None, compare=False)

    @property
    def is_complete(self) -> bool:
        """True iff every requested point produced a result."""
        return not self.failures

    def failed_values(self) -> List[float]:
        """Knob values whose evaluation failed, in sweep order."""
        return [f.value for f in self.failures]

    def values(self) -> List[float]:
        """Swept knob values (completed points only)."""
        return [p.value for p in self.points]

    def normalized_ranks(self) -> List[float]:
        """Reproduced normalized ranks, one per point."""
        return [p.normalized for p in self.points]

    def paper_ranks(self) -> List[Optional[float]]:
        """Paper-reported normalized ranks (None where unknown)."""
        return [p.paper_normalized for p in self.points]

    def improvement(self) -> float:
        """Relative rank change from the first point to the last."""
        first = self.points[0].normalized
        last = self.points[-1].normalized
        if first == 0:
            raise RankComputationError(
                f"sweep {self.name!r}: first point has rank 0, "
                "improvement undefined"
            )
        return (last - first) / first

    def is_monotone(self, non_increasing: bool = False) -> bool:
        """Whether normalized rank is monotone along the sweep."""
        ranks = self.normalized_ranks()
        pairs = zip(ranks, ranks[1:])
        if non_increasing:
            return all(a >= b - 1e-12 for a, b in pairs)
        return all(a <= b + 1e-12 for a, b in pairs)


@dataclass
class _SweepEvaluate:
    """Picklable point evaluator for :func:`run_sweep`.

    A plain dataclass instead of a closure so ``jobs > 1`` can ship it
    (with its :class:`~repro.core.precompute.PrecomputeCache`, warmed in
    the parent) to worker processes through the pool initializer.
    """

    make_problem: Callable[[float], RankProblem]
    solver: str
    bunch_size: Optional[int]
    max_groups: Optional[int]
    repeater_units: int
    cache: Optional["PrecomputeCache"] = None
    backend: Optional[str] = None

    def __call__(self, point, attempt) -> RankResult:
        from ..runner.policy import scaled_bunch_size

        return compute_rank(
            self.make_problem(point.value),
            solver=self.solver,
            bunch_size=scaled_bunch_size(
                self.bunch_size, dict(attempt.degradation)
            ),
            max_groups=self.max_groups,
            repeater_units=self.repeater_units,
            deadline=attempt.deadline,
            cache=self.cache,
            backend=self.backend,
        )


def run_sweep(
    name: str,
    values: Sequence[float],
    make_problem: Callable[[float], RankProblem],
    paper: Optional[Dict[float, float]] = None,
    solver: str = "dp",
    bunch_size: Optional[int] = DEFAULT_BUNCH_SIZE,
    max_groups: Optional[int] = None,
    repeater_units: int = 512,
    policy: Optional["RetryPolicy"] = None,
    keep_going: bool = False,
    checkpoint: Optional[Union[str, "Path"]] = None,
    resume: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    pool_mode: str = "auto",
    checkpoint_every: int = 1,
    checkpoint_interval_s: Optional[float] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    cache: Optional["PrecomputeCache"] = None,
    backend: Optional[str] = None,
) -> SweepResult:
    """Generic sweep engine: evaluate rank at each knob value.

    Every point runs through the fault-tolerant harness
    (:func:`repro.runner.run_batch`): one raising point no longer
    discards the rest of the sweep.

    Parameters
    ----------
    name:
        Label for the swept knob.
    values:
        Knob values in sweep order.
    make_problem:
        Maps a knob value to the :class:`RankProblem` to solve.  Must
        be picklable (module-level function or dataclass instance, not
        a closure) when ``jobs > 1``.
    paper:
        Optional knob-value → paper-normalized-rank lookup.
    solver, bunch_size, max_groups, repeater_units, backend:
        Forwarded to :func:`repro.core.rank.compute_rank`.
    policy:
        Retry/timeout/degradation policy; retries may coarsen
        ``bunch_size`` along the policy's ladder (recorded in the
        journal).  Default: single attempt, no timeout.
    keep_going:
        True: failing points become :class:`SweepResult.failures`
        entries and the sweep stays partial.  False (strict): the first
        exhausted point raises :class:`~repro.errors.RunnerError` after
        checkpointing the completed prefix.
    checkpoint:
        Path journaled incrementally (atomic rewrite as points
        complete; cadence set by ``checkpoint_every`` /
        ``checkpoint_interval_s``).
    resume:
        Reload ``checkpoint`` and recompute only missing points.
    jobs:
        Worker processes (1 = sequential, 0 = one per CPU).  Results
        and the persisted sweep are identical to a sequential run.
    chunk_size / pool_mode:
        Warm-pool scheduling knobs (see :func:`repro.runner.run_batch`):
        points per work-queue chunk (``None`` = auto) and the pool
        decision — ``"auto"`` falls back to sequential when a pool
        cannot win, ``"warm"`` forces it, ``"sequential"`` disables it.
    checkpoint_every / checkpoint_interval_s:
        Amortize checkpoint writes (see :func:`repro.runner.run_batch`).
    fault_schedule:
        Deterministic chaos testing: arm a
        :class:`~repro.faultkit.FaultSchedule` for this sweep (see
        :mod:`repro.faultkit`; ``None`` defers to the
        ``REPRO_FAULT_SCHEDULE`` environment variable).
    cache:
        Optional :class:`~repro.core.precompute.PrecomputeCache`; when
        given it is warmed on the first point's shared coarse WLD in
        the parent, so parallel workers start with the shared
        precomputation in hand.  Default: a fresh private cache.
    """
    # Imported here, not at module top: repro.reporting.persist imports
    # this module, and the runner package imports persist.
    from ..core.precompute import PrecomputeCache
    from ..reporting.persist import rank_result_from_dict, rank_result_to_dict
    from ..runner.executor import PointSpec, run_batch

    specs = [
        PointSpec(key=f"{name}[{i}]={value!r}", value=value, label=f"{name}={value:g}")
        for i, value in enumerate(values)
    ]

    if cache is None:
        cache = PrecomputeCache()
    if values:
        # Warm the shared coarse WLD before any worker is forked; the
        # evaluator (cache included) is pickled once per worker.
        cache.warm(
            make_problem(values[0]), bunch_size=bunch_size, max_groups=max_groups
        )
    evaluate = _SweepEvaluate(
        make_problem=make_problem,
        solver=solver,
        bunch_size=bunch_size,
        max_groups=max_groups,
        repeater_units=repeater_units,
        cache=cache,
        backend=backend,
    )

    outcome = run_batch(
        f"sweep:{name}",
        specs,
        evaluate,
        policy=policy,
        keep_going=keep_going,
        checkpoint_path=checkpoint,
        resume=resume,
        serialize=rank_result_to_dict,
        deserialize=rank_result_from_dict,
        jobs=jobs,
        chunk_size=chunk_size,
        pool_mode=pool_mode,
        checkpoint_every=checkpoint_every,
        checkpoint_interval_s=checkpoint_interval_s,
        fault_schedule=fault_schedule,
    )

    points: List[SweepPoint] = []
    for spec in specs:
        if spec.key not in outcome.results:
            continue  # failed point: the gap is recorded in failures
        value = spec.value
        paper_value = paper.get(value) if paper else None
        points.append(
            SweepPoint(
                value=value,
                result=outcome.results[spec.key],
                paper_normalized=paper_value,
            )
        )
    return SweepResult(
        name=name,
        points=tuple(points),
        failures=outcome.failures,
        journal=outcome.journal,
    )


def _spec_from_problem(problem: RankProblem, **overrides) -> ArchitectureSpec:
    """Rebuild the problem's architecture spec with overridden knobs.

    The architecture object does not retain its spec, so sweeps
    reconstruct it from the problem's die node and tier counts.
    """
    counts = problem.arch.tier_counts()
    base = ArchitectureSpec(
        node=problem.die.node,
        local_pairs=counts.get("local", 0),
        semi_global_pairs=counts.get("semi_global", 0),
        global_pairs=counts.get("global", 0),
    )
    return replace(base, **overrides)


# The point -> problem builders are dataclasses (not closures) so a
# parallel sweep can pickle them to worker processes.


@dataclass(frozen=True)
class _PermittivityMake:
    baseline: RankProblem
    miller_factor: float

    def __call__(self, k: float) -> RankProblem:
        spec = _spec_from_problem(
            self.baseline, permittivity=k, miller_factor=self.miller_factor
        )
        return self.baseline.with_arch(build_architecture(spec))


@dataclass(frozen=True)
class _MillerMake:
    baseline: RankProblem
    permittivity: float

    def __call__(self, m: float) -> RankProblem:
        spec = _spec_from_problem(
            self.baseline, permittivity=self.permittivity, miller_factor=m
        )
        return self.baseline.with_arch(build_architecture(spec))


@dataclass(frozen=True)
class _ClockMake:
    baseline: RankProblem

    def __call__(self, frequency: float) -> RankProblem:
        return self.baseline.with_clock_frequency(frequency)


@dataclass(frozen=True)
class _RepeaterFractionMake:
    baseline: RankProblem

    def __call__(self, fraction: float) -> RankProblem:
        return self.baseline.with_repeater_fraction(fraction)


@dataclass(frozen=True)
class _TierScaleMake:
    baseline: RankProblem
    tier: str

    def __call__(self, factor: float) -> RankProblem:
        spec = _spec_from_problem(self.baseline).with_tier_scaling(
            self.tier, factor
        )
        return self.baseline.with_arch(build_architecture(spec))


def sweep_permittivity(
    baseline: RankProblem,
    values: Optional[Sequence[float]] = None,
    miller_factor: float = 2.0,
    **kwargs,
) -> SweepResult:
    """Table 4 column K: rank vs ILD permittivity (experiment E1)."""
    if values is None:
        values = [k for k, _ in PAPER_TABLE4_K]
    make = _PermittivityMake(baseline=baseline, miller_factor=miller_factor)
    return run_sweep("K", values, make, paper=dict(PAPER_TABLE4_K), **kwargs)


def sweep_miller(
    baseline: RankProblem,
    values: Optional[Sequence[float]] = None,
    permittivity: float = 3.9,
    **kwargs,
) -> SweepResult:
    """Table 4 column M: rank vs Miller coupling factor (experiment E2)."""
    if values is None:
        values = [m for m, _ in PAPER_TABLE4_M]
    make = _MillerMake(baseline=baseline, permittivity=permittivity)
    return run_sweep("M", values, make, paper=dict(PAPER_TABLE4_M), **kwargs)


def sweep_clock(
    baseline: RankProblem,
    values: Optional[Sequence[float]] = None,
    **kwargs,
) -> SweepResult:
    """Table 4 column C: rank vs target clock frequency (experiment E3)."""
    if values is None:
        values = [c for c, _ in PAPER_TABLE4_C]
    return run_sweep(
        "C", values, _ClockMake(baseline), paper=dict(PAPER_TABLE4_C), **kwargs
    )


def sweep_repeater_fraction(
    baseline: RankProblem,
    values: Optional[Sequence[float]] = None,
    **kwargs,
) -> SweepResult:
    """Table 4 column R: rank vs repeater area fraction (experiment E4)."""
    if values is None:
        values = [r for r, _ in PAPER_TABLE4_R]
    return run_sweep(
        "R",
        values,
        _RepeaterFractionMake(baseline),
        paper=dict(PAPER_TABLE4_R),
        **kwargs,
    )


def sweep_tier_geometry(
    baseline: RankProblem,
    tier: str = "global",
    values: Sequence[float] = (0.75, 1.0, 1.25, 1.5, 2.0),
    **kwargs,
) -> SweepResult:
    """Geometric-parameter sweep: rank vs uniform tier scaling (E17).

    The paper's introduction promises quantified comparison of
    "geometric parameters as well as process and material technology
    advances"; this sweep scales one tier's width/spacing/thickness/ILD
    uniformly and reports the rank response.  Scaling a tier up cuts
    its RC (quadratically in resistance) but halves its track count per
    doubling — the classic fat-wire trade-off.
    """
    make = _TierScaleMake(baseline=baseline, tier=tier)
    return run_sweep(f"geometry:{tier}", values, make, **kwargs)
