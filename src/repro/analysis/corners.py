"""Multi-corner rank: the metric under process/operating variation.

A production sign-off never trusts one corner.  This module evaluates
the rank across a set of *corners* — joint perturbations of device
speed, ILD permittivity, Miller factor and clock — and reports the
worst case, which is the honest single number for an architecture
("the rank you can sign off").

Corners compose with everything else: each corner is just a derived
:class:`~repro.core.problem.RankProblem`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..arch.builder import ArchitectureSpec, build_architecture
from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError

if TYPE_CHECKING:  # runner imported lazily at call time (cycle via persist)
    from pathlib import Path

    from ..faultkit.schedule import FaultSchedule

    from ..core.precompute import PrecomputeCache
    from ..runner.journal import PointFailure, RunJournal
    from ..runner.policy import RetryPolicy


@dataclass(frozen=True)
class Corner:
    """One evaluation corner.

    Attributes
    ----------
    name:
        Display name, e.g. ``"slow-hot"``.
    device_speed:
        Multiplier on the minimum inverter's output resistance (> 1 is
        a slower device).
    permittivity_scale:
        Multiplier on ILD relative permittivity (clamped at >= 1.0
        absolute).
    miller_factor:
        Overrides the Miller coupling factor (None keeps the nominal).
    clock_scale:
        Multiplier on the target clock (> 1 is a harder target).
    """

    name: str
    device_speed: float = 1.0
    permittivity_scale: float = 1.0
    miller_factor: Optional[float] = None
    clock_scale: float = 1.0

    def __post_init__(self) -> None:
        for attr in ("device_speed", "permittivity_scale", "clock_scale"):
            if getattr(self, attr) <= 0:
                raise RankComputationError(
                    f"Corner.{attr} must be positive, got {getattr(self, attr)!r}"
                )
        if self.miller_factor is not None and self.miller_factor < 0:
            raise RankComputationError(
                f"Corner.miller_factor must be non-negative, "
                f"got {self.miller_factor!r}"
            )


#: The conventional four-corner set plus nominal.
STANDARD_CORNERS: Tuple[Corner, ...] = (
    Corner(name="nominal"),
    Corner(name="slow-device", device_speed=1.25),
    Corner(name="fast-device", device_speed=0.8),
    Corner(name="worst-coupling", miller_factor=2.0, permittivity_scale=1.05),
    Corner(name="fast-clock", clock_scale=1.1),
)


def apply_corner(problem: RankProblem, corner: Corner) -> RankProblem:
    """Materialize the problem variant a corner describes."""
    node = problem.die.node
    device = dataclasses.replace(
        node.device,
        output_resistance=node.device.output_resistance * corner.device_speed,
    )
    counts = problem.arch.tier_counts()
    nominal_k = node.dielectric.relative_permittivity
    spec = ArchitectureSpec(
        node=node.with_device(device),
        local_pairs=counts.get("local", 0),
        semi_global_pairs=counts.get("semi_global", 0),
        global_pairs=counts.get("global", 0),
        permittivity=max(1.0, nominal_k * corner.permittivity_scale),
        miller_factor=(
            corner.miller_factor if corner.miller_factor is not None else 2.0
        ),
    )
    die = dataclasses.replace(problem.die, node=spec.node)
    return dataclasses.replace(
        problem,
        arch=build_architecture(spec),
        die=die,
        clock_frequency=problem.clock_frequency * corner.clock_scale,
    )


@dataclass(frozen=True)
class CornerReport:
    """Rank across a corner set.

    Attributes
    ----------
    results:
        ``(corner, result)`` in evaluation order; corners that failed
        under a ``keep_going`` run are absent here and listed in
        ``failures``.
    failures:
        Corners whose evaluation exhausted its retry budget.
    journal:
        Run journal of the batch execution (excluded from equality so
        a resumed report compares equal to an uninterrupted one).
    """

    results: Tuple[Tuple[Corner, RankResult], ...]
    failures: Tuple["PointFailure", ...] = ()
    journal: Optional["RunJournal"] = field(default=None, compare=False)

    @property
    def is_complete(self) -> bool:
        """True iff every requested corner produced a result."""
        return not self.failures

    @property
    def worst(self) -> Tuple[Corner, RankResult]:
        """The binding corner (lowest rank; ties keep first)."""
        if not self.results:
            raise RankComputationError(
                "corner report has no successful corners; "
                "see report.failures for what went wrong"
            )
        return min(self.results, key=lambda item: item[1].rank)

    @property
    def nominal(self) -> Tuple[Corner, RankResult]:
        """The first corner named ``nominal`` (or the first corner)."""
        for corner, result in self.results:
            if corner.name == "nominal":
                return corner, result
        if not self.results:
            raise RankComputationError(
                "corner report has no successful corners; "
                "see report.failures for what went wrong"
            )
        return self.results[0]

    @property
    def guardband(self) -> float:
        """Nominal minus worst normalized rank (the sign-off margin)."""
        return self.nominal[1].normalized - self.worst[1].normalized


@dataclass
class _CornerEvaluate:
    """Picklable corner evaluator (see :class:`.sweep._SweepEvaluate`)."""

    problem: RankProblem
    bunch_size: Optional[int]
    repeater_units: int
    cache: Optional["PrecomputeCache"] = None
    backend: Optional[str] = None

    def __call__(self, point, attempt) -> RankResult:
        from ..runner.policy import scaled_bunch_size

        variant = apply_corner(self.problem, point.value)
        return compute_rank(
            variant,
            bunch_size=scaled_bunch_size(
                self.bunch_size, dict(attempt.degradation)
            ),
            repeater_units=self.repeater_units,
            deadline=attempt.deadline,
            cache=self.cache,
            backend=self.backend,
        )


def rank_across_corners(
    problem: RankProblem,
    corners: Sequence[Corner] = STANDARD_CORNERS,
    bunch_size: Optional[int] = None,
    repeater_units: int = 512,
    policy: Optional["RetryPolicy"] = None,
    keep_going: bool = False,
    checkpoint: Optional[Union[str, "Path"]] = None,
    resume: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    pool_mode: str = "auto",
    checkpoint_every: int = 1,
    checkpoint_interval_s: Optional[float] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    cache: Optional["PrecomputeCache"] = None,
    backend: Optional[str] = None,
) -> CornerReport:
    """Evaluate the rank at every corner through the fault-tolerant harness.

    Returns a :class:`CornerReport`; ``report.worst`` is the sign-off
    number.  With ``keep_going=True`` a failing corner is recorded in
    ``report.failures`` instead of aborting the sign-off; ``checkpoint``
    / ``resume`` journal completed corners across interruptions, and
    ``jobs > 1`` evaluates corners in parallel with identical persisted
    output (see :func:`repro.runner.run_batch`).  ``cache`` shares the
    coarse-WLD/tables precomputation across corners and retries
    (corners keep the WLD fixed, so it is warmed once in the parent).
    """
    if not corners:
        raise RankComputationError("need at least one corner")
    names = [corner.name for corner in corners]
    if len(set(names)) != len(names):
        raise RankComputationError(
            f"corner names must be unique (they key the checkpoint), got {names}"
        )

    # Imported here, not at module top: the runner package reaches this
    # module through repro.reporting.persist.
    from ..core.precompute import PrecomputeCache
    from ..reporting.persist import rank_result_from_dict, rank_result_to_dict
    from ..runner.executor import PointSpec, run_batch

    specs = [
        PointSpec(key=corner.name, value=corner, label=corner.name)
        for corner in corners
    ]

    if cache is None:
        cache = PrecomputeCache()
    cache.warm(problem, bunch_size=bunch_size)
    evaluate = _CornerEvaluate(
        problem=problem,
        bunch_size=bunch_size,
        repeater_units=repeater_units,
        cache=cache,
        backend=backend,
    )

    outcome = run_batch(
        "corners",
        specs,
        evaluate,
        policy=policy,
        keep_going=keep_going,
        checkpoint_path=checkpoint,
        resume=resume,
        serialize=rank_result_to_dict,
        deserialize=rank_result_from_dict,
        jobs=jobs,
        chunk_size=chunk_size,
        pool_mode=pool_mode,
        checkpoint_every=checkpoint_every,
        checkpoint_interval_s=checkpoint_interval_s,
        fault_schedule=fault_schedule,
    )
    results: List[Tuple[Corner, RankResult]] = [
        (corner, outcome.results[corner.name])
        for corner in corners
        if corner.name in outcome.results
    ]
    return CornerReport(
        results=tuple(results),
        failures=outcome.failures,
        journal=outcome.journal,
    )
