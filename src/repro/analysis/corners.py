"""Multi-corner rank: the metric under process/operating variation.

A production sign-off never trusts one corner.  This module evaluates
the rank across a set of *corners* — joint perturbations of device
speed, ILD permittivity, Miller factor and clock — and reports the
worst case, which is the honest single number for an architecture
("the rank you can sign off").

Corners compose with everything else: each corner is just a derived
:class:`~repro.core.problem.RankProblem`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.builder import ArchitectureSpec, build_architecture
from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError


@dataclass(frozen=True)
class Corner:
    """One evaluation corner.

    Attributes
    ----------
    name:
        Display name, e.g. ``"slow-hot"``.
    device_speed:
        Multiplier on the minimum inverter's output resistance (> 1 is
        a slower device).
    permittivity_scale:
        Multiplier on ILD relative permittivity (clamped at >= 1.0
        absolute).
    miller_factor:
        Overrides the Miller coupling factor (None keeps the nominal).
    clock_scale:
        Multiplier on the target clock (> 1 is a harder target).
    """

    name: str
    device_speed: float = 1.0
    permittivity_scale: float = 1.0
    miller_factor: Optional[float] = None
    clock_scale: float = 1.0

    def __post_init__(self) -> None:
        for attr in ("device_speed", "permittivity_scale", "clock_scale"):
            if getattr(self, attr) <= 0:
                raise RankComputationError(
                    f"Corner.{attr} must be positive, got {getattr(self, attr)!r}"
                )
        if self.miller_factor is not None and self.miller_factor < 0:
            raise RankComputationError(
                f"Corner.miller_factor must be non-negative, "
                f"got {self.miller_factor!r}"
            )


#: The conventional four-corner set plus nominal.
STANDARD_CORNERS: Tuple[Corner, ...] = (
    Corner(name="nominal"),
    Corner(name="slow-device", device_speed=1.25),
    Corner(name="fast-device", device_speed=0.8),
    Corner(name="worst-coupling", miller_factor=2.0, permittivity_scale=1.05),
    Corner(name="fast-clock", clock_scale=1.1),
)


def apply_corner(problem: RankProblem, corner: Corner) -> RankProblem:
    """Materialize the problem variant a corner describes."""
    node = problem.die.node
    device = dataclasses.replace(
        node.device,
        output_resistance=node.device.output_resistance * corner.device_speed,
    )
    counts = problem.arch.tier_counts()
    nominal_k = node.dielectric.relative_permittivity
    spec = ArchitectureSpec(
        node=node.with_device(device),
        local_pairs=counts.get("local", 0),
        semi_global_pairs=counts.get("semi_global", 0),
        global_pairs=counts.get("global", 0),
        permittivity=max(1.0, nominal_k * corner.permittivity_scale),
        miller_factor=(
            corner.miller_factor if corner.miller_factor is not None else 2.0
        ),
    )
    die = dataclasses.replace(problem.die, node=spec.node)
    return dataclasses.replace(
        problem,
        arch=build_architecture(spec),
        die=die,
        clock_frequency=problem.clock_frequency * corner.clock_scale,
    )


@dataclass(frozen=True)
class CornerReport:
    """Rank across a corner set.

    Attributes
    ----------
    results:
        ``(corner, result)`` in evaluation order.
    """

    results: Tuple[Tuple[Corner, RankResult], ...]

    @property
    def worst(self) -> Tuple[Corner, RankResult]:
        """The binding corner (lowest rank; ties keep first)."""
        return min(self.results, key=lambda item: item[1].rank)

    @property
    def nominal(self) -> Tuple[Corner, RankResult]:
        """The first corner named ``nominal`` (or the first corner)."""
        for corner, result in self.results:
            if corner.name == "nominal":
                return corner, result
        return self.results[0]

    @property
    def guardband(self) -> float:
        """Nominal minus worst normalized rank (the sign-off margin)."""
        return self.nominal[1].normalized - self.worst[1].normalized


def rank_across_corners(
    problem: RankProblem,
    corners: Sequence[Corner] = STANDARD_CORNERS,
    bunch_size: Optional[int] = None,
    repeater_units: int = 512,
) -> CornerReport:
    """Evaluate the rank at every corner.

    Returns a :class:`CornerReport`; ``report.worst`` is the sign-off
    number.
    """
    if not corners:
        raise RankComputationError("need at least one corner")
    results: List[Tuple[Corner, RankResult]] = []
    for corner in corners:
        variant = apply_corner(problem, corner)
        results.append(
            (
                corner,
                compute_rank(
                    variant,
                    bunch_size=bunch_size,
                    repeater_units=repeater_units,
                ),
            )
        )
    return CornerReport(results=tuple(results))
