"""Knob-equivalence analysis: the paper's headline comparison.

The abstract's claim — "42% reduction in Miller coupling factor achieves
the same rank improvement as a 38% reduction in inter-layer dielectric
permittivity for a 1M gate design in the 130nm technology" — is an
*equivalence* statement between two sweeps: for a given rank level, how
much must each knob move (relative to its baseline) to reach it?

:func:`equivalent_reduction` inverts a sweep by linear interpolation;
:func:`miller_permittivity_equivalence` pairs the K and M sweeps into a
table of (rank level, %K reduction, %M reduction) rows, the quantity
EXPERIMENTS.md compares against the paper's 38%/42% datum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import RankComputationError
from .sweep import SweepResult


def _interpolate_value_at_rank(
    values: List[float], ranks: List[float], rank_level: float
) -> Optional[float]:
    """Knob value reaching ``rank_level``, by piecewise-linear inversion.

    Assumes ranks are non-decreasing along the sweep (both the K and M
    sweeps go from the baseline up as the knob decreases).  Returns
    ``None`` when the level is outside the swept range.
    """
    if len(values) != len(ranks) or len(values) < 2:
        raise RankComputationError("need at least two sweep points to invert")
    for (v0, r0), (v1, r1) in zip(zip(values, ranks), zip(values[1:], ranks[1:])):
        low, high = min(r0, r1), max(r0, r1)
        if low <= rank_level <= high:
            if r1 == r0:
                return v1
            t = (rank_level - r0) / (r1 - r0)
            return v0 + t * (v1 - v0)
    return None


def equivalent_reduction(sweep: SweepResult, rank_level: float) -> Optional[float]:
    """Relative knob reduction (vs the first sweep point) reaching a rank.

    Returns e.g. ``0.38`` meaning "a 38% reduction of this knob from its
    baseline value reaches ``rank_level``", or ``None`` when the level
    is out of range.
    """
    values = sweep.values()
    ranks = sweep.normalized_ranks()
    value = _interpolate_value_at_rank(values, ranks, rank_level)
    if value is None:
        return None
    baseline = values[0]
    if baseline == 0:
        raise RankComputationError(
            f"sweep {sweep.name!r}: zero baseline knob value"
        )
    return (baseline - value) / baseline


@dataclass(frozen=True)
class EquivalencePoint:
    """One rank level with the knob reductions that reach it.

    Attributes
    ----------
    rank_level:
        Normalized rank both knobs are asked to reach.
    reduction_a, reduction_b:
        Fractional reductions of the two knobs (None = out of range).
    """

    rank_level: float
    reduction_a: Optional[float]
    reduction_b: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        """``reduction_b / reduction_a`` where both are defined."""
        if not self.reduction_a or self.reduction_b is None:
            return None
        return self.reduction_b / self.reduction_a


def miller_permittivity_equivalence(
    k_sweep: SweepResult,
    m_sweep: SweepResult,
    num_levels: int = 8,
) -> List[EquivalencePoint]:
    """Pair the K and M sweeps into equivalent-reduction rows (E5).

    Rank levels are spaced between the shared baseline and the smaller
    of the two sweep maxima, so every level is reachable by both knobs.
    Each row answers: to lift rank to this level, what %K reduction and
    what %M reduction are needed?  The paper's datum is (~0.50 level,
    38% K, 42.5% M) — a ratio of ~1.1.
    """
    if num_levels < 1:
        raise RankComputationError(f"num_levels must be positive, got {num_levels!r}")
    base = k_sweep.normalized_ranks()[0]
    top = min(max(k_sweep.normalized_ranks()), max(m_sweep.normalized_ranks()))
    if top <= base:
        raise RankComputationError(
            "sweeps do not improve over the baseline; equivalence undefined"
        )
    points: List[EquivalencePoint] = []
    for index in range(1, num_levels + 1):
        level = base + (top - base) * index / num_levels
        points.append(
            EquivalencePoint(
                rank_level=level,
                reduction_a=equivalent_reduction(k_sweep, level),
                reduction_b=equivalent_reduction(m_sweep, level),
            )
        )
    return points
