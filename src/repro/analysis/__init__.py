"""Analysis harness: the paper's performance studies (Section 5).

* :mod:`repro.analysis.sweep` — the four Table 4 sweeps (ILD
  permittivity K, Miller factor M, clock frequency C, repeater
  fraction R) and a generic sweep engine,
* :mod:`repro.analysis.sensitivity` — equivalence analysis between
  knobs (the "42% Miller ~= 38% permittivity" headline),
* :mod:`repro.analysis.compare` — cross-node / cross-design baselines,
* :mod:`repro.analysis.coarsening` — bunching accuracy/runtime study
  (Section 5.1).
"""

from .coarsening import BinningPoint, CoarseningPoint, binning_study, coarsening_study
from .corners import Corner, CornerReport, STANDARD_CORNERS, apply_corner, rank_across_corners
from .reconcile import ReconciliationResult, ReconciliationStep, reconcile_repeater_area
from .roadmap import RoadmapPoint, materials_shortfall, roadmap_study
from .slack import GroupSlack, SlackSummary, slack_profile, summarize_slack
from .compare import NodeBaseline, compare_nodes
from .sensitivity import (
    EquivalencePoint,
    equivalent_reduction,
    miller_permittivity_equivalence,
)
from .sweep import (
    SweepPoint,
    SweepResult,
    sweep_clock,
    sweep_miller,
    sweep_permittivity,
    sweep_repeater_fraction,
    sweep_tier_geometry,
    PAPER_TABLE4_K,
    PAPER_TABLE4_M,
    PAPER_TABLE4_C,
    PAPER_TABLE4_R,
)

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_permittivity",
    "sweep_miller",
    "sweep_clock",
    "sweep_repeater_fraction",
    "sweep_tier_geometry",
    "PAPER_TABLE4_K",
    "PAPER_TABLE4_M",
    "PAPER_TABLE4_C",
    "PAPER_TABLE4_R",
    "EquivalencePoint",
    "equivalent_reduction",
    "miller_permittivity_equivalence",
    "NodeBaseline",
    "compare_nodes",
    "CoarseningPoint",
    "coarsening_study",
    "BinningPoint",
    "binning_study",
    "Corner",
    "CornerReport",
    "STANDARD_CORNERS",
    "apply_corner",
    "rank_across_corners",
    "ReconciliationResult",
    "ReconciliationStep",
    "reconcile_repeater_area",
    "RoadmapPoint",
    "roadmap_study",
    "materials_shortfall",
    "GroupSlack",
    "SlackSummary",
    "slack_profile",
    "summarize_slack",
]
