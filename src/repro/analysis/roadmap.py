"""Scaling-roadmap study: the paper's closing claim, quantified.

Section 6: "it is not possible to enable future MPU-class designs by
material improvements alone."  This module tests that statement inside
the model: take a design that doubles in gate count per generation and
compare two roadmaps —

* **materials-only**: stay on the starting node and spend the material
  headroom (low-k ILD, full shielding) generation after generation;
* **full scaling**: move to the next technology node each generation
  at baseline materials.

If the paper's claim holds, the materials-only rank trajectory must
fall behind (and eventually collapse), while node scaling sustains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.rank import RankResult, compute_rank
from ..core.scenarios import baseline_problem
from ..errors import RankComputationError

#: Default generation path: (node, gate-count multiplier vs start).
DEFAULT_GENERATIONS: Tuple[Tuple[str, int], ...] = (
    ("180nm", 1),
    ("130nm", 2),
    ("90nm", 4),
)

#: Material headroom assumed reachable without changing the node.
MATERIALS_BEST = dict(permittivity=2.8, miller_factor=1.0)


@dataclass(frozen=True)
class RoadmapPoint:
    """One generation of one roadmap.

    Attributes
    ----------
    generation:
        0-based generation index.
    node_name:
        Node the design is built on at this generation.
    gate_count:
        Design size at this generation.
    materials:
        ``"baseline"`` or ``"best"`` (low-k + shielded).
    result:
        Rank result.
    """

    generation: int
    node_name: str
    gate_count: int
    materials: str
    result: RankResult


def roadmap_study(
    base_gate_count: int,
    generations: Sequence[Tuple[str, int]] = DEFAULT_GENERATIONS,
    clock_frequency: float = 500e6,
    bunch_size: Optional[int] = 10_000,
    repeater_units: int = 512,
) -> Tuple[List[RoadmapPoint], List[RoadmapPoint]]:
    """Run the materials-only and full-scaling roadmaps.

    Returns
    -------
    (materials_only, full_scaling)
        Two lists of :class:`RoadmapPoint`, one per generation.  The
        materials-only roadmap stays on ``generations[0]``'s node with
        best-case materials; the full-scaling roadmap follows the node
        sequence at baseline materials.
    """
    if not generations:
        raise RankComputationError("roadmap needs at least one generation")
    if base_gate_count < 4:
        raise RankComputationError(
            f"base gate count too small: {base_gate_count!r}"
        )

    start_node = generations[0][0]
    materials_only: List[RoadmapPoint] = []
    full_scaling: List[RoadmapPoint] = []

    for index, (node_name, multiplier) in enumerate(generations):
        gates = base_gate_count * multiplier

        frozen = baseline_problem(
            start_node,
            gates,
            clock_frequency=clock_frequency,
            **MATERIALS_BEST,
        )
        materials_only.append(
            RoadmapPoint(
                generation=index,
                node_name=start_node,
                gate_count=gates,
                materials="best",
                result=compute_rank(
                    frozen, bunch_size=bunch_size, repeater_units=repeater_units
                ),
            )
        )

        scaled = baseline_problem(
            node_name, gates, clock_frequency=clock_frequency
        )
        full_scaling.append(
            RoadmapPoint(
                generation=index,
                node_name=node_name,
                gate_count=gates,
                materials="baseline",
                result=compute_rank(
                    scaled, bunch_size=bunch_size, repeater_units=repeater_units
                ),
            )
        )

    return materials_only, full_scaling


def materials_shortfall(
    materials_only: Sequence[RoadmapPoint],
    full_scaling: Sequence[RoadmapPoint],
) -> float:
    """Final-generation rank gap: scaling minus materials-only.

    Positive means node scaling ends ahead of the materials-only path —
    the quantified form of the paper's closing claim.
    """
    if not materials_only or not full_scaling:
        raise RankComputationError("empty roadmap")
    return (
        full_scaling[-1].result.normalized
        - materials_only[-1].result.normalized
    )
