"""Coarsening accuracy / runtime study (paper Section 5.1, experiment E8).

The paper reduces instance size by *bunching* the WLD (assigning wires
in bunches of up to 10000) and bounds the resulting rank error by the
maximum bunch size.  :func:`coarsening_study` measures that trade-off
directly: rank and runtime as a function of bunch size, each point
carrying its a-priori error bound, so the claimed bound can be checked
against the observed deviation from the finest run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError


@dataclass(frozen=True)
class CoarseningPoint:
    """Rank at one bunch size.

    Attributes
    ----------
    bunch_size:
        Maximum wires per coarse group (None = no bunching, i.e. the
        natural per-length groups of the WLD).
    result:
        Rank result at this coarsening.
    error_bound:
        A-priori rank error bound (max bunch count of the coarse WLD).
    runtime_seconds:
        Solver runtime at this coarsening.
    """

    bunch_size: Optional[int]
    result: RankResult
    error_bound: int
    runtime_seconds: float


def coarsening_study(
    problem: RankProblem,
    bunch_sizes: Sequence[Optional[int]] = (50_000, 20_000, 10_000, 5_000, 2_000),
    solver: str = "dp",
    repeater_units: int = 512,
) -> List[CoarseningPoint]:
    """Rank vs bunch size, with error bounds and runtimes.

    Points are returned in the order given; callers typically sweep from
    coarse to fine and verify every pair of points differs by no more
    than the sum of their error bounds (the paper's Section 5.1 claim).
    """
    if not bunch_sizes:
        raise RankComputationError("coarsening study needs at least one bunch size")
    points: List[CoarseningPoint] = []
    for bunch_size in bunch_sizes:
        result = compute_rank(
            problem,
            solver=solver,
            bunch_size=bunch_size,
            repeater_units=repeater_units,
        )
        points.append(
            CoarseningPoint(
                bunch_size=bunch_size,
                result=result,
                error_bound=result.error_bound,
                runtime_seconds=result.stats.runtime_seconds,
            )
        )
    return points


def max_pairwise_deviation(points: Sequence[CoarseningPoint]) -> int:
    """Largest absolute rank difference between any two study points."""
    ranks = [p.result.rank for p in points]
    return max(ranks) - min(ranks) if ranks else 0


@dataclass(frozen=True)
class BinningPoint:
    """Rank at one binning level (paper footnote 7).

    Attributes
    ----------
    max_groups:
        Cap on distinct coarse lengths (None = no binning).
    groups:
        Distinct lengths actually used after binning + bunching.
    result:
        Rank result at this coarsening.
    runtime_seconds:
        Solver runtime.
    """

    max_groups: Optional[int]
    groups: int
    result: RankResult
    runtime_seconds: float


def binning_study(
    problem: RankProblem,
    max_groups_values: Sequence[Optional[int]] = (None, 400, 200, 100, 50),
    bunch_size: Optional[int] = 10_000,
    solver: str = "dp",
    repeater_units: int = 512,
) -> List[BinningPoint]:
    """Rank vs binning aggressiveness (the footnote-7 reduction).

    Binning replaces nearby lengths by their count-weighted mean before
    bunching.  The paper notes it is orthogonal to bunching and did not
    need it; this study quantifies what it would have cost: the rank
    drift as the distinct-length count shrinks.
    """
    if not max_groups_values:
        raise RankComputationError("binning study needs at least one level")
    points: List[BinningPoint] = []
    for max_groups in max_groups_values:
        result = compute_rank(
            problem,
            solver=solver,
            bunch_size=bunch_size,
            max_groups=max_groups,
            repeater_units=repeater_units,
        )
        coarse, _ = problem.coarsened_wld(
            bunch_size=bunch_size, max_groups=max_groups
        )
        points.append(
            BinningPoint(
                max_groups=max_groups,
                groups=coarse.num_groups,
                result=result,
                runtime_seconds=result.stats.runtime_seconds,
            )
        )
    return points
