"""Repeater-area reconciliation (the paper's footnote 3 extension).

Footnote 3: "In the current version of our implementation, we do not
reconcile implied driver and receiver sizing with total gate area
budget. However, the DP algorithm can be extended to address this."

The unreconciled model reserves ``A_R = R * A_d`` of silicon whether or
not the winning assignment spends it, inflating the die (Eq. (6)) and
with it every wire length.  This module closes the loop: solve, read
the *actually consumed* repeater area off the witness, re-provision the
die with exactly that area (plus the requested slack), and iterate to a
fixed point — the minimal self-consistent die for the achieved rank.

Shrinking the die shortens every wire (same ratio to ``l_max``, smaller
absolute delay), so the reconciled rank never falls below the original
— asserted by ``tests/analysis/test_reconcile.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError


@dataclass(frozen=True)
class ReconciliationStep:
    """One iteration of the reconciliation loop.

    Attributes
    ----------
    repeater_fraction:
        Die fraction provisioned for repeaters this iteration.
    result:
        Rank result at this provisioning.
    used_area:
        Repeater silicon the witness actually consumed, square metres.
    provisioned_area:
        Budget the die reserved (``A_R``), square metres.
    """

    repeater_fraction: float
    result: RankResult
    used_area: float
    provisioned_area: float

    @property
    def utilized(self) -> float:
        """Fraction of the provisioned budget actually spent."""
        if self.provisioned_area == 0:
            return 0.0
        return self.used_area / self.provisioned_area


@dataclass(frozen=True)
class ReconciliationResult:
    """Outcome of the fixed-point iteration.

    Attributes
    ----------
    steps:
        Iterations in order; ``steps[0]`` is the unreconciled solve.
    converged:
        True iff successive provisioned fractions agreed within the
        tolerance before the iteration limit.
    """

    steps: Tuple[ReconciliationStep, ...]
    converged: bool

    @property
    def initial(self) -> ReconciliationStep:
        return self.steps[0]

    @property
    def final(self) -> ReconciliationStep:
        return self.steps[-1]

    @property
    def die_area_saved(self) -> float:
        """Budget area reclaimed by right-sizing, m^2 (can be 0)."""
        return self.initial.provisioned_area - self.final.provisioned_area


def _witness_used_area(tables, witness) -> float:
    """Exact repeater area consumed by a witness assignment."""
    used = 0.0
    for segment in witness:
        used += float(
            tables.cum_rep_area[segment.pair][segment.end_group]
            - tables.cum_rep_area[segment.pair][segment.start_group]
        )
    return used


def reconcile_repeater_area(
    problem: RankProblem,
    slack: float = 0.05,
    tolerance: float = 0.01,
    max_iterations: int = 8,
    bunch_size: Optional[int] = None,
    repeater_units: int = 512,
) -> ReconciliationResult:
    """Iterate die provisioning to the witness's actual repeater usage.

    Parameters
    ----------
    problem:
        The starting (unreconciled) problem; its ``die.repeater_fraction``
        seeds the iteration.
    slack:
        Relative headroom kept above the measured usage when
        re-provisioning (0.05 = 5%), so the budget never strangles the
        witness it was measured from.
    tolerance:
        Convergence threshold on the provisioned fraction.
    max_iterations:
        Iteration cap; the result reports ``converged`` honestly.
    """
    if slack < 0:
        raise RankComputationError(f"slack must be non-negative, got {slack!r}")
    if tolerance <= 0:
        raise RankComputationError(
            f"tolerance must be positive, got {tolerance!r}"
        )
    if max_iterations < 1:
        raise RankComputationError(
            f"max_iterations must be positive, got {max_iterations!r}"
        )

    steps: List[ReconciliationStep] = []
    current = problem
    converged = False
    for _ in range(max_iterations):
        result = compute_rank(
            current,
            bunch_size=bunch_size,
            repeater_units=repeater_units,
            collect_witness=True,
        )
        tables, _ = current.tables(bunch_size=bunch_size)
        used = (
            _witness_used_area(tables, result.witness) if result.witness else 0.0
        )
        steps.append(
            ReconciliationStep(
                repeater_fraction=current.die.repeater_fraction,
                result=result,
                used_area=used,
                provisioned_area=current.die.repeater_area,
            )
        )
        target_area = used * (1.0 + slack)
        gate_area = current.die.gate_area
        next_fraction = (
            target_area / (target_area + gate_area) if target_area > 0 else 0.0
        )
        if abs(next_fraction - current.die.repeater_fraction) <= tolerance:
            converged = True
            break
        current = current.with_repeater_fraction(next_fraction)

    return ReconciliationResult(steps=tuple(steps), converged=converged)
