"""Timing-slack profiles of witnessed rank solutions.

A rank is a single number; designers then ask *where* the margin is.
This module recomputes, for every wire group of the certified prefix,
the achieved Eq. (3) delay on its assigned pair and the slack against
its target — exposing the two structural features of the metric:

* slack shrinks toward the short-wire end (the intrinsic-delay wall the
  C-column plateaus come from), and
* the boundary group's slack shows whether the rank stopped on the wall
  (slack ~ 0 at the boundary) or on the budget (positive slack left,
  area exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..assign.tables import AssignmentTables
from ..core.rank import RankResult
from ..delay.ottenbrayton import wire_delay
from ..errors import RankComputationError


@dataclass(frozen=True)
class GroupSlack:
    """Timing of one certified wire group.

    Attributes
    ----------
    group:
        Rank-order group index.
    pair:
        Layer-pair the group is assigned to.
    length_pitches:
        Group length in gate pitches.
    wires:
        Wires in the group.
    stages:
        Budget-charged stage count per wire (0 = free pass).
    target:
        Target delay, seconds.
    achieved:
        Achieved Eq. (3) delay, seconds.
    """

    group: int
    pair: int
    length_pitches: float
    wires: int
    stages: int
    target: float
    achieved: float

    @property
    def slack(self) -> float:
        """Margin in seconds (non-negative for a valid witness)."""
        return self.target - self.achieved

    @property
    def relative_slack(self) -> float:
        """Slack as a fraction of the target."""
        return self.slack / self.target if self.target > 0 else 0.0


def slack_profile(
    tables: AssignmentTables, result: RankResult
) -> List[GroupSlack]:
    """Per-group timing of a witnessed solution, rank order."""
    if result.witness is None:
        raise RankComputationError(
            "slack profile needs a witness; run compute_rank with "
            "collect_witness=True"
        )
    device = tables.die.node.device
    profile: List[GroupSlack] = []
    for segment in result.witness:
        rc = tables.arch.pair(segment.pair).rc
        size = float(tables.repeater_size[segment.pair])
        for group in range(segment.start_group, segment.end_group):
            stages = int(tables.stages[segment.pair][group])
            length = float(tables.lengths_m[group])
            if stages < 0:
                raise RankComputationError(
                    f"witness covers group {group} which is infeasible on "
                    f"pair {segment.pair}"
                )
            if stages == 0:
                achieved = wire_delay(rc, device, 1.0, 1, length)
            else:
                achieved = wire_delay(rc, device, size, stages, length)
            profile.append(
                GroupSlack(
                    group=group,
                    pair=segment.pair,
                    length_pitches=float(tables.wld.lengths[group]),
                    wires=int(tables.counts[group]),
                    stages=stages,
                    target=float(tables.targets[group]),
                    achieved=achieved,
                )
            )
    return profile


@dataclass(frozen=True)
class SlackSummary:
    """Aggregate view of a slack profile.

    Attributes
    ----------
    min_slack:
        Smallest absolute margin over the prefix, seconds.
    critical_length:
        Length (pitches) of the group holding the minimum slack.
    boundary_relative_slack:
        Relative slack of the last (shortest) certified group — near 0
        means the rank stopped on the delay wall, clearly positive
        means the budget ran out first.
    median_relative_slack:
        Median relative slack across groups.
    """

    min_slack: float
    critical_length: float
    boundary_relative_slack: float
    median_relative_slack: float


def summarize_slack(profile: Sequence[GroupSlack]) -> SlackSummary:
    """Condense a profile into its headline numbers."""
    if not profile:
        raise RankComputationError("empty slack profile")
    critical = min(profile, key=lambda g: g.slack)
    relatives = np.array([g.relative_slack for g in profile])
    return SlackSummary(
        min_slack=critical.slack,
        critical_length=critical.length_pitches,
        boundary_relative_slack=profile[-1].relative_slack,
        median_relative_slack=float(np.median(relatives)),
    )
