"""Cross-node and cross-design baselines (experiment E7).

The paper ran baseline designs of 4M gates at 90 nm, 1M gates at 130 nm
and 1M gates at 180 nm (Section 5.2) but printed only the 130 nm study.
:func:`compare_nodes` evaluates the Table 2 baseline on each node /
design size so trends across technology generations can be inspected:
newer nodes at fixed gate count should achieve equal-or-better ranks
(faster devices, more layers), while scaling the design up at a fixed
node stresses the same architecture with a longer, fatter WLD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.rank import RankResult, compute_rank
from ..core.scenarios import baseline_problem

#: The paper's baseline (node, gate count) studies from Section 5.2.
PAPER_BASELINE_DESIGNS: Tuple[Tuple[str, int], ...] = (
    ("180nm", 1_000_000),
    ("130nm", 1_000_000),
    ("90nm", 4_000_000),
)


@dataclass(frozen=True)
class NodeBaseline:
    """Baseline rank of one (node, design size) point.

    Attributes
    ----------
    node_name:
        Technology node, e.g. ``"130nm"``.
    gate_count:
        Design size in gates.
    result:
        The rank result at Table 2 baseline parameters.
    """

    node_name: str
    gate_count: int
    result: RankResult

    @property
    def normalized(self) -> float:
        """Normalized rank at this baseline point."""
        return self.result.normalized


def compare_nodes(
    designs: Optional[Sequence[Tuple[str, int]]] = None,
    solver: str = "dp",
    bunch_size: Optional[int] = 10_000,
    repeater_units: int = 512,
    **baseline_overrides,
) -> List[NodeBaseline]:
    """Evaluate the Table 2 baseline across nodes and design sizes.

    Parameters
    ----------
    designs:
        ``(node_name, gate_count)`` points; defaults to the paper's
        three baseline designs.
    baseline_overrides:
        Extra keyword arguments forwarded to
        :func:`repro.core.scenarios.baseline_problem` (e.g. a different
        clock frequency for every point).
    """
    if designs is None:
        designs = PAPER_BASELINE_DESIGNS
    results: List[NodeBaseline] = []
    for node_name, gate_count in designs:
        problem = baseline_problem(node_name, gate_count, **baseline_overrides)
        result = compute_rank(
            problem,
            solver=solver,
            bunch_size=bunch_size,
            repeater_units=repeater_units,
        )
        results.append(
            NodeBaseline(node_name=node_name, gate_count=gate_count, result=result)
        )
    return results
