"""Dynamic switching power of the delay-meeting prefix.

First-order CMOS dynamic power: each transition charges the switched
capacitance, so a node toggling with activity ``a`` at clock ``f``
dissipates ``a * f * C * Vdd^2``.  For a wire of length ``l`` on
layer-pair ``j`` driven through ``eta`` size-``s`` stages the switched
capacitance is

    C = c_j * l  +  eta * s * (c_o + c_p)

(wire plus the stages' own input and parasitic capacitance).  Because
the effective ``c_j`` already includes the Miller-scaled coupling
share, the same knobs that buy rank (lower K, lower M) also buy power —
quantified by :func:`sweep_rank_power`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.dp import WitnessSegment
from ..core.problem import RankProblem
from ..core.rank import RankResult, compute_rank
from ..errors import RankComputationError
from ..rc.models import WireRC
from ..tech.device import DeviceParameters


@dataclass(frozen=True)
class PowerModel:
    """Switching-power assumptions.

    Attributes
    ----------
    activity_factor:
        Average transitions per node per cycle (0..1; the conventional
        random-logic value is ~0.1-0.2).
    supply_voltage:
        Override for the node's nominal supply; ``None`` reads it from
        the device parameters.
    """

    activity_factor: float = 0.15
    supply_voltage: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.activity_factor <= 1.0:
            raise RankComputationError(
                f"activity factor must be in (0, 1], got {self.activity_factor!r}"
            )
        if self.supply_voltage is not None and self.supply_voltage <= 0:
            raise RankComputationError(
                f"supply voltage must be positive, got {self.supply_voltage!r}"
            )

    def vdd(self, device: DeviceParameters) -> float:
        """Effective supply voltage for a device."""
        return (
            self.supply_voltage
            if self.supply_voltage is not None
            else device.supply_voltage
        )


def wire_switching_energy(
    rc: WireRC, length: float, vdd: float
) -> float:
    """Energy per transition of the bare wire capacitance (joules)."""
    if length < 0:
        raise RankComputationError(f"length must be non-negative, got {length!r}")
    if vdd <= 0:
        raise RankComputationError(f"vdd must be positive, got {vdd!r}")
    return rc.capacitance * length * vdd * vdd


def repeater_switching_energy(
    device: DeviceParameters, size: float, stages: int, vdd: float
) -> float:
    """Energy per transition of ``stages`` size-``size`` stages (joules)."""
    if stages < 0:
        raise RankComputationError(f"stages must be non-negative, got {stages!r}")
    if size <= 0:
        raise RankComputationError(f"size must be positive, got {size!r}")
    device_cap = size * (device.input_capacitance + device.parasitic_capacitance)
    return stages * device_cap * vdd * vdd


@dataclass(frozen=True)
class PowerBreakdown:
    """Switching power of a rank witness.

    Attributes
    ----------
    wire_power:
        Power switched in wire capacitance, watts.
    repeater_power:
        Power switched in repeater (and upsized driver) devices, watts.
    wires:
        Wires covered (the rank).
    """

    wire_power: float
    repeater_power: float
    wires: int

    @property
    def total(self) -> float:
        """Total prefix switching power, watts."""
        return self.wire_power + self.repeater_power

    def per_wire(self) -> float:
        """Average power per certified wire, watts."""
        return self.total / self.wires if self.wires else 0.0


def witness_power(
    tables,
    witness: Sequence[WitnessSegment],
    clock_frequency: float,
    model: Optional[PowerModel] = None,
) -> PowerBreakdown:
    """Switching power of the delay-meeting prefix of a rank solution.

    Parameters
    ----------
    tables:
        The :class:`~repro.assign.tables.AssignmentTables` the solution
        was computed on.
    witness:
        The DP witness (``compute_rank(..., collect_witness=True)``).
    clock_frequency:
        Clock the activity factor applies to, hertz.
    model:
        Power assumptions; defaults to ``PowerModel()``.
    """
    if clock_frequency <= 0:
        raise RankComputationError(
            f"clock frequency must be positive, got {clock_frequency!r}"
        )
    model = model or PowerModel()
    device = tables.die.node.device
    vdd = model.vdd(device)
    scale = model.activity_factor * clock_frequency

    wire_energy = 0.0
    device_energy = 0.0
    wires = 0
    for segment in witness:
        pair = segment.pair
        lengths = tables.lengths_m[segment.start_group: segment.end_group]
        counts = tables.counts[segment.start_group: segment.end_group]
        rc_cap = tables.arch.pair(pair).rc.capacitance
        wire_energy += float(np.dot(lengths, counts)) * rc_cap * vdd * vdd
        stages = tables.stages[pair][segment.start_group: segment.end_group]
        charged = np.where(stages > 0, stages, 0)
        device_cap = float(tables.repeater_size[pair]) * (
            device.input_capacitance + device.parasitic_capacitance
        )
        device_energy += float(np.dot(charged, counts)) * device_cap * vdd * vdd
        wires += int(counts.sum())

    return PowerBreakdown(
        wire_power=scale * wire_energy,
        repeater_power=scale * device_energy,
        wires=wires,
    )


def sweep_rank_power(
    problems: Sequence[Tuple[float, RankProblem]],
    model: Optional[PowerModel] = None,
    bunch_size: Optional[int] = None,
    repeater_units: int = 512,
) -> List[Tuple[float, RankResult, PowerBreakdown]]:
    """Rank and prefix power across a family of problems.

    ``problems`` is a list of ``(knob_value, problem)`` pairs (as built
    by the Table 4 sweep helpers); each is solved with a witness and
    priced.  Returns ``(knob_value, rank_result, power)`` rows, the raw
    material for rank-vs-power trade-off plots.
    """
    rows: List[Tuple[float, RankResult, PowerBreakdown]] = []
    for value, problem in problems:
        result = compute_rank(
            problem,
            bunch_size=bunch_size,
            repeater_units=repeater_units,
            collect_witness=True,
        )
        tables, _ = problem.tables(bunch_size=bunch_size)
        power = witness_power(
            tables,
            result.witness or (),
            clock_frequency=problem.clock_frequency,
            model=model,
        )
        rows.append((value, result, power))
    return rows
