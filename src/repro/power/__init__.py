"""Interconnect switching-power companion metric.

The rank metric answers "how many connections meet timing"; a BEOL
co-optimization (the paper's Section 6 conclusion) also needs to know
what the architecture *costs in power*.  This package estimates the
dynamic switching power of the delay-meeting prefix — the wires the
rank certifies — from the same tables and witness the rank solver
produces, so rank/power trade-off sweeps come for free.

* :mod:`repro.power.model` — per-wire and per-witness switching energy
  and power (``activity * f * C * V^2``), plus the rank-vs-power sweep
  helper.

Power never feeds back into rank computation: it is a reporting
companion, mirroring how the paper treats crosstalk through the Miller
factor only.
"""

from .model import (
    PowerModel,
    repeater_switching_energy,
    sweep_rank_power,
    wire_switching_energy,
    witness_power,
)

__all__ = [
    "PowerModel",
    "wire_switching_energy",
    "repeater_switching_energy",
    "witness_power",
    "sweep_rank_power",
]
