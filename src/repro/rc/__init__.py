"""Per-unit-length RC extraction and via area models.

The rank metric consumes interconnect electricals through exactly two
numbers per layer-pair — resistance per unit length ``r_j`` and effective
capacitance per unit length ``c_j`` (the paper's r-bar and c-bar) — plus
the blocked area of a via (the paper's ``v_a``).  This package computes
them from geometry and materials:

* :mod:`repro.rc.resistance` — ``rho / (W * T)``,
* :mod:`repro.rc.capacitance` — ground + Miller-scaled coupling
  capacitance, with both a parallel-plate+fringe model and a
  Sakurai-style empirical model,
* :mod:`repro.rc.via` — via blockage footprints,
* :mod:`repro.rc.models` — the :class:`~repro.rc.models.WireRC` bundle
  and extraction entry point.
"""

from .capacitance import (
    CapacitanceModel,
    ParallelPlateFringeModel,
    SakuraiModel,
    coupling_capacitance,
    ground_capacitance,
    total_capacitance_per_length,
)
from .models import WireRC, extract_wire_rc
from .resistance import resistance_per_length
from .via import via_blocked_area, wire_via_count

__all__ = [
    "CapacitanceModel",
    "ParallelPlateFringeModel",
    "SakuraiModel",
    "ground_capacitance",
    "coupling_capacitance",
    "total_capacitance_per_length",
    "WireRC",
    "extract_wire_rc",
    "resistance_per_length",
    "via_blocked_area",
    "wire_via_count",
]
