"""Wire capacitance per unit length.

The effective capacitance per unit length of a wire in a layer-pair is

    c = 2 * c_ground + M * 2 * c_coupling

where ``c_ground`` is the capacitance to the routing planes above and
below (area + fringe), ``c_coupling`` is the line-to-line capacitance to
*one* same-layer neighbour, and ``M`` is the Miller coupling factor that
models simultaneous switching of both neighbours (the paper's Table 4
column ``M``; 2.0 worst case, 1.0 with double-sided shielding).

Two interchangeable models are provided:

* :class:`ParallelPlateFringeModel` — first-order physics: parallel-plate
  area terms plus a constant fringe allowance; transparent and exactly
  linear in permittivity.
* :class:`SakuraiModel` — the empirical closed-form of Sakurai & Tarui
  for a line between two ground planes with two same-layer neighbours,
  accurate to a few percent over 1990s--2000s aspect ratios.

Both scale linearly with ILD permittivity, which is what makes the
paper's K and M sweeps directly comparable (both knobs scale parts of the
same capacitance sum).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..tech.materials import Dielectric
from ..tech.node import MetalRule


class CapacitanceModel:
    """Interface for per-unit-length capacitance models.

    Subclasses implement :meth:`ground` and :meth:`coupling`, both in
    farads per metre for a *single* plane / *single* neighbour; the
    :meth:`total` combinator applies plane doubling and the Miller factor.
    """

    def ground(self, rule: MetalRule, dielectric: Dielectric) -> float:
        """Capacitance per unit length to one adjacent routing plane."""
        raise NotImplementedError

    def coupling(self, rule: MetalRule, dielectric: Dielectric) -> float:
        """Capacitance per unit length to one same-layer neighbour."""
        raise NotImplementedError

    def total(
        self,
        rule: MetalRule,
        dielectric: Dielectric,
        miller_factor: float,
    ) -> float:
        """Effective switching capacitance per unit length.

        ``2 * ground + miller_factor * 2 * coupling``, in farads/metre.
        """
        if miller_factor < 0:
            raise ConfigurationError(
                f"Miller coupling factor must be non-negative, got {miller_factor!r}"
            )
        return 2.0 * self.ground(rule, dielectric) + miller_factor * 2.0 * self.coupling(
            rule, dielectric
        )


def _validate_geometry(rule: MetalRule) -> None:
    if rule.ild_height <= 0:
        raise ConfigurationError(
            f"ILD height must be positive for capacitance extraction, "
            f"got {rule.ild_height!r}"
        )


@dataclass(frozen=True)
class ParallelPlateFringeModel(CapacitanceModel):
    """Area + constant-fringe capacitance model.

    ``c_ground = eps * (W / H + fringe_factor)`` and
    ``c_coupling = eps * T / S``.

    Attributes
    ----------
    fringe_factor:
        Dimensionless per-edge fringe allowance added to the plate term;
        the conventional first-order value is ~1.1 per side.
    """

    fringe_factor: float = 1.1

    def __post_init__(self) -> None:
        if self.fringe_factor < 0:
            raise ConfigurationError(
                f"fringe_factor must be non-negative, got {self.fringe_factor!r}"
            )

    def ground(self, rule: MetalRule, dielectric: Dielectric) -> float:
        _validate_geometry(rule)
        return dielectric.permittivity * (
            rule.min_width / rule.ild_height + self.fringe_factor
        )

    def coupling(self, rule: MetalRule, dielectric: Dielectric) -> float:
        _validate_geometry(rule)
        return dielectric.permittivity * rule.thickness / rule.min_spacing


@dataclass(frozen=True)
class SakuraiModel(CapacitanceModel):
    """Sakurai--Tarui empirical capacitance formulas.

    For a line of width ``W`` and thickness ``T`` at height ``H`` over a
    plane, with same-layer neighbours at spacing ``S``:

    ``c_ground / eps = 1.15 (W/H) + 2.80 (T/H)^0.222``

    ``c_coupling / eps = [0.03 (W/H) + 0.83 (T/H) - 0.07 (T/H)^0.222]
    * (S/H)^-1.34``

    Valid for aspect ratios typical of the paper's technology window and
    used as the default extraction model.
    """

    def ground(self, rule: MetalRule, dielectric: Dielectric) -> float:
        _validate_geometry(rule)
        w_h = rule.min_width / rule.ild_height
        t_h = rule.thickness / rule.ild_height
        return dielectric.permittivity * (1.15 * w_h + 2.80 * t_h ** 0.222)

    def coupling(self, rule: MetalRule, dielectric: Dielectric) -> float:
        _validate_geometry(rule)
        w_h = rule.min_width / rule.ild_height
        t_h = rule.thickness / rule.ild_height
        s_h = rule.min_spacing / rule.ild_height
        bracket = 0.03 * w_h + 0.83 * t_h - 0.07 * t_h ** 0.222
        # The bracket can go slightly negative for very flat wires far
        # outside the fitted range; clamp at zero rather than return a
        # negative capacitance.
        bracket = max(bracket, 0.0)
        return dielectric.permittivity * bracket * s_h ** -1.34


#: Default model used by the extraction entry point: parallel plates with
#: a small fringe allowance.  The low fringe term keeps line-to-line
#: coupling at ~80% of total capacitance for minimum-pitch wiring, the
#: regime implied by the paper's observation that a 42% Miller-factor
#: reduction buys the same rank improvement as a 38% permittivity
#: reduction (both knobs must act on nearly the same capacitance share).
#: Use :class:`SakuraiModel` for standalone extraction accuracy studies.
DEFAULT_MODEL = ParallelPlateFringeModel(fringe_factor=0.3)


def ground_capacitance(
    rule: MetalRule,
    dielectric: Dielectric,
    model: CapacitanceModel | None = None,
) -> float:
    """Per-unit-length capacitance to one routing plane (F/m)."""
    return (model or DEFAULT_MODEL).ground(rule, dielectric)


def coupling_capacitance(
    rule: MetalRule,
    dielectric: Dielectric,
    model: CapacitanceModel | None = None,
) -> float:
    """Per-unit-length capacitance to one same-layer neighbour (F/m)."""
    return (model or DEFAULT_MODEL).coupling(rule, dielectric)


def total_capacitance_per_length(
    rule: MetalRule,
    dielectric: Dielectric,
    miller_factor: float,
    model: CapacitanceModel | None = None,
) -> float:
    """Effective switching capacitance per unit length (F/m).

    This is the paper's c-bar for a layer-pair: both planes plus both
    Miller-scaled neighbours.
    """
    return (model or DEFAULT_MODEL).total(rule, dielectric, miller_factor)
