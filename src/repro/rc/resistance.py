"""Wire resistance per unit length.

A wire on a layer-pair has rectangular cross-section width x thickness;
its resistance per unit length is ``rho / (W * T)`` with the conductor's
effective resistivity.  The paper folds all resistance dependence of the
delay model into this single r-bar per layer-pair.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..tech.materials import Conductor
from ..tech.node import MetalRule


def resistance_per_length(rule: MetalRule, conductor: Conductor) -> float:
    """Resistance per unit length (ohms/metre) of a wire on a tier.

    Parameters
    ----------
    rule:
        Geometry of the tier (width and thickness are used).
    conductor:
        Wiring material supplying the effective resistivity.

    Returns
    -------
    float
        ``rho / (width * thickness)`` in ohms per metre.
    """
    area = rule.min_width * rule.thickness
    if area <= 0:
        raise ConfigurationError(
            f"wire cross-section must be positive, got width={rule.min_width!r} "
            f"thickness={rule.thickness!r}"
        )
    return conductor.resistivity / area
