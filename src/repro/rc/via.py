"""Via blockage accounting.

The paper charges two kinds of via blockage against the routing capacity
of a layer-pair (its Algorithm 5, step 2):

* every wire assigned to a layer-pair *above* contributes ``v`` vias,
  each blocking ``v_a`` of area in every layer-pair it passes through
  (the wire must descend to its pins on the device layer), and
* every repeater inserted in a wire above contributes via area in every
  layer-pair below it (repeaters live on the substrate, so the signal
  must descend and re-ascend at each repeater).

This is a compact model in the spirit of Chen--Davis--Meindl--Zarkesh-Ha
("A Compact Physical Via Blockage Model", the paper's reference [3]):
blockage is a per-via constant footprint, not a detailed congestion map.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..tech.node import ViaRule

#: Default number of vias contributed by one L-shaped wire: two pin
#: descents at the ends plus two at the bend between the H and V layers
#: of the pair (the paper's ``v``; via area "for the L, and of the ends
#: of the L segments, is computed as a part of the wire").
DEFAULT_VIAS_PER_WIRE = 4

#: Vias contributed per repeater in each layer-pair below it: the signal
#: descends to the repeater and re-ascends, crossing each pair twice.
VIAS_PER_REPEATER = 2


def wire_via_count(vias_per_wire: int = DEFAULT_VIAS_PER_WIRE) -> int:
    """Number of vias one L-shaped wire punches through lower pairs.

    Kept as a function so callers and tests have one authoritative place
    to read/override the paper's ``v``.
    """
    if vias_per_wire < 0:
        raise ConfigurationError(
            f"vias per wire must be non-negative, got {vias_per_wire!r}"
        )
    return vias_per_wire


def via_blocked_area(
    rule: ViaRule,
    wire_count: float,
    repeater_count: float,
    vias_per_wire: int = DEFAULT_VIAS_PER_WIRE,
) -> float:
    """Total routing area blocked in one layer-pair by traffic from above.

    Implements the paper's ``B_q = A_d - ((z_r1 + z_r2) + v * i) * v_a``
    blockage charge (Algorithm 5, step 2) in square metres:

    ``blocked = (repeater_count * VIAS_PER_REPEATER / 2 + vias_per_wire *
    wire_count) * v_a`` — the paper charges each repeater one ``v_a`` per
    pair, i.e. it counts a repeater's descent/ascent pair as a single via
    footprint; we follow the paper exactly.

    Parameters
    ----------
    rule:
        Via rule of the tier the blockage lands on (supplies ``v_a``).
    wire_count:
        Number of wires assigned to layer-pairs above this one.  Allowed
        to be fractional because coarsened (bunched) WLDs carry
        fractional effective counts during normalization studies.
    repeater_count:
        Number of repeaters inserted in wires above this pair.
    vias_per_wire:
        The paper's ``v``.
    """
    if wire_count < 0 or repeater_count < 0:
        raise ConfigurationError(
            f"via blockage counts must be non-negative, got wires={wire_count!r} "
            f"repeaters={repeater_count!r}"
        )
    vias = repeater_count + wire_via_count(vias_per_wire) * wire_count
    return vias * rule.blocked_area
