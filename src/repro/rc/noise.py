"""Crosstalk noise and shielding trade-offs.

The paper treats crosstalk exclusively through the Miller coupling
factor and notes (footnote 8) that the minimum value ``M = 1.0`` "can
be achieved by double-sided shielding of lines".  This module supplies
the two quantities that make that knob physical:

* :func:`peak_coupling_noise` — the classical charge-sharing estimate
  of the glitch a switching aggressor injects into a quiet victim,
  ``V_peak = Vdd * C_c / (C_c + C_g)`` per coupled side — the signal-
  integrity number a designer would trade against rank;
* :class:`ShieldingPolicy` — the effective Miller factor and the
  *routing-capacity cost* of each shielding level: a shield wire
  occupies a track, so double-sided shielding of every line triples the
  consumed pitch.  This is the honest price of the paper's "M = 1.0"
  endpoint, exposed as a capacity utilization factor that rank studies
  can apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..tech.materials import Dielectric
from ..tech.node import MetalRule
from .capacitance import CapacitanceModel, DEFAULT_MODEL


def peak_coupling_noise(
    rule: MetalRule,
    dielectric: Dielectric,
    supply_voltage: float,
    aggressors: int = 2,
    model: CapacitanceModel | None = None,
) -> float:
    """Charge-sharing peak noise on a quiet victim line, volts.

    ``V_peak = Vdd * (n_agg * C_c) / (n_agg * C_c + 2 * C_g)`` — the
    coupled charge divided over the victim's total capacitance; ignores
    driver holding resistance, so it is an upper bound (appropriate for
    the same worst-case regime as Miller factor 2.0).
    """
    if supply_voltage <= 0:
        raise ConfigurationError(
            f"supply voltage must be positive, got {supply_voltage!r}"
        )
    if aggressors not in (0, 1, 2):
        raise ConfigurationError(
            f"a wire has 0, 1 or 2 same-layer aggressors, got {aggressors!r}"
        )
    model = model or DEFAULT_MODEL
    coupling = aggressors * model.coupling(rule, dielectric)
    ground = 2.0 * model.ground(rule, dielectric)
    if coupling == 0.0:
        return 0.0
    return supply_voltage * coupling / (coupling + ground)


@dataclass(frozen=True)
class ShieldingPolicy:
    """A shielding level: its Miller factor and its routing cost.

    Attributes
    ----------
    name:
        Display name.
    miller_factor:
        Effective Miller coupling factor under this policy.
    tracks_per_signal:
        Routing tracks consumed per signal wire (1 unshielded, 2 with
        one shared shield per signal, 3 fully double-shielded).
    """

    name: str
    miller_factor: float
    tracks_per_signal: float

    def __post_init__(self) -> None:
        if self.miller_factor < 0:
            raise ConfigurationError(
                f"miller_factor must be non-negative, got {self.miller_factor!r}"
            )
        if self.tracks_per_signal < 1.0:
            raise ConfigurationError(
                f"tracks_per_signal must be >= 1, got {self.tracks_per_signal!r}"
            )

    @property
    def capacity_factor(self) -> float:
        """Fraction of routing capacity left for signals (<= 1)."""
        return 1.0 / self.tracks_per_signal

    def aggressors(self) -> int:
        """Same-layer aggressors a victim sees under this policy."""
        if self.tracks_per_signal >= 3.0:
            return 0
        if self.tracks_per_signal >= 2.0:
            return 1
        return 2


#: No shielding: worst-case simultaneous switching on both sides.
UNSHIELDED = ShieldingPolicy(
    name="unshielded", miller_factor=2.0, tracks_per_signal=1.0
)

#: One shield shared between neighbouring signals: one quiet side.
#: Effective Miller 1.5 (one switching neighbour, one grounded).
SINGLE_SHIELDED = ShieldingPolicy(
    name="single-shielded", miller_factor=1.5, tracks_per_signal=2.0
)

#: The paper's footnote-8 endpoint: grounded shields on both sides.
DOUBLE_SHIELDED = ShieldingPolicy(
    name="double-shielded", miller_factor=1.0, tracks_per_signal=3.0
)

#: The standard ladder, cheapest first.
SHIELDING_LADDER: Tuple[ShieldingPolicy, ...] = (
    UNSHIELDED,
    SINGLE_SHIELDED,
    DOUBLE_SHIELDED,
)
