"""The per-layer-pair RC bundle consumed by the delay model.

:class:`WireRC` is the meeting point of the technology model and the
delay model: everything downstream (optimal repeater sizing, segment
delay, rank) reads interconnect electricals exclusively through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..errors import ConfigurationError
from ..tech.materials import Conductor, Dielectric
from ..tech.node import MetalRule
from .capacitance import CapacitanceModel, total_capacitance_per_length
from .resistance import resistance_per_length

if TYPE_CHECKING:  # numpy loads lazily in stack_rc_arrays below
    import numpy as np


@dataclass(frozen=True)
class WireRC:
    """Per-unit-length electricals of a wire on one layer-pair.

    Attributes
    ----------
    resistance:
        r-bar in ohms/metre.
    capacitance:
        Effective switching c-bar in farads/metre (ground + Miller-scaled
        coupling).
    """

    resistance: float
    capacitance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ConfigurationError(
                f"per-length resistance must be positive, got {self.resistance!r}"
            )
        if self.capacitance <= 0:
            raise ConfigurationError(
                f"per-length capacitance must be positive, got {self.capacitance!r}"
            )

    @property
    def rc_product(self) -> float:
        """Distributed RC constant r-bar * c-bar in s/m^2."""
        return self.resistance * self.capacitance

    def scaled(self, r_factor: float = 1.0, c_factor: float = 1.0) -> "WireRC":
        """Return a copy with resistance and/or capacitance scaled.

        Used by ablation studies (e.g. "what if capacitance dropped 20%")
        without re-running geometric extraction.
        """
        if r_factor <= 0 or c_factor <= 0:
            raise ConfigurationError(
                f"scale factors must be positive, got r={r_factor!r} c={c_factor!r}"
            )
        return WireRC(
            resistance=self.resistance * r_factor,
            capacitance=self.capacitance * c_factor,
        )


@dataclass(frozen=True)
class RCArrays:
    """Dense per-layer-pair RC arrays for the batched delay kernels.

    The structure-of-arrays mirror of a sequence of :class:`WireRC`
    bundles: the assignment-table build and the NumPy feasibility
    kernels evaluate one whole architecture per call instead of looping
    pair by pair over scalars.  ``rc_product[j]`` is computed by the
    same multiplication as :attr:`WireRC.rc_product`, so batched and
    scalar delay evaluations agree bit-for-bit.
    """

    resistance: "np.ndarray"
    capacitance: "np.ndarray"
    rc_product: "np.ndarray"

    def __len__(self) -> int:
        return int(self.resistance.size)


def stack_rc_arrays(rcs: Iterable[WireRC]) -> RCArrays:
    """Stack an iterable of :class:`WireRC` into one :class:`RCArrays`."""
    import numpy as np

    rcs = list(rcs)
    resistance = np.array([rc.resistance for rc in rcs], dtype=float)
    capacitance = np.array([rc.capacitance for rc in rcs], dtype=float)
    return RCArrays(
        resistance=resistance,
        capacitance=capacitance,
        rc_product=resistance * capacitance,
    )


def extract_wire_rc(
    rule: MetalRule,
    conductor: Conductor,
    dielectric: Dielectric,
    miller_factor: float,
    capacitance_model: CapacitanceModel | None = None,
) -> WireRC:
    """Extract the :class:`WireRC` of a tier from geometry and materials.

    Parameters
    ----------
    rule:
        Tier geometry (width, spacing, thickness, ILD height).
    conductor:
        Wiring material (effective resistivity).
    dielectric:
        Inter-layer dielectric (relative permittivity — the Table 4 ``K``
        knob).
    miller_factor:
        Miller coupling factor (the Table 4 ``M`` knob).
    capacitance_model:
        Capacitance formula; defaults to the Sakurai model.
    """
    return WireRC(
        resistance=resistance_per_length(rule, conductor),
        capacitance=total_capacitance_per_length(
            rule, dielectric, miller_factor, capacitance_model
        ),
    )
