"""Instance-size reduction: bunching and binning (paper Section 5.1).

*Bunching* splits each length's wire count into bunches of at most
``bunch_size`` wires; assignment then proceeds bunch-at-a-time instead of
wire-at-a-time.  The paper bounds the rank error by the maximum bunch
size (the rank boundary can only be misplaced within the bunch that
straddles it).

*Binning* (the paper's footnote 7) replaces a group of wires of nearby
lengths by a single group at their mean length with the summed count —
e.g. lengths 5996..6000 with counts 3,2,2,1,1 become one group of length
5998 and count 9.  Binning is orthogonal to bunching and both preserve
the total wire count exactly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import WLDError
from .distribution import WireLengthDistribution


def bunch_wld(
    wld: WireLengthDistribution, bunch_size: int
) -> WireLengthDistribution:
    """Split every group into bunches of at most ``bunch_size`` wires.

    For a group of 100 wires and ``bunch_size`` 40 the result holds three
    groups of 40, 40 and 20 wires at the same length — exactly the
    paper's example.  The output is still a valid rank-ordered WLD (equal
    lengths repeat); total wire count is preserved.
    """
    if bunch_size <= 0:
        raise WLDError(f"bunch size must be positive, got {bunch_size!r}")
    lengths: List[float] = []
    counts: List[int] = []
    for length, count in wld:
        full, remainder = divmod(count, bunch_size)
        lengths.extend([length] * full)
        counts.extend([bunch_size] * full)
        if remainder:
            lengths.append(length)
            counts.append(remainder)
    return WireLengthDistribution(
        lengths=np.array(lengths, dtype=float),
        counts=np.array(counts, dtype=np.int64),
    )


def max_bunch_count(wld: WireLengthDistribution) -> int:
    """Largest group size — the paper's bound on bunching rank error."""
    if wld.num_groups == 0:
        return 0
    return int(wld.counts.max())


def bin_wld(
    wld: WireLengthDistribution,
    max_groups: int | None = None,
    relative_width: float | None = None,
) -> WireLengthDistribution:
    """Merge nearby lengths into mean-length groups (paper footnote 7).

    Exactly one of the two knobs selects the bin structure:

    ``relative_width``
        Geometric binning: lengths within a multiplicative band of
        ``1 + relative_width`` share a bin.  Mirrors the footnote's
        "replace a group of wires with a single wire whose length is the
        mean of all wire lengths in the group".
    ``max_groups``
        Choose the smallest relative width that yields at most
        ``max_groups`` bins (binary search).

    The mean is count-weighted, so total wirelength is preserved to
    floating-point accuracy and total wire count exactly.
    """
    if (max_groups is None) == (relative_width is None):
        raise WLDError("specify exactly one of max_groups / relative_width")
    if wld.num_groups == 0:
        return wld

    if relative_width is not None:
        if relative_width <= 0:
            raise WLDError(
                f"relative bin width must be positive, got {relative_width!r}"
            )
        return _bin_by_width(wld, relative_width)

    assert max_groups is not None
    if max_groups <= 0:
        raise WLDError(f"max_groups must be positive, got {max_groups!r}")
    if wld.num_groups <= max_groups:
        return wld
    # Binary-search the relative width.  The group count is monotone
    # non-increasing in width; widths are searched on a log scale between
    # "almost exact" and "everything in one bin".
    low, high = 1e-9, wld.max_length / wld.min_length
    for _ in range(64):
        mid = (low * high) ** 0.5
        if _bin_group_count(wld, mid) <= max_groups:
            high = mid
        else:
            low = mid
    return _bin_by_width(wld, high)


def _bin_edges(wld: WireLengthDistribution, relative_width: float) -> np.ndarray:
    """Assign each group a bin id under geometric banding.

    Groups are scanned in rank order; a new bin starts whenever the
    current length falls below ``bin_start_length / (1 + width)``.
    """
    factor = 1.0 + relative_width
    ids = np.empty(wld.num_groups, dtype=np.int64)
    current_id = -1
    bin_start = None
    for index, length in enumerate(wld.lengths):
        if bin_start is None or length < bin_start / factor:
            current_id += 1
            bin_start = float(length)
        ids[index] = current_id
    return ids


def _bin_group_count(wld: WireLengthDistribution, relative_width: float) -> int:
    ids = _bin_edges(wld, relative_width)
    return int(ids[-1]) + 1 if ids.size else 0


def _bin_by_width(
    wld: WireLengthDistribution, relative_width: float
) -> WireLengthDistribution:
    ids = _bin_edges(wld, relative_width)
    num_bins = int(ids[-1]) + 1
    counts = np.zeros(num_bins, dtype=np.int64)
    weighted = np.zeros(num_bins, dtype=float)
    np.add.at(counts, ids, wld.counts)
    np.add.at(weighted, ids, wld.lengths * wld.counts)
    means = weighted / counts
    # Means of consecutive bins are non-increasing because the bins
    # partition a non-increasing sequence.
    return WireLengthDistribution(lengths=means, counts=counts)


def coarsen(
    wld: WireLengthDistribution,
    bunch_size: int | None = None,
    max_groups: int | None = None,
) -> Tuple[WireLengthDistribution, int]:
    """Convenience pipeline: optional binning then optional bunching.

    Returns the coarsened WLD together with the rank error bound (the
    maximum bunch count of the result; 0 for an empty WLD).
    """
    result = wld
    if max_groups is not None:
        result = bin_wld(result, max_groups=max_groups)
    if bunch_size is not None:
        result = bunch_wld(result, bunch_size)
    return result, max_bunch_count(result)
