"""Rent's-rule utilities.

Rent's rule relates the number of external terminals ``T`` of a logic
block to its gate count ``N``: ``T = k * N^p`` with Rent coefficient
``k`` (average terminals per gate) and Rent exponent ``p``.  The Davis
WLD model is driven by these parameters together with the average
point-to-point fanout.
"""

from __future__ import annotations

from ..errors import WLDError

#: Conventional average terminals per gate for random logic.
DEFAULT_RENT_COEFFICIENT = 4.0

#: The paper's Rent exponent for all experiments.
DEFAULT_RENT_EXPONENT = 0.6

#: Conventional average fanout for random logic.
DEFAULT_FANOUT = 3.0


def _validate(gate_count: int, coefficient: float, exponent: float) -> None:
    if gate_count <= 0:
        raise WLDError(f"gate count must be positive, got {gate_count!r}")
    if coefficient <= 0:
        raise WLDError(f"Rent coefficient must be positive, got {coefficient!r}")
    if not 0.0 < exponent < 1.0:
        raise WLDError(f"Rent exponent must be in (0, 1), got {exponent!r}")


def rent_terminals(
    gate_count: int,
    coefficient: float = DEFAULT_RENT_COEFFICIENT,
    exponent: float = DEFAULT_RENT_EXPONENT,
) -> float:
    """External terminal count ``T = k * N^p`` of an ``N``-gate block."""
    _validate(gate_count, coefficient, exponent)
    return coefficient * gate_count ** exponent


def average_fanout(fanout: float = DEFAULT_FANOUT) -> float:
    """Validated average point-to-point fanout (must be positive)."""
    if fanout <= 0:
        raise WLDError(f"fanout must be positive, got {fanout!r}")
    return fanout


def fanout_fraction(fanout: float = DEFAULT_FANOUT) -> float:
    """Davis's ``alpha = f.o. / (f.o. + 1)``.

    The fraction of terminals that are point-to-point interconnect
    sources after multi-terminal nets are decomposed.
    """
    f = average_fanout(fanout)
    return f / (f + 1.0)


def total_connections(
    gate_count: int,
    coefficient: float = DEFAULT_RENT_COEFFICIENT,
    exponent: float = DEFAULT_RENT_EXPONENT,
    fanout: float = DEFAULT_FANOUT,
) -> float:
    """Expected total point-to-point connection count of the design.

    Davis Part 1's total interconnect count
    ``T_total = alpha * k * N * (1 - N^(p-1))``; the Davis density is
    normalized to integrate to this value.
    """
    _validate(gate_count, coefficient, exponent)
    alpha = fanout_fraction(fanout)
    return alpha * coefficient * gate_count * (1.0 - gate_count ** (exponent - 1.0))
