"""The discrete wire length distribution.

A :class:`WireLengthDistribution` is a sequence of *groups*
``(length, count)`` with lengths in **gate pitches** (dimensionless; the
die model converts to metres) held in non-increasing length order.  That
order *is* the paper's rank order (Definition 1: the rank of a wire is
its index in the WLD sorted by non-increasing length), so "the first
``i`` wires" always means the ``i`` longest.

Groups with equal lengths may repeat (bunching produces that); counts are
positive integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from ..errors import WLDError


@dataclass(frozen=True)
class WireLengthDistribution:
    """Length-sorted wire groups.

    Attributes
    ----------
    lengths:
        Group lengths in gate pitches, non-increasing.  Float-valued so
        that binning (which replaces a group by its mean length) stays
        exact.
    counts:
        Positive integer wire count per group.
    """

    lengths: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=float)
        counts = np.asarray(self.counts, dtype=np.int64)
        if lengths.ndim != 1 or counts.ndim != 1:
            raise WLDError("lengths and counts must be one-dimensional")
        if lengths.shape != counts.shape:
            raise WLDError(
                f"lengths and counts must have equal size, got "
                f"{lengths.shape} vs {counts.shape}"
            )
        if lengths.size and np.any(lengths <= 0):
            raise WLDError("all wire lengths must be positive")
        if counts.size and np.any(counts <= 0):
            raise WLDError("all group counts must be positive integers")
        if lengths.size > 1 and np.any(np.diff(lengths) > 0):
            raise WLDError("lengths must be non-increasing (rank order)")
        lengths.setflags(write=False)
        counts.setflags(write=False)
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "counts", counts)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_groups(
        cls, groups: Iterable[Tuple[float, int]]
    ) -> "WireLengthDistribution":
        """Build from ``(length, count)`` pairs in any order.

        Pairs are sorted into rank order; groups with zero count are
        dropped; duplicate lengths are merged.
        """
        filtered = [(float(l), int(c)) for l, c in groups if int(c) != 0]
        for length, count in filtered:
            if count < 0:
                raise WLDError(f"negative count {count} for length {length}")
        merged: dict = {}
        for length, count in filtered:
            merged[length] = merged.get(length, 0) + count
        ordered = sorted(merged.items(), key=lambda item: -item[0])
        lengths = np.array([l for l, _ in ordered], dtype=float)
        counts = np.array([c for _, c in ordered], dtype=np.int64)
        return cls(lengths=lengths, counts=counts)

    @classmethod
    def from_lengths(cls, lengths: Iterable[float]) -> "WireLengthDistribution":
        """Build from raw per-wire lengths (each wire counted once)."""
        values = sorted((float(l) for l in lengths), reverse=True)
        if not values:
            raise WLDError("cannot build a WLD from an empty length list")
        return cls.from_groups((l, 1) for l in values)

    @classmethod
    def empty(cls) -> "WireLengthDistribution":
        """The empty distribution (zero groups, zero wires)."""
        return cls(
            lengths=np.array([], dtype=float), counts=np.array([], dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        """Number of ``(length, count)`` groups."""
        return int(self.lengths.size)

    @property
    def total_wires(self) -> int:
        """The paper's ``n``: total number of wires."""
        return int(self.counts.sum()) if self.counts.size else 0

    @property
    def total_length(self) -> float:
        """Sum of all wire lengths, in gate pitches."""
        if not self.lengths.size:
            return 0.0
        return float(np.dot(self.lengths, self.counts))

    @property
    def max_length(self) -> float:
        """The paper's ``l_max`` (longest wire), in gate pitches."""
        if not self.lengths.size:
            raise WLDError("empty WLD has no maximum length")
        return float(self.lengths[0])

    @property
    def min_length(self) -> float:
        """Shortest wire length, in gate pitches."""
        if not self.lengths.size:
            raise WLDError("empty WLD has no minimum length")
        return float(self.lengths[-1])

    @property
    def mean_length(self) -> float:
        """Count-weighted mean wire length, in gate pitches."""
        total = self.total_wires
        if total == 0:
            raise WLDError("empty WLD has no mean length")
        return self.total_length / total

    def __len__(self) -> int:
        return self.num_groups

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        for length, count in zip(self.lengths, self.counts):
            yield float(length), int(count)

    def group(self, index: int) -> Tuple[float, int]:
        """The ``(length, count)`` group at a 0-based rank-order index."""
        if not 0 <= index < self.num_groups:
            raise WLDError(
                f"group index {index} out of range for {self.num_groups} groups"
            )
        return float(self.lengths[index]), int(self.counts[index])

    # ------------------------------------------------------------------
    # Rank-order arithmetic
    # ------------------------------------------------------------------

    def cumulative_counts(self) -> np.ndarray:
        """Cumulative wire counts in rank order.

        ``cumulative_counts()[g]`` is the number of wires in groups
        ``0..g`` inclusive — i.e. the rank of the last wire of group
        ``g``.
        """
        return np.cumsum(self.counts)

    def wires_in_first_groups(self, num_groups: int) -> int:
        """Number of wires contained in the ``num_groups`` longest groups."""
        if not 0 <= num_groups <= self.num_groups:
            raise WLDError(
                f"group prefix {num_groups} out of range for "
                f"{self.num_groups} groups"
            )
        if num_groups == 0:
            return 0
        return int(self.counts[:num_groups].sum())

    def length_at_rank(self, rank: int) -> float:
        """Length of the wire at 1-based rank (1 = longest)."""
        if not 1 <= rank <= self.total_wires:
            raise WLDError(
                f"rank {rank} out of range for {self.total_wires} wires"
            )
        cumulative = self.cumulative_counts()
        group_index = int(np.searchsorted(cumulative, rank, side="left"))
        return float(self.lengths[group_index])

    def prefix(self, num_groups: int) -> "WireLengthDistribution":
        """The sub-distribution of the ``num_groups`` longest groups."""
        if not 0 <= num_groups <= self.num_groups:
            raise WLDError(
                f"group prefix {num_groups} out of range for "
                f"{self.num_groups} groups"
            )
        return WireLengthDistribution(
            lengths=self.lengths[:num_groups].copy(),
            counts=self.counts[:num_groups].copy(),
        )

    def suffix(self, num_groups_skipped: int) -> "WireLengthDistribution":
        """The sub-distribution after skipping the longest groups."""
        if not 0 <= num_groups_skipped <= self.num_groups:
            raise WLDError(
                f"group prefix {num_groups_skipped} out of range for "
                f"{self.num_groups} groups"
            )
        return WireLengthDistribution(
            lengths=self.lengths[num_groups_skipped:].copy(),
            counts=self.counts[num_groups_skipped:].copy(),
        )

    def scaled_lengths(self, factor: float) -> "WireLengthDistribution":
        """Copy with every length multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise WLDError(f"length scale factor must be positive, got {factor!r}")
        return WireLengthDistribution(
            lengths=self.lengths * factor, counts=self.counts.copy()
        )

    def merged_equal_lengths(self) -> "WireLengthDistribution":
        """Merge adjacent groups of identical length (undoes bunching)."""
        return WireLengthDistribution.from_groups(iter(self))

    # ------------------------------------------------------------------
    # Statistics helpers used by reports and tests
    # ------------------------------------------------------------------

    def lengths_expanded(self, limit: int | None = None) -> np.ndarray:
        """Per-wire lengths in rank order (optionally only the first
        ``limit`` wires).  Memory-heavy for large WLDs; intended for
        tests and small analyses."""
        if limit is not None and limit < 0:
            raise WLDError(f"limit must be non-negative, got {limit!r}")
        out: List[np.ndarray] = []
        remaining = self.total_wires if limit is None else min(limit, self.total_wires)
        for length, count in self:
            if remaining <= 0:
                break
            take = min(count, remaining)
            out.append(np.full(take, length))
            remaining -= take
        if not out:
            return np.array([], dtype=float)
        return np.concatenate(out)

    def percentile_length(self, fraction: float) -> float:
        """Length at a given rank fraction (0 = longest, 1 = shortest)."""
        if not 0.0 <= fraction <= 1.0:
            raise WLDError(f"fraction must be in [0, 1], got {fraction!r}")
        total = self.total_wires
        if total == 0:
            raise WLDError("empty WLD has no percentiles")
        rank = max(1, min(total, int(round(fraction * total)) or 1))
        return self.length_at_rank(rank)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        if self.num_groups == 0:
            return "WLD: empty"
        return (
            f"WLD: {self.total_wires} wires in {self.num_groups} groups, "
            f"lengths [{self.min_length:g}, {self.max_length:g}] pitches, "
            f"mean {self.mean_length:.3f}, total {self.total_length:.3g}"
        )
