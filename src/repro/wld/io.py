"""WLD persistence: CSV and JSON round-trips.

CSV format: header ``length,count`` followed by one row per group.
JSON format: ``{"lengths": [...], "counts": [...]}``.
Both store gate-pitch lengths and integer counts in rank order.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..errors import WLDError
from .distribution import WireLengthDistribution

PathLike = Union[str, Path]


def save_wld_csv(wld: WireLengthDistribution, path: PathLike) -> None:
    """Write a WLD to CSV (``length,count`` header, rank order)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["length", "count"])
        for length, count in wld:
            writer.writerow([repr(length), count])


def load_wld_csv(path: PathLike) -> WireLengthDistribution:
    """Read a WLD from CSV written by :func:`save_wld_csv`."""
    groups = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != ["length", "count"]:
            raise WLDError(
                f"{path}: expected CSV header 'length,count', got {header!r}"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise WLDError(f"{path}:{row_number}: expected two columns, got {row!r}")
            try:
                groups.append((float(row[0]), int(row[1])))
            except ValueError as exc:
                raise WLDError(f"{path}:{row_number}: {exc}") from exc
    if not groups:
        raise WLDError(f"{path}: no WLD rows found")
    return WireLengthDistribution.from_groups(groups)


def save_wld_json(wld: WireLengthDistribution, path: PathLike) -> None:
    """Write a WLD to JSON (``lengths`` / ``counts`` arrays, rank order)."""
    payload = {
        "lengths": [float(l) for l in wld.lengths],
        "counts": [int(c) for c in wld.counts],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_wld_json(path: PathLike) -> WireLengthDistribution:
    """Read a WLD from JSON written by :func:`save_wld_json`."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise WLDError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "lengths" not in payload or "counts" not in payload:
        raise WLDError(f"{path}: expected an object with 'lengths' and 'counts'")
    lengths = payload["lengths"]
    counts = payload["counts"]
    if len(lengths) != len(counts):
        raise WLDError(
            f"{path}: lengths ({len(lengths)}) and counts ({len(counts)}) differ"
        )
    return WireLengthDistribution.from_groups(zip(lengths, counts))
