"""Multi-terminal nets and their decomposition into point-to-point wires.

The Davis model (and the paper) works on *point-to-point* connections:
a net with fanout ``f`` counts as ``f`` source-sink pairs, which is
where the ``alpha = f.o./(f.o.+1)`` factor comes from.  Real designs,
however, are described as multi-terminal nets; this module supplies the
bridge so empirical netlists can feed the rank metric:

* :class:`Net` — a source pin plus sink pins at grid coordinates,
* :func:`decompose_net` — net → point-to-point wire lengths under a
  routing model (``"star"``: each sink wired from the source, the
  paper-compatible reading; ``"chain"``: a source-ordered trunk visiting
  sinks nearest-first, a Steiner-flavoured lower-cost alternative),
* :func:`wld_from_nets` — a rank-ready
  :class:`~repro.wld.distribution.WireLengthDistribution` from a netlist.

Distances are Manhattan in gate pitches, matching the WLD convention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import WLDError
from .distribution import WireLengthDistribution

#: Supported decomposition models.
DECOMPOSITIONS = ("star", "chain")


@dataclass(frozen=True)
class Net:
    """A multi-terminal net on the gate grid.

    Attributes
    ----------
    source:
        Driver pin location ``(x, y)`` in gate pitches.
    sinks:
        Receiver pin locations; fanout is ``len(sinks)``.
    """

    source: Tuple[float, float]
    sinks: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise WLDError("a net needs at least one sink")
        object.__setattr__(self, "sinks", tuple(tuple(s) for s in self.sinks))
        object.__setattr__(self, "source", tuple(self.source))

    @property
    def fanout(self) -> int:
        """Number of sinks."""
        return len(self.sinks)


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Manhattan distance in gate pitches."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def decompose_net(net: Net, model: str = "star") -> List[float]:
    """Point-to-point wire lengths of one net (zero lengths dropped).

    ``"star"``: one wire per sink, each from the source — the upper
    bound the Davis/paper accounting corresponds to.

    ``"chain"``: a trunk that starts at the source and extends to the
    remaining nearest sink at every step; each hop is one wire.  Trunk
    sharing usually (not always — sinks fanning out in opposite
    directions are a counterexample) makes the chain total shorter than
    the star's.
    """
    if model not in DECOMPOSITIONS:
        raise WLDError(
            f"unknown decomposition {model!r}; choose from {DECOMPOSITIONS}"
        )
    if model == "star":
        lengths = [manhattan(net.source, sink) for sink in net.sinks]
    else:
        remaining = list(net.sinks)
        current = net.source
        lengths = []
        while remaining:
            nearest = min(remaining, key=lambda s: manhattan(current, s))
            lengths.append(manhattan(current, nearest))
            remaining.remove(nearest)
            current = nearest
    return [l for l in lengths if l > 0]


def wld_from_nets(
    nets: Iterable[Net],
    model: str = "star",
    min_length: float = 1.0,
) -> WireLengthDistribution:
    """Build a rank-ready WLD from a netlist.

    Wires shorter than ``min_length`` are clamped up to it (a wire
    between abutting gates still occupies one pitch of routing), which
    also keeps the WLD strictly positive as the distribution requires.
    """
    if min_length <= 0:
        raise WLDError(f"min_length must be positive, got {min_length!r}")
    lengths: List[float] = []
    for net in nets:
        for length in decompose_net(net, model=model):
            lengths.append(max(length, min_length))
    if not lengths:
        raise WLDError("netlist decomposed to zero wires")
    return WireLengthDistribution.from_lengths(lengths)


def synthetic_netlist(
    gate_count: int,
    net_count: int,
    locality: float = 0.1,
    mean_fanout: float = 3.0,
    seed: int = 2003,
    rng: Optional[random.Random] = None,
) -> List[Net]:
    """A synthetic locality-driven netlist on a square gate grid.

    Sources are uniform over the grid; each net's sinks fall at
    geometric-tailed Manhattan offsets with scale ``locality *
    sqrt(gate_count)`` — short nets dominate, a few span the die,
    qualitatively matching placed-design statistics.  Deterministic for
    a given seed.

    Parameters
    ----------
    gate_count:
        Grid holds ``floor(sqrt(gate_count))^2`` sites.
    net_count:
        Number of nets to draw.
    locality:
        Fraction of the die edge used as the offset scale, in (0, 1].
    mean_fanout:
        Mean of the (shifted-geometric) fanout distribution, >= 1.
    seed:
        Seed for the internally-constructed RNG (ignored when ``rng``
        is given).
    rng:
        Injected pre-seeded :class:`random.Random`.  Callers threading
        one RNG through a larger reproducible experiment pass it here;
        by default a fresh ``random.Random(seed)`` keeps this function
        a pure function of its arguments (the determinism contract
        lintkit rule RPL003 enforces — never the process-global
        ``random`` module).
    """
    if gate_count < 4:
        raise WLDError(f"need at least 4 gates, got {gate_count!r}")
    if net_count < 1:
        raise WLDError(f"need at least one net, got {net_count!r}")
    if not 0.0 < locality <= 1.0:
        raise WLDError(f"locality must be in (0, 1], got {locality!r}")
    if mean_fanout < 1.0:
        raise WLDError(f"mean_fanout must be >= 1, got {mean_fanout!r}")

    if rng is None:
        rng = random.Random(seed)
    side = int(gate_count ** 0.5)
    scale = max(1.0, locality * side)

    def clamp(value: float) -> float:
        return min(max(value, 0.0), side - 1.0)

    nets: List[Net] = []
    for _ in range(net_count):
        sx = rng.randrange(side)
        sy = rng.randrange(side)
        fanout = 1 + _geometric(rng, mean_fanout - 1.0)
        sinks = []
        for _ in range(fanout):
            dx = _signed_offset(rng, scale)
            dy = _signed_offset(rng, scale)
            sinks.append((clamp(sx + dx), clamp(sy + dy)))
        nets.append(Net(source=(float(sx), float(sy)), sinks=tuple(sinks)))
    return nets


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric variate with the given mean (0 when mean <= 0)."""
    if mean <= 0:
        return 0
    p = 1.0 / (1.0 + mean)
    count = 0
    while rng.random() > p and count < 64:
        count += 1
    return count


def _signed_offset(rng: random.Random, scale: float) -> float:
    """Symmetric geometric-tailed integer offset with unit minimum."""
    magnitude = 1 + _geometric(rng, scale - 1.0)
    return magnitude if rng.random() < 0.5 else -magnitude
