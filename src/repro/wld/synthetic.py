"""Hand-built wire length distributions.

Used by tests, by the Figure 2 greedy-vs-optimal counterexample (four
equal-length wires), and as small deterministic stand-ins for the Davis
model when exercising solvers exhaustively.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import WLDError
from .distribution import WireLengthDistribution


def wld_from_pairs(pairs: Iterable[Tuple[float, int]]) -> WireLengthDistribution:
    """Build a WLD from ``(length, count)`` pairs in any order."""
    return WireLengthDistribution.from_groups(pairs)


def single_length_wld(length: float, count: int) -> WireLengthDistribution:
    """All wires share one length — the Figure 2 counterexample shape."""
    if count <= 0:
        raise WLDError(f"count must be positive, got {count!r}")
    return WireLengthDistribution.from_groups([(length, count)])


def uniform_wld(
    min_length: float, max_length: float, num_lengths: int, count_per_length: int
) -> WireLengthDistribution:
    """Evenly spaced lengths with a constant count per length."""
    if num_lengths <= 0:
        raise WLDError(f"num_lengths must be positive, got {num_lengths!r}")
    if count_per_length <= 0:
        raise WLDError(
            f"count_per_length must be positive, got {count_per_length!r}"
        )
    if not 0 < min_length <= max_length:
        raise WLDError(
            f"need 0 < min_length <= max_length, got {min_length!r}, {max_length!r}"
        )
    lengths = np.linspace(min_length, max_length, num_lengths)
    return WireLengthDistribution.from_groups(
        (float(l), count_per_length) for l in lengths
    )


def geometric_wld(
    max_length: float,
    num_lengths: int,
    length_ratio: float = 2.0,
    count_ratio: float = 4.0,
    longest_count: int = 1,
) -> WireLengthDistribution:
    """Geometric ladder: each step down is shorter and more numerous.

    Mimics the qualitative shape of real WLDs (few long wires, many short
    ones) with tiny instances: length divides by ``length_ratio`` per
    step while count multiplies by ``count_ratio``.
    """
    if num_lengths <= 0:
        raise WLDError(f"num_lengths must be positive, got {num_lengths!r}")
    if max_length <= 0:
        raise WLDError(f"max_length must be positive, got {max_length!r}")
    if length_ratio <= 1.0:
        raise WLDError(f"length_ratio must exceed 1, got {length_ratio!r}")
    if count_ratio < 1.0:
        raise WLDError(f"count_ratio must be >= 1, got {count_ratio!r}")
    if longest_count <= 0:
        raise WLDError(f"longest_count must be positive, got {longest_count!r}")
    groups = []
    length = float(max_length)
    count = float(longest_count)
    for _ in range(num_lengths):
        groups.append((length, max(1, int(round(count)))))
        length /= length_ratio
        count *= count_ratio
    return WireLengthDistribution.from_groups(groups)
