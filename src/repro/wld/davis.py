"""The Davis--De--Meindl stochastic wire length distribution.

This is the WLD model the paper uses (its reference [4]: J. A. Davis,
V. K. De, J. D. Meindl, "A Stochastic Wire-length Distribution for
Gigascale Integration (GSI) — Part 1", IEEE TED 45(3), 1998).

For a square array of ``N`` gates with Rent exponent ``p``, Rent
coefficient ``k`` and average fanout ``f.o.`` (``alpha = f.o./(f.o.+1)``),
the expected number of point-to-point interconnects of length ``l``
(in gate pitches) is

* Region I  (``1 <= l < sqrt(N)``):
  ``i(l) = Gamma * (alpha*k/2) * (l^3/3 - 2*sqrt(N)*l^2 + 2*N*l) * l^(2p-4)``
* Region II (``sqrt(N) <= l <= 2*sqrt(N) - 2``):
  ``i(l) = Gamma * (alpha*k/6) * (2*sqrt(N) - l)^3 * l^(2p-4)``

The normalization ``Gamma`` is fixed so the density integrates to the
design's expected total connection count
``alpha*k*N*(1 - N^(p-1))`` (see :func:`repro.wld.rent.total_connections`).
We evaluate the density on the integer lengths ``1..2*sqrt(N)-2`` and
round to integer counts with a largest-remainder scheme so the total wire
count is preserved exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import WLDError
from .distribution import WireLengthDistribution
from .rent import (
    DEFAULT_FANOUT,
    DEFAULT_RENT_COEFFICIENT,
    DEFAULT_RENT_EXPONENT,
    fanout_fraction,
    total_connections,
)


@dataclass(frozen=True)
class DavisParameters:
    """Inputs of the Davis WLD model.

    Attributes
    ----------
    gate_count:
        Number of gates ``N`` (the paper uses 1M, 4M and 10M).
    rent_exponent:
        Rent exponent ``p`` (the paper uses 0.6 everywhere).
    rent_coefficient:
        Rent coefficient ``k`` (terminals per gate, default 4).
    fanout:
        Average point-to-point fanout (default 3, giving alpha = 0.75).
    """

    gate_count: int
    rent_exponent: float = DEFAULT_RENT_EXPONENT
    rent_coefficient: float = DEFAULT_RENT_COEFFICIENT
    fanout: float = DEFAULT_FANOUT

    def __post_init__(self) -> None:
        if self.gate_count < 4:
            raise WLDError(
                f"Davis model needs at least 4 gates, got {self.gate_count!r}"
            )
        if not 0.0 < self.rent_exponent < 1.0:
            raise WLDError(
                f"Rent exponent must be in (0, 1), got {self.rent_exponent!r}"
            )
        if self.rent_coefficient <= 0:
            raise WLDError(
                f"Rent coefficient must be positive, got {self.rent_coefficient!r}"
            )
        if self.fanout <= 0:
            raise WLDError(f"fanout must be positive, got {self.fanout!r}")

    @property
    def max_length(self) -> int:
        """Longest possible Manhattan length, ``2*sqrt(N) - 2`` pitches."""
        side = int(math.floor(math.sqrt(self.gate_count)))
        return max(1, 2 * side - 2)

    @property
    def expected_total(self) -> float:
        """Expected total point-to-point connection count."""
        return total_connections(
            self.gate_count,
            self.rent_coefficient,
            self.rent_exponent,
            self.fanout,
        )


def davis_density(params: DavisParameters) -> np.ndarray:
    """Unnormalized Davis density ``i(l)`` at integer lengths.

    Returns
    -------
    numpy.ndarray
        ``density[l - 1]`` is the *relative* expected count of wires of
        length ``l`` pitches for ``l = 1 .. params.max_length``.  Use
        :func:`davis_wld` for the normalized integer-count distribution.
    """
    n = float(params.gate_count)
    p = params.rent_exponent
    alpha = fanout_fraction(params.fanout)
    k = params.rent_coefficient
    sqrt_n = math.sqrt(n)

    lengths = np.arange(1, params.max_length + 1, dtype=float)
    power = lengths ** (2.0 * p - 4.0)

    region1 = (alpha * k / 2.0) * (
        lengths ** 3 / 3.0 - 2.0 * sqrt_n * lengths ** 2 + 2.0 * n * lengths
    ) * power
    region2 = (alpha * k / 6.0) * np.clip(2.0 * sqrt_n - lengths, 0.0, None) ** 3 * power

    density = np.where(lengths < sqrt_n, region1, region2)
    # Region I's cubic can dip negative just below sqrt(N) for tiny N;
    # the physical density is non-negative.
    return np.clip(density, 0.0, None)


def _largest_remainder_round(values: np.ndarray, target_total: int) -> np.ndarray:
    """Round non-negative floats to ints preserving the exact total.

    Floors every value, then hands out the remaining units to the largest
    fractional parts (ties broken toward longer wires, i.e. higher index,
    so the critical long tail is never starved).
    """
    if target_total < 0:
        raise WLDError(f"target total must be non-negative, got {target_total!r}")
    floors = np.floor(values).astype(np.int64)
    deficit = int(target_total - floors.sum())
    if deficit < 0:
        # Rounding target below the floor sum can only happen if the
        # caller scaled inconsistently; trim from the smallest fractions.
        order = np.argsort(values - floors)
        for index in order:
            if deficit == 0:
                break
            if floors[index] > 0:
                floors[index] -= 1
                deficit += 1
        return floors
    if deficit > 0:
        fractions = values - floors
        # argsort is ascending; take the largest fractions, preferring
        # higher indices (longer wires) on ties by sorting on
        # (fraction, index).
        order = np.lexsort((np.arange(values.size), fractions))
        for index in order[::-1][:deficit]:
            floors[index] += 1
    return floors


def davis_wld(params: DavisParameters) -> WireLengthDistribution:
    """Generate the integer-count Davis WLD for a design.

    The density is evaluated at integer lengths ``1 .. 2*sqrt(N)-2``,
    normalized to the design's expected total connection count, and
    rounded to integers with total preservation.  Lengths whose rounded
    count is zero are dropped (the extreme tail).

    Returns
    -------
    WireLengthDistribution
        Lengths in gate pitches, rank (non-increasing length) order.
    """
    density = davis_density(params)
    total = density.sum()
    if total <= 0:
        raise WLDError("Davis density integrated to zero; check parameters")
    expected = params.expected_total
    scaled = density * (expected / total)
    counts = _largest_remainder_round(scaled, int(round(expected)))

    lengths = np.arange(1, params.max_length + 1, dtype=float)
    keep = counts > 0
    if not np.any(keep):
        raise WLDError("Davis WLD rounded to zero wires; gate count too small")
    # Reverse into non-increasing length order.
    return WireLengthDistribution(
        lengths=lengths[keep][::-1].copy(), counts=counts[keep][::-1].copy()
    )
