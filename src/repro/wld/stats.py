"""WLD statistics and comparison utilities.

Rank studies constantly need the same handful of distribution facts:
length-class shares (the C-column plateau values), cumulative-fraction
tables, and a way to say *how different* two WLDs are (netlist-derived
vs Davis, binned vs raw).  This module collects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import WLDError
from .distribution import WireLengthDistribution


def share_at_least(wld: WireLengthDistribution, length: float) -> float:
    """Fraction of wires with length >= the given value.

    For the paper's 1M-gate WLD, ``share_at_least(wld, 3)`` is its
    Table 4 C-column plateau 0.3097.
    """
    if wld.total_wires == 0:
        raise WLDError("empty WLD has no shares")
    mask = wld.lengths >= length
    return float(wld.counts[mask].sum()) / wld.total_wires


def length_class_table(
    wld: WireLengthDistribution, max_rows: int = 10
) -> List[Tuple[float, int, float]]:
    """(length, count, cumulative share of wires >= length) rows.

    Rows are emitted shortest-first for the ``max_rows`` most populous
    length classes — the classes whose edges become rank plateaus.
    """
    if max_rows < 1:
        raise WLDError(f"max_rows must be positive, got {max_rows!r}")
    merged = wld.merged_equal_lengths()
    total = merged.total_wires
    # cumulative from the long end: share of wires >= each length
    cum = np.cumsum(merged.counts)
    rows = [
        (float(length), int(count), float(cum[i]) / total)
        for i, (length, count) in enumerate(merged)
    ]
    rows.sort(key=lambda row: -row[1])
    top = rows[:max_rows]
    top.sort(key=lambda row: row[0])
    return top


def mean_length_ratio(
    a: WireLengthDistribution, b: WireLengthDistribution
) -> float:
    """Ratio of mean wire lengths ``a / b``."""
    return a.mean_length / b.mean_length


def cdf_distance(
    a: WireLengthDistribution, b: WireLengthDistribution
) -> float:
    """Kolmogorov-Smirnov-style distance between two length CDFs.

    Max absolute difference of the cumulative wire-count fractions over
    the union of length points; 0 = identical shape, 1 = disjoint.
    """
    if a.total_wires == 0 or b.total_wires == 0:
        raise WLDError("cannot compare empty WLDs")

    def cdf(wld: WireLengthDistribution, points: np.ndarray) -> np.ndarray:
        merged = wld.merged_equal_lengths()
        lengths = merged.lengths[::-1]  # ascending
        counts = merged.counts[::-1]
        cum = np.cumsum(counts) / merged.total_wires
        idx = np.searchsorted(lengths, points, side="right") - 1
        out = np.where(idx >= 0, cum[np.clip(idx, 0, None)], 0.0)
        return out

    points = np.union1d(a.lengths, b.lengths)
    return float(np.max(np.abs(cdf(a, points) - cdf(b, points))))


@dataclass(frozen=True)
class WLDSummary:
    """One-struct digest of a distribution.

    Attributes
    ----------
    total_wires, total_length, mean_length, max_length:
        Standard aggregates (lengths in gate pitches).
    share_ge2, share_ge3, share_ge4:
        Length-class shares — the rank-plateau candidates.
    """

    total_wires: int
    total_length: float
    mean_length: float
    max_length: float
    share_ge2: float
    share_ge3: float
    share_ge4: float


def summarize(wld: WireLengthDistribution) -> WLDSummary:
    """Compute the digest used by reports and EXPERIMENTS.md."""
    return WLDSummary(
        total_wires=wld.total_wires,
        total_length=wld.total_length,
        mean_length=wld.mean_length,
        max_length=wld.max_length,
        share_ge2=share_at_least(wld, 2.0),
        share_ge3=share_at_least(wld, 3.0),
        share_ge4=share_at_least(wld, 4.0),
    )
