"""Wire length distributions.

The paper evaluates an IA against the stochastic wire length distribution
of Davis--De--Meindl (its reference [4]), generated from a gate count and
a Rent exponent.  This package provides:

* :mod:`repro.wld.distribution` — the discrete
  :class:`~repro.wld.distribution.WireLengthDistribution` (lengths in
  gate pitches, integer counts, non-increasing length order = rank order),
* :mod:`repro.wld.rent` — Rent's-rule utilities,
* :mod:`repro.wld.davis` — the Davis stochastic WLD generator,
* :mod:`repro.wld.coarsen` — the paper's Section 5.1 *bunching* and
  *binning* instance-size reductions,
* :mod:`repro.wld.synthetic` — hand-built WLDs for tests and the
  Figure 2 counterexample,
* :mod:`repro.wld.io` — CSV/JSON persistence.
"""

from .coarsen import bin_wld, bunch_wld, max_bunch_count
from .davis import DavisParameters, davis_wld, davis_density
from .distribution import WireLengthDistribution
from .io import load_wld_csv, load_wld_json, save_wld_csv, save_wld_json
from .nets import Net, decompose_net, synthetic_netlist, wld_from_nets
from .rent import average_fanout, rent_terminals, total_connections
from .stats import WLDSummary, cdf_distance, share_at_least, summarize
from .synthetic import (
    geometric_wld,
    single_length_wld,
    uniform_wld,
    wld_from_pairs,
)

__all__ = [
    "WireLengthDistribution",
    "DavisParameters",
    "davis_wld",
    "davis_density",
    "bunch_wld",
    "bin_wld",
    "max_bunch_count",
    "rent_terminals",
    "WLDSummary",
    "cdf_distance",
    "share_at_least",
    "summarize",
    "average_fanout",
    "total_connections",
    "uniform_wld",
    "geometric_wld",
    "single_length_wld",
    "wld_from_pairs",
    "Net",
    "decompose_net",
    "wld_from_nets",
    "synthetic_netlist",
    "save_wld_csv",
    "load_wld_csv",
    "save_wld_json",
    "load_wld_json",
]
