"""Public rank API.

:func:`compute_rank` is the library's front door: it takes a
:class:`~repro.core.problem.RankProblem`, applies the requested
coarsening, runs the requested solver, and returns a
:class:`RankResult` carrying the absolute rank, the normalized rank the
paper's Table 4 reports (rank / total wires), the Definition 3 fits
flag, and the coarsening error bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..errors import RankComputationError
from .discretize import DEFAULT_REPEATER_UNITS
from .dp import (
    RawSolution,
    SolverStats,
    WitnessSegment,
    check_deadline,
    resolve_backend,
    solve_rank_dp,
)
from .exhaustive import solve_rank_exhaustive
from .greedy import solve_rank_greedy
from .problem import RankProblem
from .reference import solve_rank_reference

if TYPE_CHECKING:
    from .precompute import PrecomputeCache

#: Registered solver names.
SOLVERS = ("dp", "greedy", "reference", "exhaustive")


@dataclass(frozen=True)
class RankResult:
    """Outcome of one rank computation.

    Attributes
    ----------
    rank:
        The IA's rank: number of wires in the maximal prefix of the WLD
        (longest first) that all meet their target delays; 0 when the
        WLD does not fit (Definition 3).
    normalized:
        ``rank / total_wires`` — the quantity the paper's Table 4
        reports.
    total_wires:
        The paper's ``n`` (of the *original*, uncoarsened WLD).
    fits:
        Definition 3's condition: all wires assignable ignoring delay.
    error_bound:
        Bunching rank error bound (max coarse group size); 0 for exact
        (unit-count) runs is never claimed — a bound of ``g`` means the
        true rank lies within ``rank ± g`` of the reported value.
    solver:
        Which solver produced the result.
    stats:
        Instrumentation counters from the solver.
    witness:
        Optional winning prefix assignment (DP solver only).
    """

    rank: int
    normalized: float
    total_wires: int
    fits: bool
    error_bound: int
    solver: str
    stats: SolverStats
    witness: Optional[Tuple[WitnessSegment, ...]] = None

    def summary(self) -> str:
        """One-line human-readable result."""
        status = "fits" if self.fits else "DOES NOT FIT (rank 0 by Definition 3)"
        return (
            f"rank {self.rank} / {self.total_wires} wires "
            f"(normalized {self.normalized:.6f}, +/-{self.error_bound}; "
            f"{status}; solver={self.solver}, "
            f"{self.stats.runtime_seconds * 1e3:.1f} ms)"
        )


def compute_rank(
    problem: RankProblem,
    solver: str = "dp",
    bunch_size: Optional[int] = None,
    max_groups: Optional[int] = None,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
    collect_witness: bool = False,
    deadline: Optional[float] = None,
    cache: Optional["PrecomputeCache"] = None,
    backend: Optional[str] = None,
) -> RankResult:
    """Compute the rank of the problem's architecture.

    Parameters
    ----------
    problem:
        The architecture / WLD / budget / targets bundle.
    solver:
        ``"dp"`` (exact, default), ``"greedy"`` (the Figure 2 baseline),
        ``"reference"`` (faithful wire-at-a-time DP, tiny instances) or
        ``"exhaustive"`` (brute force, tiny instances).
    bunch_size:
        Paper Section 5.1 bunching: cap on wires per coarse group (the
        paper uses 10000 for its 1M-gate studies).
    max_groups:
        Paper footnote-7 binning: cap on the number of distinct coarse
        lengths.
    repeater_units:
        Budget cells for the repeater-area discretization.
    collect_witness:
        DP only: also reconstruct the winning prefix assignment.
    deadline:
        Optional absolute ``time.monotonic()`` wall-clock deadline.
        The DP solver checks it cooperatively inside its main loop;
        the other solvers check it once before solving.  Raises
        :class:`~repro.errors.DeadlineExceeded` when it has passed.
    cache:
        Optional :class:`~repro.core.precompute.PrecomputeCache`: reuse
        coarsened WLDs and assignment tables across value-identical
        requests (sweep points, corner retries, search revisits).
    backend:
        DP transition-kernel backend: ``"numpy"`` (vectorized) or
        ``"python"`` (scalar reference).  ``None`` defers to the
        ``REPRO_RANK_BACKEND`` environment variable, then ``"numpy"``.
        Both backends produce identical results; only the DP solver
        consults it (the other solvers ignore it, but the name is
        still validated so typos fail loudly).

    Returns
    -------
    RankResult
    """
    if solver not in SOLVERS:
        raise RankComputationError(
            f"unknown solver {solver!r}; choose from {SOLVERS}"
        )
    if backend is not None:
        resolve_backend(backend)  # validate eagerly, for every solver
    tables, error_bound = problem.tables(
        bunch_size=bunch_size, max_groups=max_groups, cache=cache
    )
    check_deadline(deadline, where="compute_rank (after table build)")

    raw: RawSolution
    if solver == "dp":
        raw = solve_rank_dp(
            tables,
            repeater_units=repeater_units,
            collect_witness=collect_witness,
            deadline=deadline,
            backend=backend,
        )
    elif solver == "greedy":
        raw = solve_rank_greedy(tables)
    elif solver == "reference":
        raw = solve_rank_reference(tables, repeater_units=repeater_units)
    else:
        raw = solve_rank_exhaustive(tables, repeater_units=repeater_units)

    total = problem.wld.total_wires
    return RankResult(
        rank=raw.rank,
        normalized=raw.rank / total if total else 0.0,
        total_wires=total,
        fits=raw.fits,
        error_bound=error_bound if raw.fits else 0,
        solver=solver,
        stats=raw.stats,
        witness=raw.witness,
    )
