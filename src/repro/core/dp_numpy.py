"""Vectorized (NumPy) transition kernels for the rank DP.

Same recurrence and state space as the scalar loop in
:mod:`repro.core.dp`, but one *whole layer-pair* of work per kernel
call instead of one ``(b, r)`` state at a time:

* every strict-improvement source state of ``F[pair-1]`` is located
  with one boolean scan,
* all their prefix extensions are flattened into one ragged candidate
  array (``repeat``/``cumsum``/``arange``) and scatter-minimized into
  ``F[pair]`` with ``np.minimum.at``; infeasible candidates are routed
  to a dummy overflow cell instead of compressed away, so the hot path
  never boolean-indexes a multi-million-element array,
* witness parents are *not* tracked during the forward pass — the
  kernel retains each pair's pre-cummin ``F`` table and compact state
  arrays, and :func:`_recover_parents` re-derives the parent of the
  one cell per pair the backward walk actually visits,
* the rank-candidate scan runs level-major — highest end group first
  across *all* states — with a vectorized
  :func:`~repro.assign.greedy_assign.pack_required_leftover` threshold
  test pruning provably-failing candidates before any scalar
  :func:`~repro.assign.greedy_assign.pack_suffix` call.

Exactness contract (enforced by ``tests/core/test_backends.py`` and
``tests/core/test_cross_validation.py``): ranks, witnesses, and the
deterministic ``SolverStats`` counters (``rows``, ``states_explored``,
``transitions``) are identical to the python backend.  This holds
bit-for-bit, not just approximately, because every floating-point
quantity (capacity, cell cost, repeater count, leftover) is computed by
the same sequence of IEEE operations as the scalar loop; candidate
*order* is preserved (states row-major in ``(b, r)``, ends ascending),
so equal-value tie-breaks resolve to the same winner.  The pack
accounting (``pack_checks`` / ``pack_successes`` / ``pack_pruned``)
measures this backend's own pruning schedule and legitimately differs.

The level-major rank scan is sound for the same reason the scalar
memo is: for a fixed (end group, pair), suffix feasibility is a
monotone threshold in the top pair's leftover, and the threshold is
monotone non-decreasing in the prefix repeater count ``z`` — so the
threshold computed at the *smallest* ``z`` of a level lower-bounds
every candidate, and candidates below it (with the same conservative
``1 - 1e-9`` margin the scalar memo uses) cannot pack.  A success at
the highest surviving level ends the pair: lower levels can only
produce smaller ranks.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

import numpy as np

from ..assign.greedy_assign import pack_required_leftover, pack_suffix
from ..assign.tables import AssignmentTables
from ..obs.metrics import metrics_enabled as _metrics_enabled
from ..obs.metrics import observe as _obs_observe
from .discretize import CEIL_EPS
from .dp import check_deadline

#: Conservative relative margin for threshold pruning — identical to the
#: scalar backend's memo margin, so near-tie leftovers fall through to a
#: real pack call on both backends.
_PRUNE_MARGIN = 1.0 - 1e-9


def solve_pairs_numpy(
    tables: AssignmentTables,
    disc,
    stats,
    collect_witness: bool,
    deadline: Optional[float],
):
    """Run the DP pair loop with whole-pair vectorized kernels.

    Returns ``(best_rank, best_trace, parent_b, parent_r)`` exactly as
    :func:`repro.core.dp._solve_pairs_python` does.
    """
    num_units = disc.num_units
    unit_area = disc.unit_area
    num_groups = tables.num_groups
    num_pairs = tables.num_pairs
    cum_wires = tables.cum_wires
    vias = tables.vias_per_wire
    routing = tables.routing_capacity

    inf = math.inf
    shape = (num_groups + 1, num_units + 1)
    width = num_units + 1
    size = shape[0] * width
    f_prev = np.full(shape, inf)
    f_prev[0, 0] = 0.0
    f_prev = np.minimum.accumulate(f_prev, axis=1)

    best_rank = 0
    best_trace: Optional[Tuple[int, int, int, int]] = None  # (pair, b, e, r_pred)
    # Per-pair (bs, rs, zs, e_hi, f_new) snapshots for the lazy
    # backward parent recovery; only kept when a witness is requested.
    snapshots: List[Tuple[np.ndarray, ...]] = []
    transition_s = 0.0
    rank_scan_s = 0.0

    for pair in range(num_pairs):
        stats.rows += num_groups + 1
        check_deadline(deadline, where=f"dp pair {pair} (numpy kernel)")
        t0 = time.perf_counter()

        cum_area = tables.cum_wire_area[pair]
        cum_rep = tables.cum_rep_area[pair]
        cum_ins = tables.cum_inserted[pair]
        delay_limit = tables.next_infeasible[pair]
        via_area = float(tables.via_area[pair])

        # --- Transition sources: strict-improvement states of f_prev.
        # f_prev is cummin'd over r (non-increasing rows), so "value
        # strictly better than every smaller budget" is exactly a
        # strict decrease from the left neighbour.
        use = np.isfinite(f_prev)
        use[:, 1:] &= f_prev[:, 1:] < f_prev[:, :-1]
        bs, rs = np.nonzero(use)  # row-major == the scalar loop's order
        stats.states_explored += len(bs)

        # F[pair] lives in a flat buffer with one extra overflow cell;
        # infeasible candidates scatter there and are never read back.
        flat = np.full(size + 1, inf)
        f_new = flat[:size].reshape(shape)

        scan_es = scan_nz = scan_left = scan_b = scan_r = None
        if len(bs):
            zs = f_prev[bs, rs]
            wires_above = cum_wires[bs].astype(float)
            capacity = np.maximum(
                0.0, routing - (zs + vias * wires_above) * via_area
            )

            # Largest prefix extension each state can hold by area,
            # capped by the delay wall.
            e_hi = (
                np.searchsorted(
                    cum_area, cum_area[bs] + capacity * (1 + 1e-12), side="right"
                )
                - 1
            )
            e_hi = np.minimum(e_hi, delay_limit[bs])
            keep = e_hi >= bs
            bs, rs, zs, capacity, e_hi = (
                bs[keep], rs[keep], zs[keep], capacity[keep], e_hi[keep]
            )

        total = 0
        if len(bs):
            # Ragged flatten: candidate c of state s extends the prefix
            # to end group es[c] in [bs[s], e_hi[s]].  Per-state scalars
            # are broadcast with sequential np.repeat — never a random
            # gather — and nothing is compressed until the (tiny)
            # rank-scan subset below.
            lens = e_hi - bs + 1
            offsets = np.concatenate(([0], np.cumsum(lens)))
            total = int(offsets[-1])
            ar = np.arange(total)
            es = ar - np.repeat(offsets[:-1] - bs, lens)

            # Cell cost of the slice [b, e): same IEEE ops as
            # RepeaterDiscretization.slice_units — subtract the
            # *state's* cumulative (repeated), divide, epsilon-ceil.
            with np.errstate(invalid="ignore"):
                areas = cum_rep[es] - np.repeat(cum_rep[bs], lens)
                if math.isinf(unit_area):
                    du = np.where(areas > 0.0, np.inf, 0.0)
                else:
                    du = np.ceil(areas / unit_area - CEIL_EPS)
                    du = np.where(areas <= 0.0, 0.0, du)
                # nan (poisoned slice) and inf both fail the budget
                # test below, exactly like the scalar inf mapping.
                rs_rep = np.repeat(rs, lens)
                nr = rs_rep + du
                valid = nr <= num_units
                stats.transitions += int(np.count_nonzero(valid))

                nz = np.repeat(zs, lens) + (
                    cum_ins[es] - np.repeat(cum_ins[bs], lens)
                )
                # Scatter targets; infeasible candidates go to the
                # overflow cell `size` (cast garbage from inf/nan is
                # overwritten before use).
                lin = es * width
                lin += nr.astype(np.int64)
            np.copyto(lin, size, where=~valid)

            # Scatter-min all candidates into F[pair] at once.  The
            # value is order-independent; _recover_parents re-derives
            # the scalar loop's strict-improvement winner (the first
            # candidate in processing order attaining the min) for the
            # cells the witness walk visits.
            np.minimum.at(flat, lin, nz)

            # --- Rank candidates: only ends whose cumulative wire
            # count beats the running best can improve the rank, and
            # cum_wires is increasing — so the filter is a pure index
            # threshold, applied *before* any compression.
            thr = int(np.searchsorted(cum_wires, best_rank, side="right"))
            scan_idx = np.flatnonzero(valid & (es >= thr))
            if len(scan_idx):
                sid_s = np.searchsorted(offsets, scan_idx, side="right") - 1
                scan_es = es[scan_idx]
                scan_nz = nz[scan_idx]
                scan_b = bs[sid_s]
                scan_r = rs[sid_s]
                scan_left = capacity[sid_s] - (
                    cum_area[scan_es] - cum_area[scan_b]
                )

        transition_s += time.perf_counter() - t0

        # --- Rank candidates, level-major: highest end group first.
        t1 = time.perf_counter()
        if scan_es is not None:
            hit = _scan_rank_levels(
                tables, stats, deadline, pair, best_rank,
                scan_es, scan_nz, scan_left, scan_b, scan_r,
            )
            if hit is not None:
                best_rank, best_trace = hit
        rank_scan_s += time.perf_counter() - t1

        # --- Close the pair: cummin over the budget axis.
        if collect_witness:
            snapshots.append((bs, rs, zs, e_hi, f_new) if len(bs) else None)
        f_prev = np.minimum.accumulate(f_new, axis=1)

    if _metrics_enabled():
        _obs_observe("solver.dp.kernel.transition_s", transition_s)
        _obs_observe("solver.dp.kernel.rank_scan_s", rank_scan_s)

    parent_b: List = []
    parent_r: List = []
    if collect_witness and best_trace is not None:
        parent_b, parent_r = _recover_parents(tables, disc, snapshots, best_trace)
    return best_rank, best_trace, parent_b, parent_r


def _recover_parents(
    tables: AssignmentTables,
    disc,
    snapshots: List[Optional[Tuple[np.ndarray, ...]]],
    best_trace: Tuple[int, int, int, int],
):
    """Re-derive parent pointers along the winning path only.

    The witness walk in :func:`repro.core.dp._reconstruct_witness`
    reads exactly one ``parent[p][b, r]`` cell per pair, so instead of
    attributing parents to every DP cell during the forward pass the
    kernel retains per-pair snapshots and this function answers the few
    queries after the fact, by the same two rules the scalar loop
    applies eagerly:

    * the cummin source of ``(b, r)`` is the *last* column ``c <= r``
      whose pre-cummin value attains the running minimum (a tie keeps
      its own column's parent);
    * the parent of a pre-cummin cell is the *first* transition
      candidate in processing order (states row-major in ``(b, r)``)
      attaining its value.

    Returns ``(parent_b, parent_r)`` lists of dicts keyed ``(b, r)``,
    drop-in compatible with the dense arrays' ``[b, r]`` indexing for
    the cells the walk visits.
    """
    pair_t, b_t, _e_t, r_t = best_trace
    unit_area = disc.unit_area
    parent_b: List[dict] = [dict() for _ in range(pair_t)]
    parent_r: List[dict] = [dict() for _ in range(pair_t)]

    cur_b, cur_r = b_t, r_t
    for p in range(pair_t - 1, -1, -1):
        pb_val = pr_val = -1
        snap = snapshots[p]
        if snap is not None:
            bs, rs, zs, e_hi, f_new = snap
            row = f_new[cur_b]
            runmin = np.minimum.accumulate(row[: cur_r + 1])
            att = np.flatnonzero(row[1 : cur_r + 1] <= runmin[:cur_r])
            c = int(att[-1]) + 1 if len(att) else 0
            value = row[c]

            cum_rep = tables.cum_rep_area[p]
            cum_ins = tables.cum_inserted[p]
            cand = np.flatnonzero((bs <= cur_b) & (e_hi >= cur_b))
            if len(cand) and math.isfinite(value):
                sb = bs[cand]
                with np.errstate(invalid="ignore"):
                    areas = cum_rep[cur_b] - cum_rep[sb]
                    if math.isinf(unit_area):
                        du = np.where(areas > 0.0, np.inf, 0.0)
                    else:
                        du = np.ceil(areas / unit_area - CEIL_EPS)
                        du = np.where(areas <= 0.0, 0.0, du)
                    nr = rs[cand] + du
                    nz = zs[cand] + (cum_ins[cur_b] - cum_ins[sb])
                    hits = np.flatnonzero((nr == c) & (nz == value))
                if len(hits):
                    i = int(cand[hits[0]])
                    pb_val = int(bs[i])
                    pr_val = int(rs[i])
        parent_b[p][cur_b, cur_r] = pb_val
        parent_r[p][cur_b, cur_r] = pr_val
        if pb_val < 0:
            break  # the walk raises on the -1 it is about to read
        cur_b, cur_r = pb_val, pr_val
    return parent_b, parent_r


def _scan_rank_levels(
    tables: AssignmentTables,
    stats,
    deadline: Optional[float],
    pair: int,
    best_rank: int,
    es_v: np.ndarray,
    nz_v: np.ndarray,
    leftover_v: np.ndarray,
    b_v: np.ndarray,
    r_v: np.ndarray,
):
    """Find the pair's best rank candidate that actually packs.

    Inputs are pre-filtered to levels strictly above ``best_rank``.
    Scans end-group levels in descending order; within a level,
    candidates keep the transition kernel's processing order (states
    row-major in ``(b, r)``), so the first packing candidate is the
    same one the scalar loop's running-best scan would have committed.
    Returns ``(rank, (pair, b, e, r))`` for the first success, or
    ``None`` when no candidate on this pair beats ``best_rank``.
    """
    cum_wires = tables.cum_wires

    # Group candidates by level, preserving order within each level.
    # Levels fit comfortably in int32 and numpy's stable argsort uses
    # radix sort for integer keys, so this is O(n) in practice.
    order = np.argsort(es_v.astype(np.int32), kind="stable")
    sorted_es = es_v[order]
    levels, starts = np.unique(sorted_es, return_index=True)
    bounds = np.append(starts, len(sorted_es))

    for li in range(len(levels) - 1, -1, -1):
        e = int(levels[li])
        wires_e = int(cum_wires[e])
        if wires_e <= best_rank:
            break  # descending levels: every remaining one is smaller
        check_deadline(deadline, where=f"dp pair {pair}, rank level {e}")
        idxs = order[bounds[li]:bounds[li + 1]]
        cz = nz_v[idxs]
        cleft = leftover_v[idxs]

        # Vectorized threshold prune: the required leftover at the
        # level's smallest z lower-bounds every candidate's threshold.
        req0 = pack_required_leftover(
            tables, e, pair, wires_e, float(cz.min())
        )
        alive = cleft >= req0 * _PRUNE_MARGIN
        stats.pack_pruned += int(len(idxs) - alive.sum())

        while True:
            cand = np.flatnonzero(alive)
            if cand.size == 0:
                break
            i = int(cand[0])
            stats.pack_checks += 1
            if pack_suffix(
                tables,
                e,
                pair,
                wires_e,
                float(cz[i]),
                top_pair_leftover=float(cleft[i]),
            ):
                stats.pack_successes += 1
                j = idxs[i]
                return wires_e, (pair, int(b_v[j]), e, int(r_v[j]))
            alive[i] = False
            # Tighten: the exact threshold at the failed z prunes every
            # candidate it dominates (z' >= z needs at least as much
            # leftover), with the same conservative margin.
            req = pack_required_leftover(tables, e, pair, wires_e, float(cz[i]))
            pruned = alive & (cz >= cz[i]) & (cleft < req * _PRUNE_MARGIN)
            stats.pack_pruned += int(pruned.sum())
            alive &= ~pruned
    return None
