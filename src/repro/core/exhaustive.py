"""Exhaustive rank computation for tiny instances.

Enumerates *every* monotone assignment — every way of splitting the
rank-ordered wire list into ``m`` contiguous blocks, one per layer-pair
top-down (the paper's "longer wires on upper layer-pairs" assumption
fixes this shape) — and for each, the largest all-meeting prefix ``k``
that survives capacity, via blockage, and budget accounting.

This is the optimality oracle of the test suite: DP and reference
solvers must agree with it exactly on unit-count WLDs (where group
granularity equals wire granularity).  It also independently validates
the paper's Lemma 1: whenever ``greedy_assign`` reports the suffix
unpackable, no enumerated partition packs it either.
"""

from __future__ import annotations

import math
import time
from itertools import combinations
from typing import Iterator, Tuple

from ..assign.tables import AssignmentTables
from ..errors import RankComputationError
from .discretize import DEFAULT_REPEATER_UNITS, discretize_repeaters
from .dp import RawSolution, SolverStats


def _partitions(n: int, m: int) -> Iterator[Tuple[int, ...]]:
    """All ways to split ``n`` ordered wires into ``m`` ordered blocks.

    Yields the block boundaries as an ``(m + 1)``-tuple ``b`` with
    ``b[0] = 0 <= b[1] <= ... <= b[m] = n``: pair ``p`` gets wires
    ``[b[p], b[p+1])``.
    """
    for cuts in combinations(range(n + m - 1), m - 1):
        boundary = [0]
        for index, cut in enumerate(cuts):
            boundary.append(cut - index)
        boundary.append(n)
        yield tuple(boundary)


def _prefix_feasible(
    tables: AssignmentTables,
    disc,
    boundary: Tuple[int, ...],
    k: int,
) -> bool:
    """Is the partition feasible with the first ``k`` wires all meeting?"""
    m = tables.num_pairs
    num_cells = disc.num_units

    # Repeater demand of the prefix, per pair.  Budget cells are charged
    # once per (pair, block) — the shared discretization semantics.
    cells_total = 0.0
    reps_by_pair = [0] * m
    for pair in range(m):
        pair_rep_area = 0.0
        for wire in range(boundary[pair], min(boundary[pair + 1], k)):
            stages = int(tables.stages[pair][wire])
            if stages < 0:
                return False
            if stages > 0:  # charged stages; 0 = free bare-driver pass
                pair_rep_area += stages * float(tables.repeater_unit_area[pair])
                reps_by_pair[pair] += stages - 1
        cells_total += disc.area_to_units(pair_rep_area)
    if cells_total > num_cells:
        return False

    # Capacity with via blockage from wires and repeaters above.
    reps_above = 0
    for pair in range(m):
        capacity = tables.capacity(pair, boundary[pair], reps_above)
        area = float(
            tables.cum_wire_area[pair][boundary[pair + 1]]
            - tables.cum_wire_area[pair][boundary[pair]]
        )
        if area > capacity * (1 + 1e-12):
            return False
        reps_above += reps_by_pair[pair]
    return True


def solve_rank_exhaustive(
    tables: AssignmentTables,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
) -> RawSolution:
    """Exact rank by brute force (unit-count WLDs, tiny ``n`` only).

    Raises
    ------
    RankComputationError
        If any group holds more than one wire.
    """
    if any(int(c) != 1 for c in tables.counts):
        raise RankComputationError(
            "the exhaustive solver requires one wire per group; "
            "expand the WLD to unit counts first"
        )
    start_time = time.perf_counter()
    stats = SolverStats(solver="exhaustive")

    disc = discretize_repeaters(tables, repeater_units)
    n = tables.num_groups
    m = tables.num_pairs

    best_rank = -1  # -1 = not even k=0 feasible anywhere (does not fit)
    for boundary in _partitions(n, m):
        stats.states_explored += 1
        # Feasibility is monotone in k (larger prefixes only add
        # constraints), so scan downward and stop at the first success.
        low = best_rank + 1 if best_rank >= 0 else 0
        for k in range(n, low - 1, -1):
            stats.transitions += 1
            if _prefix_feasible(tables, disc, boundary, k):
                best_rank = max(best_rank, k)
                break

    stats.runtime_seconds = time.perf_counter() - start_time
    if best_rank < 0:
        return RawSolution(rank=0, fits=False, stats=stats)
    return RawSolution(rank=best_rank, fits=True, stats=stats)
