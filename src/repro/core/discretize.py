"""Repeater-area discretization shared by every solver.

The paper's DP indexes repeater area by integer cells ``r = 1 .. A_R``.
We discretize the physical budget ``A_R`` (m^2) into ``repeater_units``
cells and charge each *contiguous per-layer-pair block* of wires the
ceiling of its exact repeater area in cells.  Rounding happens once per
(layer-pair, block) — not per wire or per group — so a solution path
through ``m`` layer-pairs is overcharged by at most ``m`` cells out of
``repeater_units``: conservative (discretized-feasible implies
physically feasible) with an error that vanishes as ``repeater_units``
grows (exercised by ``benchmarks/bench_discretization.py``).

Every solver (optimized DP, reference DP, exhaustive) charges budgets
through this module so that cross-validation tests compare identical
semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..assign.tables import AssignmentTables
from ..errors import RankComputationError

#: Default number of repeater-area cells.
DEFAULT_REPEATER_UNITS = 512

#: Slack used when ceiling areas to cells, so exact multiples do not
#: round up on floating-point noise.
CEIL_EPS = 1e-9


@dataclass(frozen=True)
class RepeaterDiscretization:
    """Budget cells and block-cost evaluation.

    Attributes
    ----------
    num_units:
        Number of budget cells ``R`` (0 when the budget is zero).
    unit_area:
        Area of one cell in square metres (``inf`` when the budget is
        zero, so any positive demand is unaffordable).
    cum_rep_area:
        ``(m, G+1)`` exact cumulative repeater areas per pair, with
        ``+inf`` poisoning at delay-infeasible groups (shared with the
        assignment tables).
    """

    num_units: int
    unit_area: float
    cum_rep_area: np.ndarray

    def area_to_units(self, area: float) -> float:
        """Cells needed to pay for an exact area (``inf`` if unpayable)."""
        if area <= 0.0:
            return 0.0
        if not math.isfinite(area) or math.isinf(self.unit_area):
            return math.inf
        return math.ceil(area / self.unit_area - CEIL_EPS)

    def slice_units(self, pair: int, start: int, end: int) -> float:
        """Cell cost of groups ``[start, end)`` assigned to ``pair``.

        ``inf`` if any group in the slice cannot meet delay there (the
        poisoned cumulative sum) or the budget is zero while the slice
        needs repeaters.
        """
        area = float(self.cum_rep_area[pair][end] - self.cum_rep_area[pair][start])
        if math.isnan(area):  # inf - inf when both ends are poisoned
            return math.inf
        return self.area_to_units(area)

    def slice_units_batch(self, pair: int, start: int, ends: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`slice_units` over many slice ends."""
        return self.slice_units_spans(pair, start, ends)

    def slice_units_spans(self, pair: int, starts, ends) -> np.ndarray:
        """Vectorized :meth:`slice_units` over arbitrary (start, end) spans.

        ``starts`` and ``ends`` broadcast against each other; this is the
        form the whole-pair NumPy transition kernel needs (one start per
        DP state, many ends per start, all flattened into one call).
        Arithmetic is kept identical to :meth:`slice_units` so the two
        backends charge bit-identical cell costs.
        """
        with np.errstate(invalid="ignore"):
            # inf - inf -> nan when both cumulative ends are poisoned;
            # treated as infeasible below.
            areas = self.cum_rep_area[pair][ends] - self.cum_rep_area[pair][starts]
            if math.isinf(self.unit_area):
                units = np.where(areas > 0.0, np.inf, 0.0)
            else:
                units = np.ceil(areas / self.unit_area - CEIL_EPS)
                units = np.where(areas <= 0.0, 0.0, units)
        return np.where(np.isnan(units), np.inf, units)


def discretize_repeaters(
    tables: AssignmentTables, repeater_units: int = DEFAULT_REPEATER_UNITS
) -> RepeaterDiscretization:
    """Build the shared discretization for one problem's tables."""
    if repeater_units <= 0:
        raise RankComputationError(
            f"repeater_units must be positive, got {repeater_units!r}"
        )
    budget = tables.repeater_budget_area
    if budget <= 0.0:
        num_units = 0
        unit_area = math.inf
    else:
        num_units = repeater_units
        unit_area = budget / repeater_units
    return RepeaterDiscretization(
        num_units=num_units,
        unit_area=unit_area,
        cum_rep_area=tables.cum_rep_area,
    )
