"""Faithful wire-at-a-time reference implementation of Algorithms 1-5.

This solver re-implements the paper's procedures as literally as
practical — per-wire loops, *incremental* repeater insertion (Algorithm 4
steps 8-11: add one repeater at a time until the target is met or adding
repeaters stops helping), an explicit bottom-up per-wire packer with via
reservations (Algorithm 5), and a dictionary-based DP over the
``(wires assigned, budget cells, repeater count)`` states of the Eq. (1)
recurrence restricted to its reachable all-meeting form.

It is deliberately *implementation-independent* from
:mod:`repro.core.dp` (no shared prefix sums, no closed-form stage
counts, no vectorization) while having identical semantics, so agreement
between the two on randomized instances is strong evidence both are
right (``tests/core/test_cross_validation.py``).  It requires a WLD with
one wire per group (expand or use count-1 synthetic WLDs) and is only
suitable for small ``n``.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional, Tuple

from ..assign.tables import AssignmentTables
from ..delay.ottenbrayton import wire_delay
from ..errors import RankComputationError
from .discretize import DEFAULT_REPEATER_UNITS, discretize_repeaters
from .dp import RawSolution, SolverStats


def _incremental_insertion(
    tables: AssignmentTables, pair: int, wire: int
) -> Optional[Tuple[int, int]]:
    """Algorithm 4's inner loop: add repeater stages until the target is met.

    Returns ``(charged_stages, inline_repeaters)`` — 0 charged stages
    when the bare minimum-size driver already meets the target, else the
    minimal count of budgeted size-``s_opt`` stages (the upsized driver
    included) and the ``charged - 1`` repeaters physically inline — or
    ``None`` when no stage count meets the target (delay stops improving
    while still above target).
    """
    rc = tables.arch.pair(pair).rc
    device = tables.die.node.device
    size = float(tables.repeater_size[pair])
    length = float(tables.lengths_m[wire])
    target = float(tables.targets[wire])

    if tables.driver_policy == "free-bare" and (
        wire_delay(rc, device, 1.0, 1, length) <= target
    ):
        return 0, 0  # free pass from the bare minimum-size driver

    stages = 1
    delay = wire_delay(rc, device, size, stages, length)
    while delay > target:
        stages += 1
        next_delay = wire_delay(rc, device, size, stages, length)
        if next_delay >= delay:
            return None  # adding repeaters no longer helps
        delay = next_delay
    return stages, stages - 1


def _wire_assign(
    tables: AssignmentTables,
    disc,
    pair: int,
    start_wire: int,
    end_wire: int,
    wires_above: int,
    repeaters_above: int,
    cells_available: int,
) -> Optional[Tuple[int, int, float]]:
    """The M' oracle, per-wire (Algorithm 4).

    Assign wires ``[start_wire, end_wire)`` to ``pair``, each meeting
    its target via incremental insertion, within ``cells_available``
    budget cells.  Returns ``(cells_used, repeaters_inserted,
    leftover_capacity)`` or ``None`` if infeasible.
    """
    capacity = tables.capacity(pair, wires_above, repeaters_above)
    area_used = 0.0
    rep_area_used = 0.0
    repeaters = 0
    for wire in range(start_wire, end_wire):
        area = float(tables.lengths_m[wire]) * float(tables.pair_pitch[pair])
        if area_used + area > capacity * (1 + 1e-12):
            return None
        area_used += area
        insertion = _incremental_insertion(tables, pair, wire)
        if insertion is None:
            return None
        charged, inline = insertion
        if charged:
            rep_area_used += charged * float(tables.repeater_unit_area[pair])
            # Budget cells are charged once per (pair, block), matching
            # the shared discretization semantics.
            if disc.area_to_units(rep_area_used) > cells_available:
                return None
            repeaters += inline
    cells_used = disc.area_to_units(rep_area_used)
    if math.isinf(cells_used):
        return None
    return int(cells_used), repeaters, capacity - area_used


def _greedy_pack(
    tables: AssignmentTables,
    start_wire: int,
    top_pair: int,
    wires_above: int,
    repeaters_above: int,
    top_pair_leftover: Optional[float] = None,
) -> bool:
    """The M'' oracle, per-wire (Algorithm 5, literal port).

    Packs wires shortest-first into pairs bottom-up; while packing pair
    ``q`` it reserves one via footprint per still-unassigned wire (they
    will land above ``q`` and punch through it).
    """
    n = tables.num_groups
    if start_wire == n:
        return True
    if top_pair >= tables.num_pairs:
        return False

    unassigned = list(range(n - 1, start_wire - 1, -1))  # shortest first
    pointer = 0
    for pair in range(tables.num_pairs - 1, top_pair - 1, -1):
        if pointer >= len(unassigned):
            return True
        if pair == top_pair and top_pair_leftover is not None:
            capacity = top_pair_leftover
        else:
            capacity = tables.capacity(pair, wires_above, repeaters_above)
        via_footprint = tables.vias_per_wire * float(tables.via_area[pair])
        area_used = 0.0
        while pointer < len(unassigned):
            wire = unassigned[pointer]
            area = float(tables.lengths_m[wire]) * float(tables.pair_pitch[pair])
            remaining_after = len(unassigned) - pointer - 1
            if (
                area_used + area + remaining_after * via_footprint
                > capacity * (1 + 1e-12)
            ):
                break  # pair full
            area_used += area
            pointer += 1
    return pointer >= len(unassigned)


def solve_rank_reference(
    tables: AssignmentTables,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
) -> RawSolution:
    """Rank by the faithful wire-at-a-time DP (small instances only).

    Raises
    ------
    RankComputationError
        If the WLD has groups with more than one wire (expand first) —
        the reference is defined at wire granularity.
    """
    if any(int(c) != 1 for c in tables.counts):
        raise RankComputationError(
            "the reference solver requires one wire per group; "
            "expand the WLD to unit counts first"
        )
    start_time = time.perf_counter()
    stats = SolverStats(solver="reference")

    disc = discretize_repeaters(tables, repeater_units)
    n = tables.num_groups
    m = tables.num_pairs
    num_cells = disc.num_units

    if not _greedy_pack(tables, 0, 0, 0, 0):
        stats.runtime_seconds = time.perf_counter() - start_time
        return RawSolution(rank=0, fits=False, stats=stats)

    best_rank = 0
    # states[(b, r)] = minimal repeater count with the first b wires all
    # meeting their targets in pairs 0..j using at most r cells.
    states: Dict[Tuple[int, int], int] = {(0, 0): 0}

    for pair in range(m):
        new_states: Dict[Tuple[int, int], int] = {}

        def offer(key: Tuple[int, int], reps: int) -> None:
            if key not in new_states or reps < new_states[key]:
                new_states[key] = reps

        for (b, r), z in states.items():
            stats.states_explored += 1
            # Extend the prefix into this pair one wire at a time; stop
            # at the first infeasibility (area or delay or budget).
            for e in range(b, n + 1):
                result = _wire_assign(
                    tables, disc, pair, b, e, b, z, num_cells - r
                )
                if result is None:
                    break
                cells_used, repeaters, leftover = result
                stats.transitions += 1
                offer((e, r + cells_used), z + repeaters)
                if e > best_rank:
                    stats.pack_checks += 1
                    if _greedy_pack(
                        tables, e, pair, e, z + repeaters, leftover
                    ):
                        stats.pack_successes += 1
                        best_rank = e
        # Merge: keep dominance over budget (a state reachable with
        # fewer cells is also reachable with more).
        merged: Dict[Tuple[int, int], int] = dict(states)
        for key, reps in new_states.items():
            if key not in merged or reps < merged[key]:
                merged[key] = reps
        # Budget-monotone closure per wire count.
        closed: Dict[Tuple[int, int], int] = {}
        by_b: Dict[int, Dict[int, int]] = {}
        for (b, r), z in merged.items():
            by_b.setdefault(b, {})[r] = min(z, by_b.get(b, {}).get(r, z))
        for b, row in by_b.items():
            best = math.inf
            for r in range(num_cells + 1):
                if r in row and row[r] < best:
                    best = row[r]
                if math.isfinite(best):
                    closed[(b, r)] = int(best)
        states = closed

    stats.runtime_seconds = time.perf_counter() - start_time
    return RawSolution(rank=best_rank, fits=True, stats=stats)
