"""Rank metric core: problem definition and solvers.

* :mod:`repro.core.problem` — :class:`~repro.core.problem.RankProblem`
  bundling architecture, die, WLD, and target model,
* :mod:`repro.core.dp` — the optimized dynamic program (exact at wire-
  group granularity, exploiting the prefix structure of the paper's
  Eq. (1)),
* :mod:`repro.core.reference` — a faithful wire-at-a-time implementation
  of the paper's Algorithms 1-5, used to cross-validate the DP,
* :mod:`repro.core.greedy` — the greedy top-down baseline the paper's
  Figure 2 proves suboptimal,
* :mod:`repro.core.exhaustive` — brute force over all monotone
  assignments (tiny instances; the optimality oracle in tests),
* :mod:`repro.core.rank` — the public :func:`~repro.core.rank.compute_rank`
  entry point and result types,
* :mod:`repro.core.scenarios` — builders for the paper's experimental
  setups (Table 2 baselines).
"""

from .curve import BudgetRankCurve, solve_budget_rank_curve
from .dp import solve_rank_dp
from .exhaustive import solve_rank_exhaustive
from .greedy import solve_rank_greedy
from .precompute import PrecomputeCache
from .problem import RankProblem
from .rank import RankResult, compute_rank
from .reference import solve_rank_reference
from .scenarios import (
    baseline_problem,
    configure_davis_cache,
    davis_cache_info,
    paper_baseline_130nm,
)

__all__ = [
    "PrecomputeCache",
    "RankProblem",
    "RankResult",
    "compute_rank",
    "solve_rank_dp",
    "BudgetRankCurve",
    "solve_budget_rank_curve",
    "solve_rank_greedy",
    "solve_rank_reference",
    "solve_rank_exhaustive",
    "baseline_problem",
    "configure_davis_cache",
    "davis_cache_info",
    "paper_baseline_130nm",
]
