"""Rank metric core: problem definition and solvers.

* :mod:`repro.core.problem` — :class:`~repro.core.problem.RankProblem`
  bundling architecture, die, WLD, and target model,
* :mod:`repro.core.dp` — the optimized dynamic program (exact at wire-
  group granularity, exploiting the prefix structure of the paper's
  Eq. (1)),
* :mod:`repro.core.reference` — a faithful wire-at-a-time implementation
  of the paper's Algorithms 1-5, used to cross-validate the DP,
* :mod:`repro.core.greedy` — the greedy top-down baseline the paper's
  Figure 2 proves suboptimal,
* :mod:`repro.core.exhaustive` — brute force over all monotone
  assignments (tiny instances; the optimality oracle in tests),
* :mod:`repro.core.rank` — the public :func:`~repro.core.rank.compute_rank`
  entry point and result types,
* :mod:`repro.core.scenarios` — builders for the paper's experimental
  setups (Table 2 baselines).
"""

import warnings

from .curve import BudgetRankCurve, solve_budget_rank_curve
from .dp import solve_rank_dp
from .exhaustive import solve_rank_exhaustive
from .greedy import solve_rank_greedy
from .precompute import PrecomputeCache
from .problem import RankProblem
from .rank import RankResult
from .reference import solve_rank_reference
from .scenarios import configure_davis_cache, davis_cache_info

#: Names that moved to the stable facade: importing them from
#: ``repro.core`` still works (module ``__getattr__`` below) but emits
#: a DeprecationWarning pointing at the supported spelling.
_DEPRECATED_REEXPORTS = {
    "compute_rank": ("repro.core.rank", "repro"),
    "baseline_problem": ("repro.core.scenarios", "repro"),
    "paper_baseline_130nm": ("repro.core.scenarios", "repro"),
}


def __getattr__(name: str):
    """Deprecated re-exports, resolved lazily with a warning.

    ``from repro.core import compute_rank`` predates the
    :mod:`repro.api` facade; the supported imports are ``from repro
    import compute_rank`` (the facade) or the defining module directly.
    """
    if name in _DEPRECATED_REEXPORTS:
        source, preferred = _DEPRECATED_REEXPORTS[name]
        warnings.warn(
            f"importing {name!r} from repro.core is deprecated; "
            f"import it from {preferred!r} (or {source!r}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(source), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PrecomputeCache",
    "RankProblem",
    "RankResult",
    "compute_rank",
    "solve_rank_dp",
    "BudgetRankCurve",
    "solve_budget_rank_curve",
    "solve_rank_greedy",
    "solve_rank_reference",
    "solve_rank_exhaustive",
    "baseline_problem",
    "configure_davis_cache",
    "davis_cache_info",
    "paper_baseline_130nm",
]
