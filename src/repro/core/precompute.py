"""Cross-point precompute cache: shared geometry and WLD work.

Sweeps, corner sign-off, and architecture search evaluate hundreds of
:class:`~repro.core.problem.RankProblem` variants that differ in one
knob but share the expensive precomputation underneath — the coarsened
(bunched/binned) WLD is identical across every point of a clock or
repeater-fraction sweep, and repeated evaluations of the *same* problem
(retries after a deadline, repeated corners, search revisits) rebuild
identical :class:`~repro.assign.tables.AssignmentTables` from scratch.

:class:`PrecomputeCache` is a small keyed LRU cache over both stages:

* ``coarsened`` — ``(WLD fingerprint, bunch_size, max_groups)`` →
  coarse WLD + rank error bound,
* ``tables`` — ``(problem fingerprint, bunch_size, max_groups)`` →
  assignment tables + rank error bound.

Keys are content fingerprints (SHA-256 over the pickled object), so two
problems that are equal by value share an entry no matter how they were
constructed.  The cache is a plain picklable object: the batch runner
ships a parent-warmed cache to worker processes once per worker (via the
pool initializer), so parallel sweep workers start with the shared
coarse WLD already in hand.

Hit/miss counters per stage make sweep-level reuse observable; the
benchmark harness (``tools/bench_to_json.py``) records them in
``BENCH_rank.json``.

The module also owns the **shared-memory array handoff** the warm
worker pool is built on: :func:`dumps_hoisted` pickles an object graph
with every dense numpy array *hoisted out* of the byte stream,
:class:`ShmArrayStore` publishes those arrays into one
``multiprocessing.shared_memory`` segment (64-byte-aligned, SHA-256
digested), and :func:`attach_arrays` re-materializes them in a worker
as zero-copy read-only views after validating the digest — the same
content-fingerprint discipline the cache keys use.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RunnerError
from ..faultkit.inject import fault_point
from ..obs.metrics import inc as _obs_inc

#: Default number of cached entries (coarse WLDs + tables combined).
DEFAULT_CACHE_ENTRIES = 32


def fingerprint_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes.

    The one digest primitive every content-addressed key in the
    library shares: the pickle-based :func:`fingerprint` below, the
    shared-memory segment digests, and the wire-schema request
    fingerprints (:mod:`repro.schema`) that key the service's
    memoization cache.
    """
    return hashlib.sha256(data).hexdigest()


def fingerprint(obj: object) -> str:
    """Content fingerprint: SHA-256 over the object's pickle.

    Deterministic for the value-type dataclasses and numpy arrays the
    library is built from: equal values constructed the same way yield
    equal bytes.  A differing fingerprint for equal values is safe — it
    only costs a cache miss, never a wrong hit.
    """
    return fingerprint_bytes(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    )


class PrecomputeCache:
    """Keyed LRU cache for coarsened WLDs and assignment tables.

    Parameters
    ----------
    max_entries:
        Cap on stored entries across both stages; least-recently-used
        entries are evicted first.  ``0`` disables storage (every call
        recomputes; counters still track misses).

    Notes
    -----
    The cache is deliberately *not* thread-safe or process-shared: each
    batch evaluator owns one, and the parallel runner pickles the whole
    evaluator (cache included) to each worker once, after which workers
    populate their copies independently.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._store: "OrderedDict[tuple, object]" = OrderedDict()
        self._hits: Dict[str, int] = {"coarsened": 0, "tables": 0}
        self._misses: Dict[str, int] = {"coarsened": 0, "tables": 0}
        self._evictions = 0

    # ------------------------------------------------------------------
    # Cached stages
    # ------------------------------------------------------------------

    def coarsened(
        self,
        problem,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> Tuple[object, int]:
        """The problem's coarsened WLD and rank error bound, cached.

        Keyed on the *WLD* fingerprint, so every point of a sweep that
        keeps the WLD fixed (C, R, K, M — all of Table 4) shares one
        entry.
        """
        fault_point("precompute.coarsen")
        key = ("coarsened", fingerprint(problem.wld), bunch_size, max_groups)
        entry = self._get("coarsened", key)
        if entry is None:
            entry = problem.coarsened_wld(
                bunch_size=bunch_size, max_groups=max_groups
            )
            self._put(key, entry)
        return entry

    def tables(
        self,
        problem,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> Tuple[object, int]:
        """The problem's assignment tables and error bound, cached.

        Keyed on the full problem fingerprint: only value-identical
        problems share tables (geometry, die, WLD, targets all agree).
        The coarse WLD underneath is resolved through :meth:`coarsened`,
        so a tables *miss* still reuses a shared coarse WLD hit.
        """
        fault_point("precompute.tables")
        key = ("tables", fingerprint(problem), bunch_size, max_groups)
        entry = self._get("tables", key)
        if entry is None:
            coarse, error_bound = self.coarsened(
                problem, bunch_size=bunch_size, max_groups=max_groups
            )
            entry = (problem.tables_on(coarse), error_bound)
            self._put(key, entry)
        return entry

    def warm(
        self,
        problem,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> "PrecomputeCache":
        """Precompute the shared stages for a representative problem.

        Called once in the parent before dispatching a parallel batch:
        the warmed cache then travels to every worker via the pool
        initializer, so no worker redoes the shared coarsening.
        Returns ``self`` for chaining.
        """
        self.coarsened(problem, bunch_size=bunch_size, max_groups=max_groups)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage hit/miss counters, evictions, and entry count."""
        return {
            "hits": dict(self._hits),
            "misses": dict(self._misses),
            "evictions": self._evictions,
            "entries": {"current": len(self._store), "max": self.max_entries},
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self._evictions = 0
        for counters in (self._hits, self._misses):
            for stage in counters:
                counters[stage] = 0

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------

    def _get(self, stage: str, key: tuple):
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
            self._hits[stage] += 1
            _obs_inc(f"precompute.{stage}.hits")
            return entry
        self._misses[stage] += 1
        _obs_inc(f"precompute.{stage}.misses")
        return None

    def _put(self, key: tuple, entry: object) -> None:
        if self.max_entries == 0:
            return
        self._store[key] = entry
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self._evictions += 1
            _obs_inc("precompute.evictions")


# ---------------------------------------------------------------------------
# Shared-memory array handoff (warm worker pool)
# ---------------------------------------------------------------------------

#: Name prefix of every segment this module creates; the lifecycle
#: regression tests scan ``/dev/shm`` for it.
SHM_PREFIX = "repro-shm"

#: Array starting offsets are rounded up to this many bytes so views
#: stay cache-line aligned for the vectorized kernels.
_SHM_ALIGN = 64

#: Tag of the pickler persistent ids used to hoist arrays.
_PID_TAG = "repro.shm.array"

#: Monotonic per-process sequence for collision-free segment names.
#: Deliberately not random: names only need uniqueness within
#: ``(pid, counter)``, and creation is ``O_EXCL`` anyway.
_SHM_SEQ = itertools.count()


class _ArrayPickler(pickle.Pickler):
    """Pickler that swaps dense ndarrays for persistent-id stubs.

    Hoisted arrays land in ``arrays`` (deduplicated by identity, so
    aliased references stay aliased after the round trip); the byte
    stream keeps only a ``(tag, index)`` stub per array.  Object-dtype
    arrays are left inline — they hold references, not dense data.
    """

    def __init__(self, file, protocol: int, arrays: List[np.ndarray]) -> None:
        super().__init__(file, protocol)
        self._arrays = arrays
        self._seen: Dict[int, int] = {}
        self._keepalive: List[np.ndarray] = []

    def persistent_id(self, obj):  # noqa: D102 - pickle protocol hook
        if type(obj) is not np.ndarray or obj.dtype.hasobject:
            return None
        index = self._seen.get(id(obj))
        if index is None:
            index = len(self._arrays)
            self._arrays.append(
                obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
            )
            # Keep the original alive so its id() cannot be recycled
            # onto a different array mid-dump.
            self._keepalive.append(obj)
            self._seen[id(obj)] = index
        return (_PID_TAG, index)


class _ArrayUnpickler(pickle.Unpickler):
    def __init__(self, file, arrays: Sequence[np.ndarray]) -> None:
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):  # noqa: D102 - pickle protocol hook
        tag, index = pid
        if tag != _PID_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._arrays[index]


def dumps_hoisted(obj: object) -> Tuple[bytes, Tuple[np.ndarray, ...]]:
    """Pickle ``obj`` with every dense ndarray hoisted out.

    Returns ``(skeleton, arrays)``: the skeleton bytes reference the
    arrays by position, and :func:`loads_hoisted` splices any
    equal-content array sequence back in — typically zero-copy views
    onto a shared-memory segment rather than the originals.
    """
    buffer = io.BytesIO()
    arrays: List[np.ndarray] = []
    _ArrayPickler(buffer, pickle.HIGHEST_PROTOCOL, arrays).dump(obj)
    return buffer.getvalue(), tuple(arrays)


def loads_hoisted(skeleton: bytes, arrays: Sequence[np.ndarray]) -> object:
    """Rebuild an object graph from :func:`dumps_hoisted` output."""
    return _ArrayUnpickler(io.BytesIO(skeleton), arrays).load()


@dataclass(frozen=True)
class ShmArraySpec:
    """Placement of one hoisted array inside the segment."""

    dtype: "np.dtype"
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmManifest:
    """Everything a worker needs to attach a published segment.

    ``digest`` is a SHA-256 over the segment's array region, computed
    after the parent finished writing; :func:`attach_arrays` refuses a
    segment whose content does not match — the cross-process analogue
    of the cache's content fingerprints.
    """

    name: str
    digest: str
    nbytes: int
    specs: Tuple[ShmArraySpec, ...]

    @property
    def path(self) -> str:
        """Filesystem path of the segment (Linux tmpfs mount)."""
        return f"/dev/shm/{self.name}"


def _segment_digest(shm, nbytes: int) -> str:
    view = shm.buf[:nbytes]
    try:
        return hashlib.sha256(view).hexdigest()
    finally:
        view.release()


class ShmArrayStore:
    """Parent-side owner of one published shared-memory segment.

    Created once per parallel batch; workers attach by manifest.  The
    parent must call :meth:`release` when the batch ends (the pool does
    so in a ``finally``), which both closes its mapping and unlinks the
    name — attached workers keep their mappings until they exit, and a
    parent killed with ``SIGKILL`` is covered by multiprocessing's
    resource tracker, so no ``/dev/shm`` entry outlives the run.
    """

    def __init__(self, shm, manifest: ShmManifest) -> None:
        self._shm = shm
        self.manifest = manifest

    @classmethod
    def create(
        cls, arrays: Sequence[np.ndarray], prefix: str = SHM_PREFIX
    ) -> "ShmArrayStore":
        """Copy ``arrays`` into a fresh segment and digest the result.

        Raises ``OSError`` when shared memory is unavailable (no
        ``/dev/shm``, exhausted tmpfs); the pool falls back to inline
        pickling in that case.
        """
        from multiprocessing import shared_memory

        specs: List[ShmArraySpec] = []
        end = 0
        for array in arrays:
            offset = -(-end // _SHM_ALIGN) * _SHM_ALIGN
            specs.append(
                ShmArraySpec(dtype=array.dtype, shape=array.shape, offset=offset)
            )
            end = offset + array.nbytes
        shm = None
        while shm is None:
            name = f"{prefix}-{os.getpid()}-{next(_SHM_SEQ)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, end)
                )
            except FileExistsError:
                continue  # stale name from a recycled pid; draw again
        try:
            for array, spec in zip(arrays, specs):
                view = np.ndarray(
                    spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
                )
                view[...] = array
                del view
            manifest = ShmManifest(
                name=shm.name,
                digest=_segment_digest(shm, end),
                nbytes=end,
                specs=tuple(specs),
            )
            fault_point("pool.shm.export", path=f"/dev/shm/{shm.name}")
        except BaseException:
            _release_segment(shm)
            raise
        return cls(shm, manifest)

    def release(self) -> None:
        """Close the parent mapping and unlink the segment name."""
        _release_segment(self._shm)


def _release_segment(shm) -> None:
    try:
        shm.close()
    except (OSError, BufferError):
        pass  # still-exported views; unlink below is what matters
    try:
        shm.unlink()
    except (OSError, FileNotFoundError):
        pass  # already unlinked (double release is fine)


def attach_arrays(
    manifest: ShmManifest, validate: bool = True
) -> Tuple[Tuple[np.ndarray, ...], object]:
    """Attach a published segment and rebuild its arrays as views.

    Returns ``(arrays, shm)``; the views are read-only (the segment is
    shared by every worker) and borrow the segment's buffer, so the
    caller must keep ``shm`` alive as long as any view is.  Raises
    :class:`~repro.errors.RunnerError` when the segment is missing,
    truncated, or fails digest validation.
    """
    from multiprocessing import shared_memory

    fault_point("pool.shm.attach", path=manifest.path)
    try:
        shm = shared_memory.SharedMemory(name=manifest.name)
    except (OSError, ValueError) as exc:
        raise RunnerError(
            f"shared-memory segment {manifest.name!r} cannot be attached "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if shm.size < manifest.nbytes:
        _release_segment_quietly(shm)
        raise RunnerError(
            f"shared-memory segment {manifest.name!r} is truncated "
            f"({shm.size} bytes on disk, {manifest.nbytes} expected)"
        )
    if validate and _segment_digest(shm, manifest.nbytes) != manifest.digest:
        _release_segment_quietly(shm)
        raise RunnerError(
            f"shared-memory segment {manifest.name!r} failed SHA-256 "
            f"validation: content does not match the exporter's fingerprint"
        )
    arrays = []
    for spec in manifest.specs:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        arrays.append(view)
    return tuple(arrays), shm


def _release_segment_quietly(shm) -> None:
    # Attach-side cleanup only closes; the *parent* owns the unlink.
    try:
        shm.close()
    except (OSError, BufferError):
        pass  # nothing useful to do on a failed detach
