"""Cross-point precompute cache: shared geometry and WLD work.

Sweeps, corner sign-off, and architecture search evaluate hundreds of
:class:`~repro.core.problem.RankProblem` variants that differ in one
knob but share the expensive precomputation underneath — the coarsened
(bunched/binned) WLD is identical across every point of a clock or
repeater-fraction sweep, and repeated evaluations of the *same* problem
(retries after a deadline, repeated corners, search revisits) rebuild
identical :class:`~repro.assign.tables.AssignmentTables` from scratch.

:class:`PrecomputeCache` is a small keyed LRU cache over both stages:

* ``coarsened`` — ``(WLD fingerprint, bunch_size, max_groups)`` →
  coarse WLD + rank error bound,
* ``tables`` — ``(problem fingerprint, bunch_size, max_groups)`` →
  assignment tables + rank error bound.

Keys are content fingerprints (SHA-256 over the pickled object), so two
problems that are equal by value share an entry no matter how they were
constructed.  The cache is a plain picklable object: the batch runner
ships a parent-warmed cache to worker processes once per worker (via the
pool initializer), so parallel sweep workers start with the shared
coarse WLD already in hand.

Hit/miss counters per stage make sweep-level reuse observable; the
benchmark harness (``tools/bench_to_json.py``) records them in
``BENCH_rank.json``.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..faultkit.inject import fault_point
from ..obs.metrics import inc as _obs_inc

#: Default number of cached entries (coarse WLDs + tables combined).
DEFAULT_CACHE_ENTRIES = 32


def fingerprint(obj: object) -> str:
    """Content fingerprint: SHA-256 over the object's pickle.

    Deterministic for the value-type dataclasses and numpy arrays the
    library is built from: equal values constructed the same way yield
    equal bytes.  A differing fingerprint for equal values is safe — it
    only costs a cache miss, never a wrong hit.
    """
    return hashlib.sha256(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


class PrecomputeCache:
    """Keyed LRU cache for coarsened WLDs and assignment tables.

    Parameters
    ----------
    max_entries:
        Cap on stored entries across both stages; least-recently-used
        entries are evicted first.  ``0`` disables storage (every call
        recomputes; counters still track misses).

    Notes
    -----
    The cache is deliberately *not* thread-safe or process-shared: each
    batch evaluator owns one, and the parallel runner pickles the whole
    evaluator (cache included) to each worker once, after which workers
    populate their copies independently.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._store: "OrderedDict[tuple, object]" = OrderedDict()
        self._hits: Dict[str, int] = {"coarsened": 0, "tables": 0}
        self._misses: Dict[str, int] = {"coarsened": 0, "tables": 0}
        self._evictions = 0

    # ------------------------------------------------------------------
    # Cached stages
    # ------------------------------------------------------------------

    def coarsened(
        self,
        problem,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> Tuple[object, int]:
        """The problem's coarsened WLD and rank error bound, cached.

        Keyed on the *WLD* fingerprint, so every point of a sweep that
        keeps the WLD fixed (C, R, K, M — all of Table 4) shares one
        entry.
        """
        fault_point("precompute.coarsen")
        key = ("coarsened", fingerprint(problem.wld), bunch_size, max_groups)
        entry = self._get("coarsened", key)
        if entry is None:
            entry = problem.coarsened_wld(
                bunch_size=bunch_size, max_groups=max_groups
            )
            self._put(key, entry)
        return entry

    def tables(
        self,
        problem,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> Tuple[object, int]:
        """The problem's assignment tables and error bound, cached.

        Keyed on the full problem fingerprint: only value-identical
        problems share tables (geometry, die, WLD, targets all agree).
        The coarse WLD underneath is resolved through :meth:`coarsened`,
        so a tables *miss* still reuses a shared coarse WLD hit.
        """
        fault_point("precompute.tables")
        key = ("tables", fingerprint(problem), bunch_size, max_groups)
        entry = self._get("tables", key)
        if entry is None:
            coarse, error_bound = self.coarsened(
                problem, bunch_size=bunch_size, max_groups=max_groups
            )
            entry = (problem.tables_on(coarse), error_bound)
            self._put(key, entry)
        return entry

    def warm(
        self,
        problem,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> "PrecomputeCache":
        """Precompute the shared stages for a representative problem.

        Called once in the parent before dispatching a parallel batch:
        the warmed cache then travels to every worker via the pool
        initializer, so no worker redoes the shared coarsening.
        Returns ``self`` for chaining.
        """
        self.coarsened(problem, bunch_size=bunch_size, max_groups=max_groups)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage hit/miss counters, evictions, and entry count."""
        return {
            "hits": dict(self._hits),
            "misses": dict(self._misses),
            "evictions": self._evictions,
            "entries": {"current": len(self._store), "max": self.max_entries},
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self._evictions = 0
        for counters in (self._hits, self._misses):
            for stage in counters:
                counters[stage] = 0

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------

    def _get(self, stage: str, key: tuple):
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
            self._hits[stage] += 1
            _obs_inc(f"precompute.{stage}.hits")
            return entry
        self._misses[stage] += 1
        _obs_inc(f"precompute.{stage}.misses")
        return None

    def _put(self, key: tuple, entry: object) -> None:
        if self.max_entries == 0:
            return
        self._store[key] = entry
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self._evictions += 1
            _obs_inc("precompute.evictions")
