"""Builders for the paper's experimental setups.

The paper's Table 2 baseline: ILD permittivity 3.9, Miller coupling
factor 2.0, repeater area fraction 0.4, 2 semi-global + 1 global
layer-pairs, target clock 500 MHz; WLDs from the Davis model with Rent
exponent 0.6 for 1M / 4M / 10M gate designs; technology parameters from
Table 3 (180 / 130 / 90 nm).  :func:`baseline_problem` assembles a
:class:`~repro.core.problem.RankProblem` for any of these points, and
:func:`paper_baseline_130nm` is the specific design every Table 4 sweep
pivots around (1M gates at 130 nm).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional

from ..arch.builder import ArchitectureSpec, build_architecture
from ..arch.die import DieModel
from ..obs.metrics import inc as _obs_inc
from ..obs.metrics import metrics_enabled as _metrics_enabled
from ..tech.presets import get_node
from ..wld.davis import DavisParameters, davis_wld
from ..wld.distribution import WireLengthDistribution
from .problem import RankProblem

#: Table 2 baseline values.
BASELINE_PERMITTIVITY = 3.9
BASELINE_MILLER = 2.0
BASELINE_REPEATER_FRACTION = 0.4
BASELINE_SEMI_GLOBAL_PAIRS = 2
BASELINE_GLOBAL_PAIRS = 1
BASELINE_LOCAL_PAIRS = 1
BASELINE_CLOCK_HZ = 500.0e6
BASELINE_RENT_EXPONENT = 0.6


#: Default Davis-WLD cache capacity; override at import time with the
#: ``REPRO_DAVIS_CACHE_SIZE`` environment variable (0 disables caching)
#: or at runtime with :func:`configure_davis_cache`.
DEFAULT_DAVIS_CACHE_SIZE = 16


def _make_davis_cache(maxsize: Optional[int]):
    @lru_cache(maxsize=maxsize)
    def cached(gate_count: int, rent_exponent: float) -> WireLengthDistribution:
        """Davis WLDs are deterministic and expensive enough to cache."""
        return davis_wld(
            DavisParameters(gate_count=gate_count, rent_exponent=rent_exponent)
        )

    return cached


_cached_davis = _make_davis_cache(
    int(os.environ.get("REPRO_DAVIS_CACHE_SIZE", DEFAULT_DAVIS_CACHE_SIZE))
)


def configure_davis_cache(maxsize: Optional[int]) -> None:
    """Resize the Davis-WLD cache (``0`` disables, ``None`` unbounds).

    Rebuilding the cache drops every cached WLD and resets the hit/miss
    counters reported by :func:`davis_cache_info` — sized-up sweeps over
    many (gate count, Rent exponent) pairs call this once up front.
    """
    global _cached_davis
    _cached_davis = _make_davis_cache(maxsize)


def _davis_lookup(gate_count: int, rent_exponent: float) -> WireLengthDistribution:
    """Cache-aware Davis lookup that also feeds the metrics registry.

    The lru_cache keeps cumulative counters; the per-call delta is what
    lands in ``davis_cache.hits`` / ``davis_cache.misses``, so registry
    totals reflect exactly the lookups made while observability was on.
    """
    if not _metrics_enabled():
        return _cached_davis(gate_count, rent_exponent)
    before = _cached_davis.cache_info()
    wld = _cached_davis(gate_count, rent_exponent)
    after = _cached_davis.cache_info()
    _obs_inc("davis_cache.hits", after.hits - before.hits)
    _obs_inc("davis_cache.misses", after.misses - before.misses)
    return wld


def davis_cache_info():
    """Hit/miss/size counters of the Davis-WLD cache.

    Returns :class:`functools._CacheInfo` (``hits`` / ``misses`` /
    ``maxsize`` / ``currsize``), the observable that tells a sweep
    whether its points actually shared the WLD precomputation.
    """
    return _cached_davis.cache_info()


def baseline_problem(
    node_name: str,
    gate_count: int,
    clock_frequency: float = BASELINE_CLOCK_HZ,
    repeater_fraction: float = BASELINE_REPEATER_FRACTION,
    permittivity: float = BASELINE_PERMITTIVITY,
    miller_factor: float = BASELINE_MILLER,
    rent_exponent: float = BASELINE_RENT_EXPONENT,
    local_pairs: int = BASELINE_LOCAL_PAIRS,
    semi_global_pairs: int = BASELINE_SEMI_GLOBAL_PAIRS,
    global_pairs: int = BASELINE_GLOBAL_PAIRS,
    wld: Optional[WireLengthDistribution] = None,
    target_kind: str = "linear",
) -> RankProblem:
    """Assemble a paper-style rank problem.

    Parameters default to the Table 2 baseline; pass a pre-built ``wld``
    to skip Davis generation (e.g. for synthetic studies).
    """
    node = get_node(node_name)
    spec = ArchitectureSpec(
        node=node,
        local_pairs=local_pairs,
        semi_global_pairs=semi_global_pairs,
        global_pairs=global_pairs,
        miller_factor=miller_factor,
        permittivity=permittivity,
    )
    arch = build_architecture(spec)
    die = DieModel(
        node=node, gate_count=gate_count, repeater_fraction=repeater_fraction
    )
    if wld is None:
        wld = _davis_lookup(gate_count, rent_exponent)
    return RankProblem(
        arch=arch,
        die=die,
        wld=wld,
        clock_frequency=clock_frequency,
        target_kind=target_kind,
    )


def paper_baseline_130nm(**overrides) -> RankProblem:
    """The Table 4 pivot: 1M gates, 130 nm, Table 2 baseline parameters.

    Keyword overrides are forwarded to :func:`baseline_problem` (e.g.
    ``clock_frequency=1.0e9`` for one point of the ``C`` sweep).
    """
    params = dict(node_name="130nm", gate_count=1_000_000)
    params.update(overrides)
    return baseline_problem(**params)
