"""Budget-rank curves: rank as a function of repeater area, in one run.

The DP table already contains every budget level: a state ``(pair, b,
r)`` certifies the top-``b`` groups within ``r`` cells.  This module
re-runs the DP transitions but, instead of tracking one global best
rank, records the best rank *per budget level* — producing the entire
rank(budget) curve of a fixed die in a single solve.

This is the clean "budget elasticity" view of the paper's Table 4 R
column: the R sweep couples the budget to die inflation through
Eq. (6), while the curve here holds the die fixed and varies only the
spendable fraction of the provisioned budget.  The marginal-cost
structure (one s_opt repeater per marginal wire) shows up directly as
the curve's near-constant slope.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..assign.greedy_assign import pack_suffix
from ..assign.tables import AssignmentTables
from .discretize import DEFAULT_REPEATER_UNITS, discretize_repeaters
from .dp import SolverStats


@dataclass(frozen=True)
class BudgetRankCurve:
    """Rank achievable at each budget level on a fixed die.

    Attributes
    ----------
    cell_area:
        Area of one budget cell, square metres.
    ranks:
        ``ranks[r]`` is the best rank using at most ``r`` cells
        (length ``num_units + 1``, non-decreasing).
    fits:
        Definition 3 for the underlying problem.
    stats:
        Solver instrumentation.
    """

    cell_area: float
    ranks: Tuple[int, ...]
    fits: bool
    stats: SolverStats

    @property
    def num_units(self) -> int:
        return len(self.ranks) - 1

    def rank_at_area(self, area: float) -> int:
        """Best rank with at most ``area`` of repeater silicon."""
        if area < 0:
            return 0
        if math.isinf(self.cell_area):
            return self.ranks[0]
        cells = min(self.num_units, int(area / self.cell_area))
        return self.ranks[cells]

    def marginal_wires_per_cell(self) -> List[float]:
        """Finite-difference slope of the curve (wires per cell)."""
        return [
            float(b - a) for a, b in zip(self.ranks, self.ranks[1:])
        ]


def solve_budget_rank_curve(
    tables: AssignmentTables,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
) -> BudgetRankCurve:
    """Compute rank for *every* budget level in one DP pass.

    Same state space as :func:`repro.core.dp.solve_rank_dp`; candidate
    closure updates ``best[r]`` for the candidate's exact budget usage,
    with a final running maximum making the curve monotone.  Pack
    checks are pruned against the current per-budget best, so the pass
    costs only modestly more than the single-rank solve.
    """
    start_time = time.perf_counter()
    stats = SolverStats(solver="dp-curve")

    disc = discretize_repeaters(tables, repeater_units)
    num_units = disc.num_units
    num_groups = tables.num_groups
    num_pairs = tables.num_pairs
    cum_wires = tables.cum_wires

    fits = pack_suffix(tables, 0, 0, 0, 0.0)
    if not fits:
        stats.runtime_seconds = time.perf_counter() - start_time
        return BudgetRankCurve(
            cell_area=disc.unit_area,
            ranks=tuple([0] * (num_units + 1)),
            fits=False,
            stats=stats,
        )

    best = np.zeros(num_units + 1, dtype=np.int64)

    inf = math.inf
    shape = (num_groups + 1, num_units + 1)
    f_prev = np.full(shape, inf)
    f_prev[0, 0] = 0.0
    f_prev = np.minimum.accumulate(f_prev, axis=1)

    for pair in range(num_pairs):
        f_new = np.full(shape, inf)
        cum_area = tables.cum_wire_area[pair]
        cum_ins = tables.cum_inserted[pair]
        delay_limit = tables.next_infeasible[pair]

        for b in range(num_groups + 1):
            row = f_prev[b]
            finite = np.isfinite(row)
            if not finite.any():
                continue
            prev_best = inf
            for r in range(num_units + 1):
                if not row[r] < prev_best:
                    continue
                prev_best = row[r]
                z = float(row[r])
                stats.states_explored += 1
                capacity = tables.capacity(pair, float(cum_wires[b]), z)
                e_hi = int(
                    np.searchsorted(
                        cum_area, cum_area[b] + capacity * (1 + 1e-12), side="right"
                    )
                    - 1
                )
                e_hi = min(e_hi, int(delay_limit[b]))
                if e_hi < b:
                    continue
                es = np.arange(b, e_hi + 1)
                du = disc.slice_units_batch(pair, b, es)
                valid = np.isfinite(du) & (r + du <= num_units)
                if not valid.any():
                    continue
                es = es[valid]
                nr = (r + du[valid]).astype(np.int64)
                nz = z + (cum_ins[es] - cum_ins[b])
                stats.transitions += len(es)

                target = f_new[es, nr]
                improve = nz < target
                if improve.any():
                    f_new[es[improve], nr[improve]] = nz[improve]

                leftover = capacity - (cum_area[es] - cum_area[b])
                # Candidates, largest e first; prune per budget level.
                for idx in range(len(es) - 1, -1, -1):
                    e = int(es[idx])
                    wires = int(cum_wires[e])
                    budget_cells = int(nr[idx])
                    if wires <= best[budget_cells]:
                        # everything smaller is also dominated at its
                        # own (smaller or equal) budget only if ranks
                        # shrink faster than budgets — cannot conclude,
                        # so keep scanning but skip the pack check.
                        continue
                    stats.pack_checks += 1
                    if pack_suffix(
                        tables,
                        e,
                        pair,
                        wires,
                        float(nz[idx]),
                        top_pair_leftover=float(leftover[idx]),
                    ):
                        stats.pack_successes += 1
                        if wires > best[budget_cells]:
                            best[budget_cells] = wires

        f_prev = np.minimum.accumulate(f_new, axis=1)

    ranks = np.maximum.accumulate(best)
    stats.runtime_seconds = time.perf_counter() - start_time
    return BudgetRankCurve(
        cell_area=disc.unit_area,
        ranks=tuple(int(x) for x in ranks),
        fits=True,
        stats=stats,
    )
