"""The rank problem: architecture + design + targets in one object.

A :class:`RankProblem` is the complete input of Section 3's problem
statement: an interconnect architecture with fixed geometry, a WLD, a
repeater area budget (through the die model), and per-wire target delays
(through the target model).  It also owns coarsening (bunching/binning)
and the construction of :class:`~repro.assign.tables.AssignmentTables`,
so every solver consumes identical physics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from .precompute import PrecomputeCache

from ..arch.die import DieModel
from ..arch.stack import InterconnectArchitecture
from ..assign.tables import AssignmentTables, build_tables
from ..delay.target import LinearTargetModel, QuadraticTargetModel, TargetDelayModel
from ..errors import RankComputationError
from ..rc.via import DEFAULT_VIAS_PER_WIRE
from ..wld.coarsen import coarsen
from ..wld.distribution import WireLengthDistribution

#: Supported target-delay model names.
TARGET_MODELS = ("linear", "quadratic")


@dataclass(frozen=True)
class RankProblem:
    """Inputs of one rank computation.

    Attributes
    ----------
    arch:
        The interconnect architecture (topmost pair first).
    die:
        Die model: gate count, repeater fraction, areas, gate pitch.
    wld:
        Wire length distribution in gate pitches, rank order.
    clock_frequency:
        Target clock ``f_c`` in hertz (Table 4 column ``C``).
    target_kind:
        ``"linear"`` for the paper's ``d_i = (l_i/l_max)/f_c`` or
        ``"quadratic"`` for the Section 6 alternative.
    utilization:
        Usable routing fraction of die area per layer-pair.
    vias_per_wire:
        The paper's ``v``.
    max_stages_per_wire:
        Optional repeater placement cap (minimum-spacing proxy).
    pair_capacity_factor:
        Routing area of a layer-pair in units of die area (2.0 for the
        physical two-layers-per-pair reading, 1.0 for the paper's
        conservative pseudocode reading).
    driver_policy:
        ``"budgeted"`` (default) charges every delay-meeting wire's
        sized driver stage to the repeater budget; ``"free-bare"``
        grants free passage to wires whose minimum-size driver meets
        the target (ablation).
    """

    arch: InterconnectArchitecture
    die: DieModel
    wld: WireLengthDistribution
    clock_frequency: float
    target_kind: str = "linear"
    utilization: float = 1.0
    vias_per_wire: int = DEFAULT_VIAS_PER_WIRE
    max_stages_per_wire: Optional[int] = None
    pair_capacity_factor: float = 2.0
    driver_policy: str = "budgeted"

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise RankComputationError(
                f"clock frequency must be positive, got {self.clock_frequency!r}"
            )
        if self.target_kind not in TARGET_MODELS:
            raise RankComputationError(
                f"unknown target model {self.target_kind!r}; "
                f"choose from {TARGET_MODELS}"
            )
        if self.wld.num_groups == 0:
            raise RankComputationError("rank problem requires a non-empty WLD")
        if not 0.0 < self.utilization <= 1.0:
            raise RankComputationError(
                f"utilization must be in (0, 1], got {self.utilization!r}"
            )

    # ------------------------------------------------------------------
    # Derived models
    # ------------------------------------------------------------------

    @property
    def max_wire_length_m(self) -> float:
        """Physical length of the longest wire (``l_max``), metres."""
        return self.die.wire_length(self.wld.max_length)

    def target_model(self) -> TargetDelayModel:
        """Instantiate the configured target-delay model."""
        if self.target_kind == "linear":
            return LinearTargetModel(
                max_length=self.max_wire_length_m,
                clock_frequency=self.clock_frequency,
            )
        return QuadraticTargetModel(
            max_length=self.max_wire_length_m,
            clock_frequency=self.clock_frequency,
        )

    def coarsened_wld(
        self,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
    ) -> Tuple[WireLengthDistribution, int]:
        """Coarsen the WLD (binning then bunching) with error bound.

        Returns the coarse WLD and the rank error bound (max bunch
        count), per the paper's Section 5.1 analysis.
        """
        return coarsen(self.wld, bunch_size=bunch_size, max_groups=max_groups)

    def tables(
        self,
        bunch_size: Optional[int] = None,
        max_groups: Optional[int] = None,
        cache: Optional["PrecomputeCache"] = None,
    ) -> Tuple[AssignmentTables, int]:
        """Build assignment tables on the (optionally coarsened) WLD.

        The target model keeps ``l_max`` from the *original* WLD so that
        coarsening never changes the target-delay scale.  With a
        :class:`~repro.core.precompute.PrecomputeCache`, both the coarse
        WLD and the finished tables are reused across value-identical
        requests (see that module for the keying).
        """
        if cache is not None:
            return cache.tables(
                self, bunch_size=bunch_size, max_groups=max_groups
            )
        coarse, error_bound = self.coarsened_wld(
            bunch_size=bunch_size, max_groups=max_groups
        )
        return self.tables_on(coarse), error_bound

    def tables_on(self, coarse: WireLengthDistribution) -> AssignmentTables:
        """Build assignment tables on an already-coarsened WLD.

        Split out of :meth:`tables` so the precompute cache can reuse a
        shared coarse WLD across points while building per-point tables.
        """
        return build_tables(
            arch=self.arch,
            die=self.die,
            wld=coarse,
            target_model=self.target_model(),
            utilization=self.utilization,
            vias_per_wire=self.vias_per_wire,
            max_stages_per_wire=self.max_stages_per_wire,
            pair_capacity_factor=self.pair_capacity_factor,
            driver_policy=self.driver_policy,
        )

    # ------------------------------------------------------------------
    # Sweep knobs (return modified copies)
    # ------------------------------------------------------------------

    def with_clock_frequency(self, clock_frequency: float) -> "RankProblem":
        """Copy with a different target clock (Table 4 ``C`` knob)."""
        return replace(self, clock_frequency=clock_frequency)

    def with_repeater_fraction(self, fraction: float) -> "RankProblem":
        """Copy with a different repeater fraction (Table 4 ``R`` knob).

        Changing the fraction changes die area and gate pitch too,
        exactly as in the paper's Eq. (6) area model.
        """
        return replace(self, die=self.die.with_repeater_fraction(fraction))

    def with_arch(self, arch: InterconnectArchitecture) -> "RankProblem":
        """Copy with a different architecture (K / M sweeps rebuild it)."""
        return replace(self, arch=arch)

    def with_target_kind(self, target_kind: str) -> "RankProblem":
        """Copy with the other target-delay model (Section 6 ablation)."""
        return replace(self, target_kind=target_kind)
