"""Optimized dynamic program for rank computation.

This solver computes the exact rank (at wire-group granularity and
repeater-cell granularity) by exploiting the structure of the paper's
Eq. (1) recurrence: the only predecessor states that matter are the
*all-meeting* ones ``M[i'_1, j, r_1, i'_1]``, so the set of wires meeting
their targets is always a prefix of the rank-ordered WLD.  The state
space collapses from the paper's 4-D boolean table to

    F[p][b][r] = minimal repeater count over assignments of the first
                 ``b`` wire groups to layer-pairs ``0..p`` such that all
                 of them meet their targets using at most ``r`` budget
                 cells (infinity if infeasible)

— tracking the *minimal* repeater count is sound because repeaters only
ever hurt downstream feasibility (via blockage in lower pairs), so fewer
dominates.  A transition extends the prefix into the next pair (the M'
oracle), and each transition is closed into a rank candidate by packing
the remaining wires bottom-up (the M'' oracle of Lemma 1) through the
transition pair's leftover capacity — exactly the role of the paper's
``i`` dimension.

The returned rank equals the paper algorithm's ``max i'`` (see
``tests/core/test_cross_validation.py``, which checks agreement with the
faithful wire-at-a-time reference and with exhaustive search).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..assign.greedy_assign import pack_required_leftover, pack_suffix
from ..assign.tables import AssignmentTables
from ..errors import DeadlineExceeded, RankComputationError
from ..obs.metrics import inc as _obs_inc
from ..obs.metrics import metrics_enabled as _metrics_enabled
from ..obs.metrics import observe as _obs_observe
from ..obs.trace import span as _span
from .discretize import DEFAULT_REPEATER_UNITS, discretize_repeaters


#: Registered DP transition-kernel backends.
BACKENDS = ("python", "numpy")

#: Environment variable selecting the default backend (overridden by an
#: explicit ``backend=`` argument; unset/empty means ``"numpy"``).
BACKEND_ENV = "REPRO_RANK_BACKEND"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve the effective DP backend name.

    ``None`` (the default everywhere) defers to the ``REPRO_RANK_BACKEND``
    environment variable and finally to ``"numpy"`` — which is how CI
    runs the whole tier-1 suite against the scalar reference backend
    without threading a parameter through every call site.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "") or "numpy"
    if backend not in BACKENDS:
        raise RankComputationError(
            f"unknown DP backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


def check_deadline(deadline: Optional[float], where: str = "solver") -> None:
    """Raise :class:`DeadlineExceeded` once ``time.monotonic()`` passes
    ``deadline`` (absolute seconds; ``None`` disables the check).

    This is the cooperative cancellation primitive the fault-tolerant
    runner relies on: long-running loops call it between units of work
    so a per-attempt wall-clock budget can interrupt a computation
    without killing the process.
    """
    _obs_inc("solver.deadline_checks")
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceeded(
            f"wall-clock deadline exceeded in {where} "
            f"(overran by {time.monotonic() - deadline:.3f} s)"
        )


@dataclass(frozen=True)
class WitnessSegment:
    """One layer-pair's slice of the delay-meeting prefix.

    Attributes
    ----------
    pair:
        0-based layer-pair index (0 = topmost).
    start_group, end_group:
        Rank-order group slice assigned to the pair (may be empty).
    repeater_cells:
        Budget cells consumed by the slice.
    repeaters:
        Repeaters physically inserted in the slice.
    """

    pair: int
    start_group: int
    end_group: int
    repeater_cells: int
    repeaters: int


@dataclass
class SolverStats:
    """Instrumentation of one solver run (all solvers share this type).

    ``runtime_seconds`` is wall-clock and excluded from equality: two
    runs of the same problem produce equal stats (the counters are
    deterministic) even though their timings differ — which is what
    lets a resumed sweep compare equal to an uninterrupted one.

    ``backend`` records which DP transition kernel produced the result
    (``"python"`` / ``"numpy"``; empty for the non-DP solvers).  It is
    excluded from equality — like the pack accounting below it describes
    *how* the answer was computed, and a sweep resumed under a different
    ``REPRO_RANK_BACKEND`` must still compare equal point-wise.  The
    ``rows`` / ``states_explored`` / ``transitions`` counters are
    backend-invariant (asserted by ``tests/core/test_backends.py``);
    ``pack_checks`` / ``pack_successes`` / ``pack_pruned`` measure each
    backend's own pruning work and are excluded from equality too.
    """

    solver: str = ""
    states_explored: int = 0
    transitions: int = 0
    pack_checks: int = field(default=0, compare=False)
    pack_successes: int = field(default=0, compare=False)
    pack_pruned: int = field(default=0, compare=False)
    rows: int = 0
    runtime_seconds: float = field(default=0.0, compare=False)
    backend: str = field(default="", compare=False)


#: SolverStats counters folded into the metrics registry after a DP
#: solve (under ``solver.dp.*``) — the single source of truth for both
#: ``BENCH_rank.json`` and trace-file counter totals.
_DP_PUBLISHED_COUNTERS = (
    "rows",
    "states_explored",
    "transitions",
    "pack_checks",
    "pack_successes",
    "pack_pruned",
)


def _publish_dp_stats(stats: "SolverStats") -> None:
    """Fold one solve's counters into the registry (no-op when disabled).

    Publishing once per solve — not per row — keeps the DP inner loop
    free of registry calls, so the disabled-overhead budget holds.
    """
    if not _metrics_enabled():
        return
    _obs_inc("solver.dp.solves")
    if stats.backend:
        _obs_inc(f"solver.dp.backend.{stats.backend}")
    for name in _DP_PUBLISHED_COUNTERS:
        _obs_inc(f"solver.dp.{name}", getattr(stats, name))
    _obs_observe("solver.dp.solve_s", stats.runtime_seconds)


@dataclass(frozen=True)
class RawSolution:
    """Solver-level result (wrapped by :class:`repro.core.rank.RankResult`).

    Attributes
    ----------
    rank:
        Number of wires in the maximal all-meeting prefix (the paper
        algorithm's returned ``i'``); 0 when the WLD does not fit.
    fits:
        Definition 3's condition: True iff all wires can be assigned
        ignoring delay.
    stats:
        Instrumentation counters.
    witness:
        Optional per-pair breakdown of the winning prefix.
    """

    rank: int
    fits: bool
    stats: SolverStats
    witness: Optional[Tuple[WitnessSegment, ...]] = None


def solve_rank_dp(
    tables: AssignmentTables,
    repeater_units: int = DEFAULT_REPEATER_UNITS,
    collect_witness: bool = False,
    deadline: Optional[float] = None,
    backend: Optional[str] = None,
) -> RawSolution:
    """Compute the rank of the architecture exactly (DP solver).

    Parameters
    ----------
    tables:
        Precomputed assignment tables for the problem.
    repeater_units:
        Number of cells the repeater budget is discretized into;
        solutions are conservative within one cell per (pair, group)
        block.
    collect_witness:
        Also reconstruct the winning prefix assignment.
    deadline:
        Optional absolute ``time.monotonic()`` instant; the DP raises
        :class:`~repro.errors.DeadlineExceeded` cooperatively (between
        group expansions) once it passes.
    backend:
        Transition-kernel implementation: ``"numpy"`` (vectorized,
        whole-pair kernels) or ``"python"`` (the scalar per-state
        reference loop).  ``None`` defers to ``REPRO_RANK_BACKEND``,
        then ``"numpy"``.  Both backends return identical ranks,
        witnesses, and deterministic counters
        (``tests/core/test_backends.py``).

    Returns
    -------
    RawSolution
    """
    backend = resolve_backend(backend)
    with _span(
        "solve_rank_dp",
        groups=tables.num_groups,
        pairs=tables.num_pairs,
        units=repeater_units,
        backend=backend,
    ):
        return _solve_rank_dp_impl(
            tables,
            repeater_units=repeater_units,
            collect_witness=collect_witness,
            deadline=deadline,
            backend=backend,
        )


def _solve_rank_dp_impl(
    tables: AssignmentTables,
    repeater_units: int,
    collect_witness: bool,
    deadline: Optional[float],
    backend: str,
) -> RawSolution:
    start_time = time.perf_counter()
    stats = SolverStats(solver="dp", backend=backend)

    disc = discretize_repeaters(tables, repeater_units)

    # Definition 3: rank 0 outright if the WLD does not fit at all.
    fits = pack_suffix(tables, 0, 0, 0, 0.0)
    if not fits:
        stats.runtime_seconds = time.perf_counter() - start_time
        _publish_dp_stats(stats)
        return RawSolution(rank=0, fits=False, stats=stats)

    if backend == "numpy":
        from .dp_numpy import solve_pairs_numpy

        best_rank, best_trace, parent_b, parent_r = solve_pairs_numpy(
            tables, disc, stats, collect_witness, deadline
        )
    else:
        best_rank, best_trace, parent_b, parent_r = _solve_pairs_python(
            tables, disc, stats, collect_witness, deadline
        )

    witness = None
    if collect_witness and best_trace is not None:
        witness = _reconstruct_witness(
            tables, disc, parent_b, parent_r, best_trace
        )

    stats.runtime_seconds = time.perf_counter() - start_time
    _publish_dp_stats(stats)
    return RawSolution(rank=best_rank, fits=True, stats=stats, witness=witness)


def _solve_pairs_python(
    tables: AssignmentTables,
    disc,
    stats: SolverStats,
    collect_witness: bool,
    deadline: Optional[float],
):
    """Scalar reference pair loop (the ``backend="python"`` kernel).

    Returns ``(best_rank, best_trace, parent_b, parent_r)`` with
    ``best_trace = (pair, b, e, r_pred)`` of the winning transition, or
    ``None`` when no prefix meets delay.
    """
    num_units = disc.num_units
    num_groups = tables.num_groups
    num_pairs = tables.num_pairs
    cum_wires = tables.cum_wires

    best_rank = 0
    best_trace: Optional[Tuple[int, int, int, int]] = None  # (pair, b, e, r_pred)

    inf = math.inf
    shape = (num_groups + 1, num_units + 1)
    f_prev = np.full(shape, inf)
    f_prev[0, 0] = 0.0
    f_prev = np.minimum.accumulate(f_prev, axis=1)

    keep_parents = collect_witness
    parent_b: List[np.ndarray] = []
    parent_r: List[np.ndarray] = []

    for pair in range(num_pairs):
        f_new = np.full(shape, inf)
        if keep_parents:
            pb = np.full(shape, -1, dtype=np.int32)
            pr = np.full(shape, -1, dtype=np.int32)
        cum_area = tables.cum_wire_area[pair]
        cum_ins = tables.cum_inserted[pair]
        delay_limit = tables.next_infeasible[pair]

        # Failed-pack memo for this pair: end group -> list of
        # (repeaters_above, required_leftover) thresholds.  For a fixed
        # (e, z) the suffix pack is a monotone threshold in the top
        # pair's leftover (the lower pairs never see it), and the
        # threshold only grows with z (more via blockage shrinks every
        # lower pair), so leftover < required(z0) with z >= z0 proves
        # failure without re-packing.  The threshold costs one extra
        # pack-shaped pass, so it is computed lazily on the *second*
        # failure at the same (e, z) — one-shot failures stay cheap.
        pack_thresholds: dict = {}
        pack_failed_once: set = set()

        for b in range(num_groups + 1):
            stats.rows += 1
            check_deadline(deadline, where=f"dp pair {pair}, group {b}")
            row = f_prev[b]
            finite = np.isfinite(row)
            if not finite.any():
                continue
            # Only transition from budgets where the value strictly
            # improves: equal-z states at higher r are dominated (the
            # final cummin over r restores their successors).
            values = row.copy()
            values[~finite] = inf
            use = np.zeros(num_units + 1, dtype=bool)
            prev_best = inf
            for r in range(num_units + 1):
                if values[r] < prev_best:
                    use[r] = True
                    prev_best = values[r]
            for r in np.flatnonzero(use):
                z = float(row[r])
                stats.states_explored += 1
                capacity = tables.capacity(pair, float(cum_wires[b]), z)

                # Largest prefix extension the pair can hold by area.
                e_hi = int(
                    np.searchsorted(
                        cum_area, cum_area[b] + capacity * (1 + 1e-12), side="right"
                    )
                    - 1
                )
                e_hi = min(e_hi, int(delay_limit[b]))
                if e_hi < b:
                    continue

                es = np.arange(b, e_hi + 1)
                du = disc.slice_units_batch(pair, b, es)
                valid = np.isfinite(du) & (r + du <= num_units)
                if not valid.any():
                    continue
                es = es[valid]
                nr = (r + du[valid]).astype(np.int64)
                nz = z + (cum_ins[es] - cum_ins[b])
                stats.transitions += len(es)

                target = f_new[es, nr]
                improve = nz < target
                if improve.any():
                    f_new[es[improve], nr[improve]] = nz[improve]
                    if keep_parents:
                        pb[es[improve], nr[improve]] = b
                        pr[es[improve], nr[improve]] = r

                # Rank candidates: largest e first; stop at the first
                # success (smaller e can only give a smaller rank).
                leftover = capacity - (cum_area[es] - cum_area[b])
                for idx in range(len(es) - 1, -1, -1):
                    e = int(es[idx])
                    if int(cum_wires[e]) <= best_rank:
                        break
                    z_here = float(nz[idx])
                    leftover_here = float(leftover[idx])
                    thresholds = pack_thresholds.get(e)
                    if thresholds is not None and any(
                        z_here >= z0 and leftover_here < req * (1.0 - 1e-9)
                        for z0, req in thresholds
                    ):
                        # Margin keeps the memo conservative: near-tie
                        # leftovers fall through to the real pack, so
                        # ulp disagreements cannot change the answer.
                        stats.pack_pruned += 1
                        continue
                    stats.pack_checks += 1
                    if pack_suffix(
                        tables,
                        e,
                        pair,
                        int(cum_wires[e]),
                        z_here,
                        top_pair_leftover=leftover_here,
                    ):
                        stats.pack_successes += 1
                        best_rank = int(cum_wires[e])
                        best_trace = (pair, b, e, r)
                        break
                    key = (e, z_here)
                    if key in pack_failed_once:
                        pack_failed_once.discard(key)
                        pack_thresholds.setdefault(e, []).append(
                            (
                                z_here,
                                pack_required_leftover(
                                    tables, e, pair, int(cum_wires[e]), z_here
                                ),
                            )
                        )
                    else:
                        pack_failed_once.add(key)

        if keep_parents:
            # Cummin over the budget axis with parent propagation, so
            # every finite post-cummin state has an exact provenance.
            for r in range(1, num_units + 1):
                mask = f_new[:, r] > f_new[:, r - 1]
                f_new[mask, r] = f_new[mask, r - 1]
                pb[mask, r] = pb[mask, r - 1]
                pr[mask, r] = pr[mask, r - 1]
            f_prev = f_new
            parent_b.append(pb)
            parent_r.append(pr)
        else:
            f_prev = np.minimum.accumulate(f_new, axis=1)

    return best_rank, best_trace, parent_b, parent_r


def _reconstruct_witness(
    tables: AssignmentTables,
    disc,
    parent_b: List[np.ndarray],
    parent_r: List[np.ndarray],
    best_trace: Tuple[int, int, int, int],
) -> Tuple[WitnessSegment, ...]:
    """Walk parent pointers back from the winning transition."""
    pair, b, e, r = best_trace
    du = disc.slice_units(pair, b, e)
    if not math.isfinite(du):
        raise RankComputationError("winning transition lost its unit accounting")
    segments = [
        WitnessSegment(
            pair=pair,
            start_group=b,
            end_group=e,
            repeater_cells=int(du),
            repeaters=int(
                tables.cum_inserted[pair][e] - tables.cum_inserted[pair][b]
            ),
        )
    ]
    # The winning transition read state (b, r) after pairs 0..pair-1.
    cur_b, cur_r = b, r
    for p in range(pair - 1, -1, -1):
        pb = int(parent_b[p][cur_b, cur_r])
        pr = int(parent_r[p][cur_b, cur_r])
        if pb < 0:
            raise RankComputationError(
                f"witness reconstruction failed: no parent for state "
                f"(pair={p}, groups={cur_b}, cells={cur_r})"
            )
        du = disc.slice_units(p, pb, cur_b)
        segments.append(
            WitnessSegment(
                pair=p,
                start_group=pb,
                end_group=cur_b,
                repeater_cells=int(du),
                repeaters=int(
                    tables.cum_inserted[p][cur_b] - tables.cum_inserted[p][pb]
                ),
            )
        )
        cur_b, cur_r = pb, pr
    if cur_b != 0:
        raise RankComputationError(
            f"witness reconstruction ended at group {cur_b}, expected 0"
        )
    segments.reverse()
    return tuple(segments)
