"""Independent verification of witnessed rank solutions.

``compute_rank(..., collect_witness=True)`` returns a constructive
proof of the reported rank; :func:`verify_witness` re-checks that proof
against the raw tables with none of the DP's machinery — a downstream
user can trust a result without trusting the solver.  Checks:

1. the witness covers pairs top-down with contiguous group slices
   starting at group 0;
2. every slice meets its delay targets (stage feasibility) on its pair;
3. wire area fits each pair's via-blockage-adjusted capacity;
4. total repeater area fits the physical budget;
5. the claimed rank equals the wires covered;
6. the remaining wires pack below (the M'' oracle).

Raises :class:`~repro.errors.RankComputationError` on the first
violation; returns quietly on success.
"""

from __future__ import annotations

from ..assign.greedy_assign import pack_suffix
from ..assign.tables import AssignmentTables
from ..errors import RankComputationError
from .rank import RankResult


def verify_witness(
    tables: AssignmentTables,
    result: RankResult,
    budget_tolerance: float = 1e-9,
) -> None:
    """Re-check a witnessed rank result against first principles.

    Parameters
    ----------
    tables:
        The assignment tables the result was computed on (same
        coarsening!).
    result:
        A result carrying a witness.
    budget_tolerance:
        Relative slack allowed on the budget check (floating point).
    """
    if result.witness is None:
        raise RankComputationError("result carries no witness to verify")
    if not result.fits:
        raise RankComputationError("a non-fitting result cannot be witnessed")

    cursor = 0
    last_pair = -1
    wires_above = 0
    repeaters_above = 0.0
    rep_area_total = 0.0
    top_pair = 0
    leftover = tables.capacity(0, 0, 0)

    for segment in result.witness:
        if segment.pair <= last_pair:
            raise RankComputationError(
                f"witness pairs not strictly descending the stack: "
                f"{segment.pair} after {last_pair}"
            )
        if segment.start_group != cursor:
            raise RankComputationError(
                f"witness groups not contiguous: pair {segment.pair} "
                f"starts at {segment.start_group}, expected {cursor}"
            )
        if segment.end_group < segment.start_group:
            raise RankComputationError("witness segment with negative extent")

        # delay feasibility of every group in the slice on this pair
        if tables.next_infeasible[segment.pair][segment.start_group] < segment.end_group:
            raise RankComputationError(
                f"witness slice [{segment.start_group}, {segment.end_group}) "
                f"contains a group that cannot meet delay on pair "
                f"{segment.pair}"
            )

        capacity = tables.capacity(segment.pair, wires_above, repeaters_above)
        area = float(
            tables.cum_wire_area[segment.pair][segment.end_group]
            - tables.cum_wire_area[segment.pair][segment.start_group]
        )
        if area > capacity * (1 + 1e-9):
            raise RankComputationError(
                f"witness slice overflows pair {segment.pair}: "
                f"{area:.4g} > {capacity:.4g}"
            )

        rep_area_total += float(
            tables.cum_rep_area[segment.pair][segment.end_group]
            - tables.cum_rep_area[segment.pair][segment.start_group]
        )

        wires_above = int(tables.cum_wires[segment.end_group])
        repeaters_above += segment.repeaters
        cursor = segment.end_group
        last_pair = segment.pair
        top_pair = segment.pair
        leftover = capacity - area

    budget = tables.repeater_budget_area
    if rep_area_total > budget * (1 + budget_tolerance):
        raise RankComputationError(
            f"witness exceeds the repeater budget: "
            f"{rep_area_total:.6g} > {budget:.6g}"
        )

    covered = int(tables.cum_wires[cursor])
    if covered != result.rank:
        raise RankComputationError(
            f"witness covers {covered} wires but the result claims rank "
            f"{result.rank}"
        )

    if not pack_suffix(
        tables,
        cursor,
        top_pair,
        wires_above,
        repeaters_above,
        top_pair_leftover=leftover,
    ):
        raise RankComputationError(
            "the witness's remaining wires do not pack into the stack"
        )
