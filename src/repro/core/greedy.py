"""Greedy top-down assignment — the baseline of the paper's Figure 2.

The greedy strategy assigns wires longest-first into the topmost
layer-pair until it is full, inserting repeaters into each failing wire
as long as budget remains, then moves down a pair — with no lookahead.
Figure 2 of the paper shows this is suboptimal: two long wires can eat
the whole repeater budget on a high-RC upper pair, starving the wires
below (greedy rank 2 vs optimal rank 4).

The solver reports the same quantities as the DP so the two can be
compared head-to-head (``benchmarks/bench_fig2.py``).  The repeater
budget is charged in continuous area here — greedy is a baseline, not a
cross-validated oracle; comparison tests account for the DP's
conservative cell rounding.
"""

from __future__ import annotations

import time

from ..assign.tables import AssignmentTables
from .dp import RawSolution, SolverStats


def solve_rank_greedy(tables: AssignmentTables) -> RawSolution:
    """Rank achieved by greedy top-down assignment with greedy buffering.

    Returns
    -------
    RawSolution
        ``rank`` counts the leading wires that met their targets before
        the first failure; ``fits`` reports whether greedy managed to
        place every wire at all (greedy may also fail Definition 3 where
        an optimal packer would not — that, too, is part of the
        baseline's weakness).
    """
    start_time = time.perf_counter()
    stats = SolverStats(solver="greedy")

    num_groups = tables.num_groups
    num_pairs = tables.num_pairs
    budget_left = tables.repeater_budget_area

    group = 0
    group_remaining = int(tables.counts[0]) if num_groups else 0
    wires_assigned = 0
    repeaters_total = 0
    rank = 0
    delay_failed = False

    for pair in range(num_pairs):
        if group >= num_groups:
            break
        capacity = tables.capacity(pair, wires_assigned, repeaters_total)
        area_used = 0.0
        unit_rep_area = float(tables.repeater_unit_area[pair])
        while group < num_groups:
            stats.states_explored += 1
            per_wire_area = float(tables.lengths_m[group]) * float(
                tables.pair_pitch[pair]
            )
            fit = int((capacity - area_used) // per_wire_area)
            fit = min(fit, group_remaining)
            if fit <= 0:
                break  # pair full; next pair down

            meeting = 0
            if not delay_failed:
                stages = int(tables.stages[pair][group])
                if stages < 0:
                    delay_failed = True  # cannot meet target on this pair
                elif stages == 0:
                    meeting = fit  # bare driver suffices, no budget used
                else:
                    per_wire_rep = stages * unit_rep_area
                    affordable = int(budget_left // per_wire_rep)
                    meeting = min(fit, affordable)
                    budget_left -= meeting * per_wire_rep
                    repeaters_total += meeting * (stages - 1)
                    if meeting < fit:
                        delay_failed = True
                rank += meeting

            area_used += fit * per_wire_area
            wires_assigned += fit
            group_remaining -= fit
            if group_remaining == 0:
                group += 1
                if group < num_groups:
                    group_remaining = int(tables.counts[group])

    fits = group >= num_groups
    stats.runtime_seconds = time.perf_counter() - start_time
    if not fits:
        return RawSolution(rank=0, fits=False, stats=stats)
    return RawSolution(rank=rank, fits=True, stats=stats)
