"""Retry policies: how hard the executor tries before declaring failure.

A :class:`RetryPolicy` is deterministic — retries of a failed point
re-run the *same* computation, optionally degraded along a fixed
ladder (coarser bunch size), so a retried batch is exactly
reproducible and every accuracy trade is recorded in the run journal.
The optional exponential backoff between attempts is deterministic
too: its jitter is drawn from a :class:`random.Random` seeded by
``(seed, point key, attempt)``, never from process-global entropy, so
the same run waits the same milliseconds every time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

from ..errors import ReproError, RunnerError


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and deterministic degradation ladder for one point.

    Attributes
    ----------
    max_attempts:
        Total tries per point (1 = no retries).  Also bounds how often
        the parallel backend resubmits a point whose worker process
        died mid-evaluation.
    timeout_s:
        Per-attempt wall-clock budget in seconds; enforced
        cooperatively via the DP solver's deadline hook
        (:func:`repro.core.dp.check_deadline`).  ``None`` disables it.
    bunch_scale:
        Degradation ladder: attempt ``i`` multiplies the evaluation's
        bunch size by ``bunch_scale ** i``, trading rank accuracy (the
        error bound grows with the bunch) for speed.  1.0 means retries
        repeat the identical computation — only useful together with
        ``timeout_s`` relief through a lighter machine moment, so the
        default ladder coarsens by 2x per retry.
    retry_on:
        Exception classes that count as retryable.  Anything else
        (``TypeError`` and friends) propagates immediately — a
        programming error should never be papered over by a retry.
    backoff_s:
        Base wait before retry attempt 1 (0, the default, disables
        backoff entirely).  Attempt ``i`` waits
        ``min(backoff_max_s, backoff_s * backoff_factor ** (i - 1))``,
        optionally stretched by jitter.
    backoff_factor:
        Exponential growth of the wait per retry (>= 1).
    backoff_max_s:
        Hard ceiling on any single wait.
    jitter:
        Fractional jitter: the wait is stretched by up to
        ``jitter * 100`` percent, drawn deterministically from ``seed``
        + point key + attempt (0 disables).
    seed:
        Seed for the jitter stream.
    hang_grace:
        Grace multiplier for the parallel backend's hang watchdog: a
        worker is presumed hung — and reaped — once it exceeds
        ``hang_grace ×`` its total cooperative budget
        (``timeout_s * max_attempts`` plus the full backoff budget).
        Only meaningful with ``timeout_s`` set.
    """

    max_attempts: int = 1
    timeout_s: Optional[float] = None
    bunch_scale: float = 2.0
    retry_on: Tuple[Type[BaseException], ...] = field(default=(ReproError,))
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0
    hang_grace: float = 4.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RunnerError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise RunnerError(
                f"RetryPolicy.timeout_s must be positive, got {self.timeout_s!r}"
            )
        if self.bunch_scale < 1.0:
            raise RunnerError(
                f"RetryPolicy.bunch_scale must be >= 1.0 (degradations only "
                f"coarsen), got {self.bunch_scale!r}"
            )
        if not self.retry_on:
            raise RunnerError("RetryPolicy.retry_on must name at least one class")
        if self.backoff_s < 0:
            raise RunnerError(
                f"RetryPolicy.backoff_s must be >= 0, got {self.backoff_s!r}"
            )
        if self.backoff_factor < 1.0:
            raise RunnerError(
                f"RetryPolicy.backoff_factor must be >= 1.0, "
                f"got {self.backoff_factor!r}"
            )
        if self.backoff_max_s <= 0:
            raise RunnerError(
                f"RetryPolicy.backoff_max_s must be positive, "
                f"got {self.backoff_max_s!r}"
            )
        if self.jitter < 0:
            raise RunnerError(
                f"RetryPolicy.jitter must be >= 0, got {self.jitter!r}"
            )
        if self.hang_grace < 1.0:
            raise RunnerError(
                f"RetryPolicy.hang_grace must be >= 1.0, got {self.hang_grace!r}"
            )

    def degradation(self, attempt: int) -> Dict[str, float]:
        """Fallback knobs for the given 0-based attempt.

        The first attempt always runs undegraded; retries walk the
        ladder deterministically.
        """
        if attempt <= 0 or self.bunch_scale == 1.0:
            return {}
        return {"bunch_scale": self.bunch_scale ** attempt}

    def deadline(self, now: Optional[float] = None) -> Optional[float]:
        """Absolute ``time.monotonic()`` deadline for an attempt starting now."""
        if self.timeout_s is None:
            return None
        return (time.monotonic() if now is None else now) + self.timeout_s

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether the exception counts against the attempt budget."""
        return isinstance(exc, self.retry_on)

    def _backoff_base(self, attempt: int) -> float:
        return min(
            self.backoff_max_s,
            self.backoff_s * self.backoff_factor ** (attempt - 1),
        )

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry ``attempt`` (0-based index >= 1).

        Deterministic: the jitter stream is seeded by
        ``(seed, key, attempt)``, so a replayed run reproduces the
        exact waits.  Attempt 0 and ``backoff_s == 0`` wait nothing.
        """
        if attempt <= 0 or self.backoff_s <= 0:
            return 0.0
        base = self._backoff_base(attempt)
        if not self.jitter:
            return base
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())

    def backoff_budget(self) -> float:
        """Upper bound on total backoff waiting across all retries.

        The hang watchdog adds this to the cooperative compute budget
        so backoff pauses are never mistaken for hangs.
        """
        if self.backoff_s <= 0:
            return 0.0
        return sum(
            self._backoff_base(attempt) * (1.0 + self.jitter)
            for attempt in range(1, self.max_attempts)
        )


def scaled_bunch_size(
    bunch_size: Optional[int], degradation: Dict[str, float]
) -> Optional[int]:
    """Apply a policy degradation to an evaluation's bunch size.

    ``None`` (exact, unbunched) stays exact — there is no coarsening to
    relax — and any other knob in the mapping is ignored here, so
    evaluators can opt into exactly the knobs they understand.
    """
    scale = degradation.get("bunch_scale")
    if bunch_size is None or not scale:
        return bunch_size
    return max(1, int(round(bunch_size * scale)))
