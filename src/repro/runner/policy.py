"""Retry policies: how hard the executor tries before declaring failure.

A :class:`RetryPolicy` is deliberately deterministic — no jittered
backoff, no randomness.  Retries of a failed point re-run the *same*
computation, optionally degraded along a fixed ladder (coarser bunch
size), so a retried batch is exactly reproducible and every accuracy
trade is recorded in the run journal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

from ..errors import ReproError, RunnerError


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and deterministic degradation ladder for one point.

    Attributes
    ----------
    max_attempts:
        Total tries per point (1 = no retries).
    timeout_s:
        Per-attempt wall-clock budget in seconds; enforced
        cooperatively via the DP solver's deadline hook
        (:func:`repro.core.dp.check_deadline`).  ``None`` disables it.
    bunch_scale:
        Degradation ladder: attempt ``i`` multiplies the evaluation's
        bunch size by ``bunch_scale ** i``, trading rank accuracy (the
        error bound grows with the bunch) for speed.  1.0 means retries
        repeat the identical computation — only useful together with
        ``timeout_s`` relief through a lighter machine moment, so the
        default ladder coarsens by 2x per retry.
    retry_on:
        Exception classes that count as retryable.  Anything else
        (``TypeError`` and friends) propagates immediately — a
        programming error should never be papered over by a retry.
    """

    max_attempts: int = 1
    timeout_s: Optional[float] = None
    bunch_scale: float = 2.0
    retry_on: Tuple[Type[BaseException], ...] = field(default=(ReproError,))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RunnerError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise RunnerError(
                f"RetryPolicy.timeout_s must be positive, got {self.timeout_s!r}"
            )
        if self.bunch_scale < 1.0:
            raise RunnerError(
                f"RetryPolicy.bunch_scale must be >= 1.0 (degradations only "
                f"coarsen), got {self.bunch_scale!r}"
            )
        if not self.retry_on:
            raise RunnerError("RetryPolicy.retry_on must name at least one class")

    def degradation(self, attempt: int) -> Dict[str, float]:
        """Fallback knobs for the given 0-based attempt.

        The first attempt always runs undegraded; retries walk the
        ladder deterministically.
        """
        if attempt <= 0 or self.bunch_scale == 1.0:
            return {}
        return {"bunch_scale": self.bunch_scale ** attempt}

    def deadline(self, now: Optional[float] = None) -> Optional[float]:
        """Absolute ``time.monotonic()`` deadline for an attempt starting now."""
        if self.timeout_s is None:
            return None
        return (time.monotonic() if now is None else now) + self.timeout_s

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether the exception counts against the attempt budget."""
        return isinstance(exc, self.retry_on)


def scaled_bunch_size(
    bunch_size: Optional[int], degradation: Dict[str, float]
) -> Optional[int]:
    """Apply a policy degradation to an evaluation's bunch size.

    ``None`` (exact, unbunched) stays exact — there is no coarsening to
    relax — and any other knob in the mapping is ignored here, so
    evaluators can opt into exactly the knobs they understand.
    """
    scale = degradation.get("bunch_scale")
    if bunch_size is None or not scale:
        return bunch_size
    return max(1, int(round(bunch_size * scale)))
