"""Fault-tolerant process-pool backend for the batch executor.

:func:`repro.runner.executor.run_batch` dispatches independent points
to a worker pool when asked for ``jobs > 1``.  The pool is built
directly on :mod:`multiprocessing` pipes rather than
``concurrent.futures`` so the parent owns every recovery decision the
chaos suite (:mod:`repro.faultkit`) exercises:

* **dead-worker detection** — the parent waits on each worker's
  *process sentinel* alongside its result pipe; a worker that dies
  mid-point (OOM kill, segfault, injected ``SIGKILL``) is detected
  immediately and its in-flight point is resubmitted to a replacement
  worker, bounded by ``policy.max_attempts`` submissions
  (``runner.worker_deaths`` / ``runner.resubmissions``);
* **hang watchdog** — with ``policy.timeout_s`` set, a worker holding
  a point longer than ``policy.hang_grace ×`` its total cooperative
  budget (timeout × attempts + backoff) is presumed stuck and reaped
  with ``SIGKILL`` (``runner.hangs_reaped``), then treated as a death;
* **graceful degradation** — when the pool keeps dying (more than
  ``max(4, 2 × workers)`` deaths), the backend stops spawning
  replacements and hands the still-pending points back to the caller
  for sequential in-process execution (``runner.pool_degradations``);
* **no orphans** — ``SIGTERM``/``SIGINT`` to the parent kill every
  worker before the signal's normal effect proceeds (so the final
  checkpoint commit in ``run_batch``'s ``finally`` still runs), and
  each worker independently exits when it notices it has been
  reparented, covering even a ``SIGKILL``-ed parent.

The sequential contract is unchanged: each worker runs the same
:func:`~repro.runner.executor.execute_point` driver (retry budget,
degradation ladder, cooperative deadlines enforced in-worker), the
``(evaluate, policy)`` pair is pickled once up front so an unpicklable
evaluator fails fast, outcomes are reported in completion order for
incremental checkpointing, and the caller re-canonicalizes results,
journal, and checkpoint into batch point order — the persisted output
of ``jobs=N`` is identical to ``jobs=1``.  Workers pre-pickle their
outcome and fall back to a structured error message when the result
cannot cross the process boundary, so a pickling failure surfaces as a
:class:`~repro.errors.RunnerError` instead of a hung pool.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from multiprocessing import connection, get_context
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import RunnerError
from ..faultkit.inject import fault_point, install as _install_faults
from ..obs import aggregate as _aggregate
from ..obs.metrics import gauge as _obs_gauge
from ..obs.metrics import inc as _obs_inc
from ..obs.metrics import metrics_enabled as _metrics_enabled
from .journal import STATUS_FAILED, AttemptRecord, PointRecord

#: How often an idle worker wakes to check for tasks and for a
#: vanished parent (orphan self-cleanup).
_TASK_POLL_S = 0.25

#: How long to wait for workers to exit after the shutdown sentinel
#: before escalating to SIGKILL.
_JOIN_GRACE_S = 5.0


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean sequential; ``0`` means one worker per
    available CPU; anything negative is an error.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise RunnerError(f"jobs must be >= 0 (0 = one per CPU), got {jobs!r}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def dumps_worker_payload(name: str, evaluate, policy) -> bytes:
    """Pickle ``(evaluate, policy)`` for shipment to worker processes.

    Raising here — before any process is forked — turns the classic
    late ``PicklingError`` inside the pool into an immediate, explained
    failure.
    """
    try:
        return pickle.dumps((evaluate, policy), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise RunnerError(
            f"run {name!r}: evaluate/policy cannot be pickled for parallel "
            f"execution ({type(exc).__name__}: {exc}); jobs > 1 needs a "
            f"module-level function or a dataclass instance, not a closure "
            f"or lambda — or run with jobs=1"
        ) from exc


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _encode_error(tag: str, key: str, submit: int, exc: BaseException) -> bytes:
    """Ship an exception as data; the original object when it survives
    a pickle round-trip, else its type name and message."""
    def _pack(exc_blob: Optional[bytes]) -> bytes:
        return pickle.dumps(
            (tag, key, submit, exc_blob, type(exc).__name__, str(exc)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    try:
        exc_blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(exc_blob)
    except Exception:
        return _pack(None)
    return _pack(exc_blob)


def _evaluate_task(point, submit: int, evaluate, policy) -> bytes:
    """Run one point in the worker; always returns an encodable message.

    Three shapes: ``("ok", key, outcome)`` on success (including
    exhausted-retries failure outcomes — those are data, not errors),
    ``("raise", ...)`` for exceptions escaping the execute driver
    (non-retryable evaluator errors keep their original type in the
    parent), ``("unserializable", ...)`` when the outcome itself cannot
    be pickled back.
    """
    from .executor import execute_point

    try:
        fault_point("parallel.worker.start", point=point.key, submit=submit)
        if not _aggregate.obs_enabled():
            outcome = execute_point(point, evaluate, policy)
        else:
            # Per-point delta shipping: reset the worker's registry,
            # evaluate, snapshot, and attach the delta so the parent can
            # merge it.  Counter totals then match a sequential run
            # regardless of how points were spread across workers.
            started = _aggregate.begin_point()
            outcome = execute_point(point, evaluate, policy)
            outcome = dataclasses.replace(
                outcome, obs=_aggregate.end_point(started)
            )
    except BaseException as exc:
        return _encode_error("raise", point.key, submit, exc)
    try:
        fault_point("parallel.result", point=point.key, submit=submit)
        return pickle.dumps(
            ("ok", point.key, outcome), protocol=pickle.HIGHEST_PROTOCOL
        )
    except BaseException as exc:
        return _encode_error("unserializable", point.key, submit, exc)


def _worker_main(
    payload: bytes,
    obs_flags: Tuple[bool, bool],
    fault_blob: Optional[bytes],
    task_r,
    res_w,
    parent_pid: int,
) -> None:
    """Worker loop: poll for tasks, evaluate, ship pre-pickled results.

    Exits on the ``None`` shutdown sentinel, on a closed pipe, or when
    the parent vanishes (``getppid`` no longer matches — the orphan
    self-cleanup that survives even a SIGKILL-ed parent).
    """
    if fault_blob is not None:
        _install_faults(pickle.loads(fault_blob))
    evaluate, policy = pickle.loads(payload)
    _aggregate.apply_obs_flags(obs_flags)
    while True:
        try:
            has_task = task_r.poll(_TASK_POLL_S)
        except (EOFError, OSError):
            return
        if not has_task:
            if os.getppid() != parent_pid:
                return
            continue
        try:
            task = task_r.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        point, submit = task
        message = _evaluate_task(point, submit, evaluate, policy)
        try:
            res_w.send_bytes(message)
        except (BrokenPipeError, OSError):
            return


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Inflight:
    point: object
    submit: int
    submitted: float
    deadline: Optional[float]


class _Worker:
    """One pool process plus its dedicated task/result pipes."""

    def __init__(self, process, task_w, res_r) -> None:
        self.process = process
        self.task_w = task_w
        self.res_r = res_r
        self.inflight: Optional[_Inflight] = None

    def close(self) -> None:
        for conn in (self.task_w, self.res_r):
            try:
                conn.close()
            except OSError:
                pass  # already closed by a prior cleanup path


def _task_budget(policy) -> Optional[float]:
    """Watchdog wall-clock budget for one submission, or ``None``.

    Without a cooperative ``timeout_s`` there is no basis for calling a
    worker hung, so the watchdog is off.
    """
    if policy.timeout_s is None:
        return None
    compute = policy.timeout_s * policy.max_attempts + policy.backoff_budget()
    return compute * policy.hang_grace


@contextmanager
def _reap_on_signals(kill_all: Callable[[], None]) -> Iterator[None]:
    """While active, SIGTERM/SIGINT kill every worker before unwinding.

    The handler raises (``SystemExit(128 + signum)`` / a normal
    ``KeyboardInterrupt``) so the stack unwinds through ``run_batch``'s
    ``finally`` and the final checkpoint commit still happens —
    interrupted parallel runs stay resumable and leave no orphans.
    Installed only in the main thread; elsewhere the workers' reparent
    check is the (slower) backstop.
    """
    previous: Dict[int, object] = {}

    def _handler(signum, frame) -> None:
        kill_all()
        for sig, old in previous.items():
            signal.signal(sig, old)
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.getsignal(sig)
            signal.signal(sig, _handler)
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def execute_points_parallel(
    name: str,
    points: Sequence,
    payload: bytes,
    jobs: int,
    policy,
    on_outcome: Callable,
    stop_on_failure: bool,
    fault_blob: Optional[bytes] = None,
) -> List[object]:
    """Run ``points`` through the pool, reporting in completion order.

    ``on_outcome(point, outcome)`` is invoked in the parent for every
    finished point.  With ``stop_on_failure`` the first exhausted point
    stops dispatch of every not-yet-started one (strict mode);
    already-running points are allowed to finish and are still
    reported, so everything computed gets checkpointed.  Worker
    exceptions (non-retryable evaluator errors) propagate with their
    original type; a worker dying or hanging resubmits its point until
    ``policy.max_attempts`` submissions are spent, after which the
    point is reported as failed like any exhausted point.

    Returns the points that were **not** executed because the pool
    degraded (repeated worker deaths exhausted the replacement
    budget), in batch order; the caller runs them sequentially.
    Normally empty.
    """
    if not points:
        return []
    workers_n = min(jobs, len(points))
    try:
        # Fork keeps warm precompute caches shared copy-on-write.
        ctx = get_context("fork")
    except ValueError:
        ctx = get_context()
    budget_s = _task_budget(policy)
    death_budget = max(4, 2 * workers_n)
    pending: Deque[Tuple[object, int]] = deque((p, 0) for p in points)
    pool: List[_Worker] = []
    deaths = 0
    stop_feeding = False
    degraded = False
    busy = 0.0
    pool_started = time.monotonic()
    obs_flags = _aggregate.obs_flags()

    def _spawn() -> _Worker:
        task_r, task_w = ctx.Pipe(duplex=False)
        res_r, res_w = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(payload, obs_flags, fault_blob, task_r, res_w, os.getpid()),
            daemon=True,
        )
        process.start()
        task_r.close()
        res_w.close()
        return _Worker(process, task_w, res_r)

    def _kill_all() -> None:
        for worker in pool:
            try:
                worker.process.kill()
            except (OSError, ValueError):
                pass  # already gone; nothing left to reap

    def _handle_message(worker: _Worker, blob: bytes) -> None:
        nonlocal busy, stop_feeding
        task = worker.inflight
        worker.inflight = None
        message = pickle.loads(blob)
        tag, key = message[0], message[1]
        if tag == "ok":
            outcome = message[2]
            _aggregate.merge_point(
                getattr(outcome, "obs", None),
                submitted=task.submitted if task else None,
            )
            busy += _aggregate.busy_seconds(getattr(outcome, "obs", None))
            on_outcome(task.point if task else None, outcome)
            if stop_on_failure and not outcome.ok:
                stop_feeding = True
            return
        _submit, exc_blob, exc_type, exc_message = message[2:6]
        if tag == "raise":
            if exc_blob is not None:
                raise pickle.loads(exc_blob)
            raise RunnerError(
                f"run {name!r}: worker failed on point {key!r} "
                f"({exc_type}: {exc_message})"
            )
        raise RunnerError(
            f"run {name!r}: worker could not serialize the result for "
            f"point {key!r} ({exc_type}: {exc_message}); completed points "
            f"are checkpointed — re-run with resume to continue"
        )

    def _handle_death(worker: _Worker, reason: str) -> None:
        nonlocal deaths, degraded, stop_feeding
        if worker not in pool:
            return
        pool.remove(worker)
        worker.close()
        worker.process.join(timeout=1.0)
        deaths += 1
        _obs_inc("runner.worker_deaths")
        task = worker.inflight
        worker.inflight = None
        if task is not None:
            if task.submit + 1 < policy.max_attempts:
                pending.appendleft((task.point, task.submit + 1))
                _obs_inc("runner.resubmissions")
            else:
                _obs_inc("runner.points_failed")
                record = PointRecord(
                    key=task.point.key,
                    value=task.point.journal_value(),
                    status=STATUS_FAILED,
                    attempts=(
                        AttemptRecord(
                            index=task.submit,
                            error_type="WorkerCrash",
                            error_message=(
                                f"worker process died ({reason}) while "
                                f"evaluating {task.point.key!r}; submission "
                                f"{task.submit + 1}/{policy.max_attempts}"
                            ),
                        ),
                    ),
                )
                from .executor import PointOutcome

                on_outcome(task.point, PointOutcome(record=record))
                if stop_on_failure:
                    stop_feeding = True
        if deaths > death_budget and not degraded:
            degraded = True
            _obs_inc("runner.pool_degradations")

    def _reap_hang(worker: _Worker) -> None:
        # Last chance: a result racing the deadline wins.
        if worker.res_r.poll(0):
            try:
                _handle_message(worker, worker.res_r.recv_bytes())
                return
            except (EOFError, OSError):
                pass  # pipe died under us; fall through to the reap
        budget = f"{budget_s:.1f}s" if budget_s is not None else "?"
        try:
            worker.process.kill()
        except (OSError, ValueError):
            pass  # exited on its own in the race window
        _obs_inc("runner.hangs_reaped")
        _handle_death(worker, f"hung: exceeded the watchdog budget of {budget}")

    try:
        with _reap_on_signals(_kill_all):
            while True:
                # Keep the pool staffed while there is work to dispatch.
                if not stop_feeding and not degraded:
                    busy_n = sum(1 for w in pool if w.inflight is not None)
                    while len(pool) < min(workers_n, busy_n + len(pending)):
                        pool.append(_spawn())
                # Feed every idle worker (unless dispatch is stopped).
                if not stop_feeding and not degraded:
                    for worker in pool:
                        if worker.inflight is not None or not pending:
                            continue
                        point, submit = pending.popleft()
                        now = time.monotonic()
                        try:
                            worker.task_w.send((point, submit))
                        except (BrokenPipeError, OSError):
                            # Death races the dispatch; requeue and let
                            # the sentinel path account for the worker.
                            pending.appendleft((point, submit))
                            continue
                        worker.inflight = _Inflight(
                            point=point,
                            submit=submit,
                            submitted=now,
                            deadline=None if budget_s is None else now + budget_s,
                        )
                inflight = [w for w in pool if w.inflight is not None]
                if not inflight and (not pending or stop_feeding or degraded):
                    break
                if not pool:
                    # Every worker is gone and none may be respawned:
                    # hand the rest back for sequential execution.
                    if not degraded:
                        degraded = True
                        _obs_inc("runner.pool_degradations")
                    continue
                timeout: Optional[float] = None
                if budget_s is not None and inflight:
                    now = time.monotonic()
                    timeout = max(
                        0.0,
                        min(w.inflight.deadline for w in inflight) - now,
                    )
                by_result = {w.res_r: w for w in pool}
                by_sentinel = {w.process.sentinel: w for w in pool}
                ready = connection.wait(
                    list(by_result) + list(by_sentinel), timeout
                )
                # Results first: a worker that answered and then died
                # must deliver its answer before the death is handled.
                for obj in ready:
                    worker = by_result.get(obj)
                    if worker is None or worker not in pool:
                        continue
                    try:
                        blob = worker.res_r.recv_bytes()
                    except (EOFError, OSError):
                        continue  # dead; its sentinel is in this batch
                    _handle_message(worker, blob)
                for obj in ready:
                    worker = by_sentinel.get(obj)
                    if worker is None or worker not in pool:
                        continue
                    if worker.inflight is None and worker.res_r.poll(0):
                        # Exited right after answering; drain first.
                        try:
                            _handle_message(worker, worker.res_r.recv_bytes())
                        except (EOFError, OSError):
                            pass  # nothing to drain after all
                    _handle_death(worker, "crashed")
                if budget_s is not None:
                    now = time.monotonic()
                    for worker in list(pool):
                        task = worker.inflight
                        if (
                            task is not None
                            and task.deadline is not None
                            and now >= task.deadline
                        ):
                            _reap_hang(worker)
            # Graceful shutdown: sentinel, short join, then escalate.
            for worker in pool:
                try:
                    worker.task_w.send(None)
                except (BrokenPipeError, OSError):
                    pass  # worker already gone; join below reaps it
            deadline = time.monotonic() + _JOIN_GRACE_S
            for worker in pool:
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
        if _metrics_enabled():
            wall = max(1e-9, time.monotonic() - pool_started)
            _obs_gauge("parallel.worker_utilization", busy / (workers_n * wall))
    finally:
        for worker in pool:
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            worker.close()
    if degraded and pending and not stop_feeding:
        leftover = {point.key for point, _ in pending}
        return [point for point in points if point.key in leftover]
    return []
