"""Warm worker-pool backend for the batch executor.

:func:`repro.runner.executor.run_batch` dispatches independent points
to a worker pool when asked for ``jobs > 1``.  The pool is built
directly on :mod:`multiprocessing` pipes rather than
``concurrent.futures`` so the parent owns every recovery decision the
chaos suite (:mod:`repro.faultkit`) exercises, and it is *warm*:

* **spawn once, shared-memory handoff** — workers are started once per
  batch and receive the evaluator, policy, and point list through one
  :mod:`multiprocessing.shared_memory` segment: every dense numpy
  array (``AssignmentTables`` columns, ``RCArrays``, warmed coarse
  WLDs) is hoisted out of the pickle by
  :func:`repro.core.precompute.dumps_hoisted`, published once, and
  attached zero-copy by each worker after SHA-256 digest validation
  (``pool.shm.export`` / ``pool.shm.attach`` fault sites).  When
  shared memory is unavailable the payload falls back to inline
  pickling (``parallel.shm_fallbacks``);
* **chunked work queue** — instead of one pickled submission per
  point, workers pull *chunks* of point indices
  (``resolve_chunk_size``: explicit ``chunk_size`` or an automatic
  ``~4 waves per worker`` split) and stream one pre-pickled result
  message per point, so per-task IPC is a few bytes each way
  (``pool.chunk.dispatch`` / ``pool.chunk.start`` fault sites,
  ``parallel.chunks_dispatched`` / ``parallel.chunk_size`` metrics);
* **sequential auto-fallback** — :func:`should_use_pool` routes the
  batch back to in-process execution when a pool cannot win: explicit
  ``pool_mode="sequential"``, one effective job, a sub-2-point batch,
  or (``pool_mode="auto"``) a single usable CPU
  (``parallel.pool_fallbacks``).  ``pool_mode="warm"`` forces the pool
  for tests and benchmarks;
* **dead-worker detection** — the parent waits on each worker's
  *process sentinel* alongside its result pipe; a worker that dies
  mid-chunk (OOM kill, segfault, injected ``SIGKILL``) is detected
  immediately and every unanswered entry of its chunk is resubmitted
  to a replacement, bounded by ``policy.max_attempts`` submissions
  (``runner.worker_deaths`` / ``runner.resubmissions``);
* **hang watchdog** — with ``policy.timeout_s`` set, a worker whose
  chunk makes no progress for ``policy.hang_grace ×`` one point's
  total cooperative budget (timeout × attempts + backoff) is presumed
  stuck and reaped with ``SIGKILL`` (``runner.hangs_reaped``), then
  treated as a death; each streamed result resets the deadline, so the
  budget is per point even inside a large chunk;
* **graceful degradation** — when the pool keeps dying (more than
  ``max(4, 2 × workers)`` deaths), the backend stops spawning
  replacements and hands the still-pending points back to the caller
  for sequential in-process execution (``runner.pool_degradations``);
* **no orphans, no leaked segments** — ``SIGTERM``/``SIGINT`` to the
  parent kill every worker before the signal's normal effect proceeds
  (so the final checkpoint commit in ``run_batch``'s ``finally`` still
  runs), the shared-memory segment is closed and unlinked on every
  exit path, each worker independently exits when it notices it has
  been reparented, and multiprocessing's resource tracker covers even
  a ``SIGKILL``-ed parent.

The sequential contract is unchanged: each worker runs the same
:func:`~repro.runner.executor.execute_point` driver (retry budget,
degradation ladder, cooperative deadlines enforced in-worker), the
payload is pickled once up front so an unpicklable evaluator fails
fast, outcomes are reported in completion order for incremental
checkpointing, and the caller re-canonicalizes results, journal, and
checkpoint into batch point order — the persisted output of
``jobs=N`` is identical to ``jobs=1``.  Workers pre-pickle their
outcome and fall back to a structured error message when the result
cannot cross the process boundary, so a pickling failure surfaces as a
:class:`~repro.errors.RunnerError` instead of a hung pool.
"""

from __future__ import annotations

import dataclasses
import multiprocessing.context
import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from multiprocessing import connection, get_context
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.precompute import (
    ShmArrayStore,
    attach_arrays,
    dumps_hoisted,
    loads_hoisted,
)
from ..errors import RunnerError
from ..faultkit.inject import fault_point, install as _install_faults
from ..obs import aggregate as _aggregate
from ..obs.metrics import gauge as _obs_gauge
from ..obs.metrics import inc as _obs_inc
from ..obs.metrics import metrics_enabled as _metrics_enabled
from .journal import STATUS_FAILED, AttemptRecord, PointRecord

if TYPE_CHECKING:
    from multiprocessing.process import BaseProcess

    from .executor import Attempt, PointSpec
    from .policy import RetryPolicy

#: An evaluate callable as run_batch accepts it.
EvaluateFn = Callable[["PointSpec", "Attempt"], object]

#: How often an idle worker wakes to check for tasks and for a
#: vanished parent (orphan self-cleanup).
_TASK_POLL_S = 0.25

#: How long to wait for workers to exit after the shutdown sentinel
#: before escalating to SIGKILL.
_JOIN_GRACE_S = 5.0

#: The recognized ``pool_mode`` values.
POOL_MODE_AUTO = "auto"
POOL_MODE_WARM = "warm"
POOL_MODE_SEQUENTIAL = "sequential"
POOL_MODES: Tuple[str, ...] = (
    POOL_MODE_AUTO,
    POOL_MODE_WARM,
    POOL_MODE_SEQUENTIAL,
)

#: Auto chunking aims for this many chunks per worker, so a slow point
#: cannot strand a long tail behind one worker...
_CHUNK_WAVES = 4
#: ...while chunks never exceed this many points, keeping resubmission
#: after a mid-chunk crash cheap.
_CHUNK_CAP = 32


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean sequential; ``0`` means one worker per
    available CPU; anything negative is an error.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise RunnerError(f"jobs must be >= 0 (0 = one per CPU), got {jobs!r}")
    if jobs == 0:
        return max(1, usable_cpus())
    return jobs


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    On cgroup-limited CI runners ``os.cpu_count()`` reports the host,
    not the container; the scheduler affinity mask is what bounds real
    parallelism, so the auto-fallback decision uses it when available.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def fork_context() -> "multiprocessing.context.BaseContext":
    """The multiprocessing context warm pools spawn workers from.

    Fork keeps warm precompute caches shared copy-on-write, so it is
    preferred wherever the platform offers it; elsewhere (no ``fork``
    start method) the platform default is used.  Shared between the
    batch pool here and the serving layer's solve pool
    (:mod:`repro.service.executor`).
    """
    try:
        return get_context("fork")
    except ValueError:
        return get_context()


def should_use_pool(pool_mode: str, jobs: int, n_points: int) -> bool:
    """Whether a worker pool can beat in-process execution.

    ``sequential`` never pools; ``warm`` always does (given work for
    more than one worker to share); ``auto`` additionally requires at
    least two usable CPUs — on a single core a pool only adds fork,
    IPC, and scheduling overhead, which is exactly the regression the
    never-slower-than-sequential gate guards against.
    """
    if pool_mode == POOL_MODE_SEQUENTIAL:
        return False
    if jobs <= 1 or n_points < 2:
        return False
    if pool_mode == POOL_MODE_WARM:
        return True
    return usable_cpus() >= 2


def resolve_chunk_size(
    chunk_size: Optional[int], n_points: int, workers: int
) -> int:
    """Points per work-queue chunk.

    ``None``/``0`` picks automatically: the batch split into about
    :data:`_CHUNK_WAVES` chunks per worker (load balance against slow
    points), capped at :data:`_CHUNK_CAP` (cheap crash resubmission).
    """
    if chunk_size:
        if chunk_size < 1:
            raise RunnerError(
                f"chunk_size must be >= 1 (or 0/None for auto), "
                f"got {chunk_size!r}"
            )
        return chunk_size
    waves = max(1, workers) * _CHUNK_WAVES
    return max(1, min(-(-n_points // waves), _CHUNK_CAP))


@dataclasses.dataclass(frozen=True)
class WorkerPayload:
    """The batch payload, pickled once with its arrays hoisted out.

    ``skeleton`` is the array-free pickle of
    ``(evaluate, policy, points)``; ``arrays`` are the hoisted dense
    arrays, published to shared memory (or shipped inline) by
    :func:`execute_points_parallel`.
    """

    name: str
    skeleton: bytes
    arrays: Tuple


def dumps_worker_payload(
    name: str,
    evaluate: EvaluateFn,
    policy: "RetryPolicy",
    points: Sequence["PointSpec"] = (),
) -> WorkerPayload:
    """Pickle ``(evaluate, policy, points)`` for shipment to workers.

    Raising here — before any process is forked — turns the classic
    late ``PicklingError`` inside the pool into an immediate, explained
    failure.  Dense arrays are hoisted rather than serialized, so this
    is cheap even for evaluators dragging a warmed precompute cache.
    """
    try:
        skeleton, arrays = dumps_hoisted((evaluate, policy, tuple(points)))
    except Exception as exc:
        raise RunnerError(
            f"run {name!r}: evaluate/policy cannot be pickled for parallel "
            f"execution ({type(exc).__name__}: {exc}); jobs > 1 needs a "
            f"module-level function or a dataclass instance, not a closure "
            f"or lambda — or run with jobs=1"
        ) from exc
    return WorkerPayload(name=name, skeleton=skeleton, arrays=arrays)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _encode_error(tag: str, index: int, submit: int, exc: BaseException) -> bytes:
    """Ship an exception as data; the original object when it survives
    a pickle round-trip, else its type name and message."""
    def _pack(exc_blob: Optional[bytes]) -> bytes:
        return pickle.dumps(
            (tag, index, submit, exc_blob, type(exc).__name__, str(exc)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    try:
        exc_blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(exc_blob)
    except Exception:
        return _pack(None)
    return _pack(exc_blob)


def _evaluate_task(
    point: "PointSpec",
    index: int,
    submit: int,
    evaluate: EvaluateFn,
    policy: "RetryPolicy",
) -> bytes:
    """Run one point in the worker; always returns an encodable message.

    Three shapes: ``("ok", index, outcome)`` on success (including
    exhausted-retries failure outcomes — those are data, not errors),
    ``("raise", ...)`` for exceptions escaping the execute driver
    (non-retryable evaluator errors keep their original type in the
    parent), ``("unserializable", ...)`` when the outcome itself cannot
    be pickled back.
    """
    from .executor import execute_point

    try:
        fault_point("parallel.worker.start", point=point.key, submit=submit)
        if not _aggregate.obs_enabled():
            outcome = execute_point(point, evaluate, policy)
        else:
            # Per-point delta shipping: reset the worker's registry,
            # evaluate, snapshot, and attach the delta so the parent can
            # merge it.  Counter totals then match a sequential run
            # regardless of how points were spread across workers.
            started = _aggregate.begin_point()
            outcome = execute_point(point, evaluate, policy)
            outcome = dataclasses.replace(
                outcome, obs=_aggregate.end_point(started)
            )
    except BaseException as exc:
        return _encode_error("raise", index, submit, exc)
    try:
        fault_point("parallel.result", point=point.key, submit=submit)
        return pickle.dumps(
            ("ok", index, outcome), protocol=pickle.HIGHEST_PROTOCOL
        )
    except BaseException as exc:
        return _encode_error("unserializable", index, submit, exc)


def _load_worker_payload(
    init_blob: bytes,
) -> Tuple[EvaluateFn, "RetryPolicy", Sequence["PointSpec"], Optional[object]]:
    """Decode the one-time worker payload; attaches shared memory.

    Returns ``(evaluate, policy, points, shm)`` where ``shm`` keeps the
    attached segment (and therefore every zero-copy view into it)
    alive for the worker's lifetime, or is ``None`` in inline mode.
    """
    transport, skeleton, extra = pickle.loads(init_blob)
    if transport == "shm":
        arrays, shm = attach_arrays(extra)
    else:
        arrays, shm = extra, None
    evaluate, policy, points = loads_hoisted(skeleton, arrays)
    return evaluate, policy, points, shm


def _worker_main(
    init_blob: bytes,
    obs_flags: Tuple[bool, bool],
    fault_blob: Optional[bytes],
    task_r: connection.Connection,
    res_w: connection.Connection,
    parent_pid: int,
) -> None:
    """Process entry point: run the loop, then exit without teardown.

    ``os._exit`` skips interpreter shutdown on purpose: the payload
    holds zero-copy views into the attached segment, and letting GC
    close the mapping while views still exist would raise
    ``BufferError`` noise from ``__del__`` during teardown.  The
    process exit unmaps everything regardless; the parent owns the
    segment's unlink.
    """
    try:
        _worker_loop(init_blob, obs_flags, fault_blob, task_r, res_w, parent_pid)
    except BaseException:  # pragma: no cover - defensive trace, then death
        _obs_inc("runner.worker_crashes")
        traceback.print_exc()
    finally:
        os._exit(0)


def _worker_loop(
    init_blob: bytes,
    obs_flags: Tuple[bool, bool],
    fault_blob: Optional[bytes],
    task_r: connection.Connection,
    res_w: connection.Connection,
    parent_pid: int,
) -> None:
    """Worker loop: pull chunks, evaluate, stream pre-pickled results.

    Exits on the ``None`` shutdown sentinel, on a closed pipe, or when
    the parent vanishes (``getppid`` no longer matches — the orphan
    self-cleanup that survives even a SIGKILL-ed parent).  A payload
    that cannot be decoded (failed shared-memory attach, digest
    mismatch) poisons the worker: every received entry is answered
    with the stored error so the parent surfaces it instead of hanging.
    """
    if fault_blob is not None:
        _install_faults(pickle.loads(fault_blob))
    _aggregate.apply_obs_flags(obs_flags)
    points: Sequence = ()
    evaluate = policy = None
    init_error: Optional[BaseException] = None
    try:
        evaluate, policy, points, _shm = _load_worker_payload(init_blob)
    except Exception as exc:
        # Poisoned, not dead: the error is recorded and replayed as the
        # answer to every received entry, so the parent surfaces it.
        _obs_inc("runner.worker_init_errors")
        init_error = exc
    while True:
        try:
            has_task = task_r.poll(_TASK_POLL_S)
        except (EOFError, OSError):
            return
        if not has_task:
            if os.getppid() != parent_pid:
                return
            continue
        try:
            task = task_r.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        first_index, first_submit = task[0]
        fault_point(
            "pool.chunk.start",
            point=(points[first_index].key if init_error is None else None),
            submit=first_submit,
            size=len(task),
        )
        for index, submit in task:
            if init_error is not None:
                message = _encode_error("raise", index, submit, init_error)
            else:
                message = _evaluate_task(
                    points[index], index, submit, evaluate, policy
                )
            try:
                res_w.send_bytes(message)
            except (BrokenPipeError, OSError):
                return


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Chunk:
    """One dispatched work item: the entries still awaiting an answer."""

    entries: Dict[int, int]  # point index -> submission counter
    submitted: float
    deadline: Optional[float]


class _Worker:
    """One pool process plus its dedicated task/result pipes."""

    def __init__(
        self,
        process: "BaseProcess",
        task_w: connection.Connection,
        res_r: connection.Connection,
    ) -> None:
        self.process = process
        self.task_w = task_w
        self.res_r = res_r
        self.inflight: Optional[_Chunk] = None

    def close(self) -> None:
        for conn in (self.task_w, self.res_r):
            try:
                conn.close()
            except OSError:
                pass  # already closed by a prior cleanup path


def _task_budget(policy: "RetryPolicy") -> Optional[float]:
    """Watchdog wall-clock budget for one submission, or ``None``.

    Without a cooperative ``timeout_s`` there is no basis for calling a
    worker hung, so the watchdog is off.  The budget covers a single
    point; inside a chunk, every streamed result resets the clock.
    """
    if policy.timeout_s is None:
        return None
    compute = policy.timeout_s * policy.max_attempts + policy.backoff_budget()
    return compute * policy.hang_grace


@contextmanager
def _reap_on_signals(kill_all: Callable[[], None]) -> Iterator[None]:
    """While active, SIGTERM/SIGINT kill every worker before unwinding.

    The handler raises (``SystemExit(128 + signum)`` / a normal
    ``KeyboardInterrupt``) so the stack unwinds through ``run_batch``'s
    ``finally`` and the final checkpoint commit still happens —
    interrupted parallel runs stay resumable and leave no orphans.
    Installed only in the main thread; elsewhere the workers' reparent
    check is the (slower) backstop.
    """
    previous: Dict[int, object] = {}

    def _handler(signum: int, frame: object) -> None:
        kill_all()
        for sig, old in previous.items():
            signal.signal(sig, old)
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.getsignal(sig)
            signal.signal(sig, _handler)
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _publish_payload(payload: WorkerPayload) -> Tuple[bytes, Optional[ShmArrayStore]]:
    """Publish the payload's arrays; inline pickling as the fallback.

    Returns ``(init_blob, store)``: the per-worker bootstrap blob and
    the parent-owned segment handle (``None`` when shared memory was
    unavailable and the arrays travel inline instead).
    """
    try:
        store = ShmArrayStore.create(payload.arrays)
    except (OSError, ValueError, ImportError):
        _obs_inc("parallel.shm_fallbacks")
        blob = pickle.dumps(
            ("inline", payload.skeleton, payload.arrays),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return blob, None
    _obs_inc("parallel.shm_exports")
    if _metrics_enabled():
        _obs_gauge("parallel.shm_bytes", float(store.manifest.nbytes))
    blob = pickle.dumps(
        ("shm", payload.skeleton, store.manifest),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return blob, store


def execute_points_parallel(
    name: str,
    todo: Sequence[Tuple[int, object]],
    payload: WorkerPayload,
    jobs: int,
    policy: "RetryPolicy",
    on_outcome: Callable,
    stop_on_failure: bool,
    fault_blob: Optional[bytes] = None,
    chunk_size: Optional[int] = None,
) -> List[object]:
    """Run the pending points through the pool, reporting as completed.

    ``todo`` pairs each point with its index into the payload's full
    point list (resume holes make the indices non-contiguous).
    ``on_outcome(point, outcome)`` is invoked in the parent for every
    finished point.  With ``stop_on_failure`` the first exhausted point
    stops dispatch of every not-yet-started chunk (strict mode);
    already-dispatched chunks are allowed to finish and are still
    reported, so everything computed gets checkpointed.  Worker
    exceptions (non-retryable evaluator errors) propagate with their
    original type; a worker dying or hanging resubmits every
    unanswered entry of its chunk until ``policy.max_attempts``
    submissions are spent, after which the point is reported as failed
    like any exhausted point.

    Returns the points that were **not** executed because the pool
    degraded (repeated worker deaths exhausted the replacement
    budget), in batch order; the caller runs them sequentially.
    Normally empty.
    """
    if not todo:
        return []
    by_index: Dict[int, object] = dict(todo)
    workers_n = min(jobs, len(todo))
    ctx = fork_context()
    budget_s = _task_budget(policy)
    death_budget = max(4, 2 * workers_n)
    chunk_n = resolve_chunk_size(chunk_size, len(todo), workers_n)
    indices = [index for index, _ in todo]
    pending: Deque[Tuple[Tuple[int, int], ...]] = deque(
        tuple((index, 0) for index in indices[lo:lo + chunk_n])
        for lo in range(0, len(indices), chunk_n)
    )
    if _metrics_enabled():
        _obs_gauge("parallel.chunk_size", float(chunk_n))
    pool: List[_Worker] = []
    deaths = 0
    stop_feeding = False
    degraded = False
    busy = 0.0
    pool_started = time.monotonic()
    obs_flags = _aggregate.obs_flags()
    init_blob, store = _publish_payload(payload)

    def _spawn() -> _Worker:
        task_r, task_w = ctx.Pipe(duplex=False)
        res_r, res_w = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(init_blob, obs_flags, fault_blob, task_r, res_w, os.getpid()),
            daemon=True,
        )
        process.start()
        task_r.close()
        res_w.close()
        return _Worker(process, task_w, res_r)

    def _kill_all() -> None:
        for worker in pool:
            try:
                worker.process.kill()
            except (OSError, ValueError):
                pass  # already gone; nothing left to reap

    def _handle_message(worker: _Worker, blob: bytes) -> None:
        nonlocal busy, stop_feeding
        chunk = worker.inflight
        message = pickle.loads(blob)
        tag, index = message[0], message[1]
        if chunk is not None:
            chunk.entries.pop(index, None)
            if not chunk.entries:
                worker.inflight = None
            elif budget_s is not None:
                # Streamed progress: the watchdog budget is per point.
                chunk.deadline = time.monotonic() + budget_s
        point = by_index.get(index)
        if tag == "ok":
            outcome = message[2]
            _aggregate.merge_point(
                getattr(outcome, "obs", None),
                submitted=chunk.submitted if chunk else None,
            )
            busy += _aggregate.busy_seconds(getattr(outcome, "obs", None))
            on_outcome(point, outcome)
            if stop_on_failure and not outcome.ok:
                stop_feeding = True
            return
        key = point.key if point is not None else f"#{index}"
        _submit, exc_blob, exc_type, exc_message = message[2:6]
        if tag == "raise":
            if exc_blob is not None:
                raise pickle.loads(exc_blob)
            raise RunnerError(
                f"run {name!r}: worker failed on point {key!r} "
                f"({exc_type}: {exc_message})"
            )
        raise RunnerError(
            f"run {name!r}: worker could not serialize the result for "
            f"point {key!r} ({exc_type}: {exc_message}); completed points "
            f"are checkpointed — re-run with resume to continue"
        )

    def _handle_death(worker: _Worker, reason: str) -> None:
        nonlocal deaths, degraded, stop_feeding
        if worker not in pool:
            return
        pool.remove(worker)
        worker.close()
        worker.process.join(timeout=1.0)
        deaths += 1
        _obs_inc("runner.worker_deaths")
        chunk = worker.inflight
        worker.inflight = None
        if chunk is not None and chunk.entries:
            survivors: List[Tuple[int, int]] = []
            for index, submit in chunk.entries.items():
                point = by_index[index]
                if submit + 1 < policy.max_attempts:
                    survivors.append((index, submit + 1))
                    _obs_inc("runner.resubmissions")
                    continue
                _obs_inc("runner.points_failed")
                record = PointRecord(
                    key=point.key,
                    value=point.journal_value(),
                    status=STATUS_FAILED,
                    attempts=(
                        AttemptRecord(
                            index=submit,
                            error_type="WorkerCrash",
                            error_message=(
                                f"worker process died ({reason}) while "
                                f"evaluating {point.key!r}; submission "
                                f"{submit + 1}/{policy.max_attempts}"
                            ),
                        ),
                    ),
                )
                from .executor import PointOutcome

                on_outcome(point, PointOutcome(record=record))
                if stop_on_failure:
                    stop_feeding = True
            if survivors:
                pending.appendleft(tuple(survivors))
        if deaths > death_budget and not degraded:
            degraded = True
            _obs_inc("runner.pool_degradations")

    def _reap_hang(worker: _Worker) -> None:
        # Last chance: a result racing the deadline wins.
        if worker.res_r.poll(0):
            try:
                _handle_message(worker, worker.res_r.recv_bytes())
                return
            except (EOFError, OSError):
                pass  # pipe died under us; fall through to the reap
        budget = f"{budget_s:.1f}s" if budget_s is not None else "?"
        try:
            worker.process.kill()
        except (OSError, ValueError):
            pass  # exited on its own in the race window
        _obs_inc("runner.hangs_reaped")
        _handle_death(worker, f"hung: exceeded the watchdog budget of {budget}")

    try:
        with _reap_on_signals(_kill_all):
            while True:
                # Keep the pool staffed while there is work to dispatch.
                if not stop_feeding and not degraded:
                    busy_n = sum(1 for w in pool if w.inflight is not None)
                    while len(pool) < min(workers_n, busy_n + len(pending)):
                        pool.append(_spawn())
                # Feed every idle worker (unless dispatch is stopped).
                if not stop_feeding and not degraded:
                    for worker in pool:
                        if worker.inflight is not None or not pending:
                            continue
                        chunk_entries = pending.popleft()
                        first_index, first_submit = chunk_entries[0]
                        fault_point(
                            "pool.chunk.dispatch",
                            point=by_index[first_index].key,
                            submit=first_submit,
                            size=len(chunk_entries),
                        )
                        now = time.monotonic()
                        try:
                            worker.task_w.send(chunk_entries)
                        except (BrokenPipeError, OSError):
                            # Death races the dispatch; requeue and let
                            # the sentinel path account for the worker.
                            pending.appendleft(chunk_entries)
                            continue
                        _obs_inc("parallel.chunks_dispatched")
                        worker.inflight = _Chunk(
                            entries=dict(chunk_entries),
                            submitted=now,
                            deadline=None if budget_s is None else now + budget_s,
                        )
                inflight = [w for w in pool if w.inflight is not None]
                if not inflight and (not pending or stop_feeding or degraded):
                    break
                if not pool:
                    # Every worker is gone and none may be respawned:
                    # hand the rest back for sequential execution.
                    if not degraded:
                        degraded = True
                        _obs_inc("runner.pool_degradations")
                    continue
                timeout: Optional[float] = None
                if budget_s is not None and inflight:
                    now = time.monotonic()
                    timeout = max(
                        0.0,
                        min(w.inflight.deadline for w in inflight) - now,
                    )
                by_result = {w.res_r: w for w in pool}
                by_sentinel = {w.process.sentinel: w for w in pool}
                ready = connection.wait(
                    list(by_result) + list(by_sentinel), timeout
                )
                # Results first: a worker that answered and then died
                # must deliver its answers before the death is handled.
                for obj in ready:
                    worker = by_result.get(obj)
                    if worker is None or worker not in pool:
                        continue
                    while worker in pool and worker.res_r.poll(0):
                        try:
                            blob = worker.res_r.recv_bytes()
                        except (EOFError, OSError):
                            break  # dead; its sentinel is in this batch
                        _handle_message(worker, blob)
                for obj in ready:
                    worker = by_sentinel.get(obj)
                    if worker is None or worker not in pool:
                        continue
                    while worker.res_r.poll(0):
                        # Exited right after answering; drain first.
                        try:
                            _handle_message(worker, worker.res_r.recv_bytes())
                        except (EOFError, OSError):
                            break  # nothing to drain after all
                    _handle_death(worker, "crashed")
                if budget_s is not None:
                    now = time.monotonic()
                    for worker in list(pool):
                        chunk = worker.inflight
                        if (
                            chunk is not None
                            and chunk.deadline is not None
                            and now >= chunk.deadline
                        ):
                            _reap_hang(worker)
            # Graceful shutdown: sentinel, short join, then escalate.
            for worker in pool:
                try:
                    worker.task_w.send(None)
                except (BrokenPipeError, OSError):
                    pass  # worker already gone; join below reaps it
            deadline = time.monotonic() + _JOIN_GRACE_S
            for worker in pool:
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
        if _metrics_enabled():
            wall = max(1e-9, time.monotonic() - pool_started)
            _obs_gauge("parallel.worker_utilization", busy / (workers_n * wall))
    finally:
        for worker in pool:
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            worker.close()
        if store is not None:
            # Unlink on every exit path (normal, strict abort, SIGTERM
            # unwind): no /dev/shm entry outlives the batch.
            store.release()
    if degraded and pending and not stop_feeding:
        leftover = {index for entries in pending for index, _ in entries}
        return [point for index, point in todo if index in leftover]
    return []
