"""Process-pool backend for the fault-tolerant batch executor.

:func:`repro.runner.executor.run_batch` dispatches independent points
to a :class:`concurrent.futures.ProcessPoolExecutor` when asked for
``jobs > 1``.  The design keeps the sequential contract intact:

* each worker runs the *same* :func:`~repro.runner.executor.execute_point`
  driver, so retry budgets, the degradation ladder, and cooperative
  per-attempt deadlines (:func:`repro.core.dp.check_deadline`) are
  enforced inside the worker process exactly as they are in-process;
* the ``(evaluate, policy)`` pair is pickled **once** and shipped to
  each worker via the pool initializer — evaluators that carry a
  :class:`~repro.core.precompute.PrecomputeCache` hand every worker a
  warm copy of the shared precomputation instead of rebuilding it per
  point;
* outcomes are reported to the caller in completion order (for
  incremental checkpointing) and the caller re-canonicalizes results,
  journal, and checkpoint into batch point order, so the persisted
  output of ``jobs=N`` is identical to ``jobs=1``.

Closures and lambdas cannot cross process boundaries; parallel runs
require a picklable evaluator (a module-level function or a dataclass
instance such as the ones in :mod:`repro.analysis.sweep`).  The payload
is pickled *before* any worker starts so an unpicklable evaluator fails
fast with an actionable :class:`~repro.errors.RunnerError`.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence, Tuple

from ..errors import RunnerError
from ..obs import aggregate as _aggregate
from ..obs.metrics import gauge as _obs_gauge
from ..obs.metrics import metrics_enabled as _metrics_enabled

#: Per-worker state installed by the pool initializer.
_worker_state: dict = {}


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean sequential; ``0`` means one worker per
    available CPU; anything negative is an error.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise RunnerError(f"jobs must be >= 0 (0 = one per CPU), got {jobs!r}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def dumps_worker_payload(name: str, evaluate, policy) -> bytes:
    """Pickle ``(evaluate, policy)`` for shipment to worker processes.

    Raising here — before any process is forked — turns the classic
    late ``PicklingError`` inside the pool into an immediate, explained
    failure.
    """
    try:
        return pickle.dumps((evaluate, policy), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise RunnerError(
            f"run {name!r}: evaluate/policy cannot be pickled for parallel "
            f"execution ({type(exc).__name__}: {exc}); jobs > 1 needs a "
            f"module-level function or a dataclass instance, not a closure "
            f"or lambda — or run with jobs=1"
        ) from exc


def _init_worker(
    payload: bytes, obs_flags: Tuple[bool, bool] = (False, False)
) -> None:
    _worker_state["evaluate"], _worker_state["policy"] = pickle.loads(payload)
    _aggregate.apply_obs_flags(obs_flags)


def _worker_execute(point):
    from .executor import execute_point

    if not _aggregate.obs_enabled():
        return execute_point(
            point, _worker_state["evaluate"], _worker_state["policy"]
        )
    # Per-point delta shipping: reset the worker's registry, evaluate,
    # snapshot, and attach the delta so the parent can merge it.  Counter
    # totals then match a sequential run regardless of how points were
    # spread across workers.
    started = _aggregate.begin_point()
    outcome = execute_point(
        point, _worker_state["evaluate"], _worker_state["policy"]
    )
    return dataclasses.replace(outcome, obs=_aggregate.end_point(started))


def execute_points_parallel(
    name: str,
    points: Sequence,
    payload: bytes,
    jobs: int,
    on_outcome: Callable,
    stop_on_failure: bool,
) -> None:
    """Run ``points`` through a worker pool, reporting in completion order.

    ``on_outcome(point, outcome)`` is invoked in the parent for every
    finished point.  With ``stop_on_failure`` the first exhausted point
    cancels every not-yet-started one (strict mode); already-running
    points are allowed to finish and are still reported, so everything
    computed gets checkpointed.  Worker exceptions (non-retryable
    evaluator errors) propagate with their original type; a worker
    process dying (OOM kill, segfault) surfaces as
    :class:`~repro.errors.RunnerError`.
    """
    if not points:
        return
    workers = min(jobs, len(points))
    pool_started = time.monotonic()
    busy = 0.0
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(payload, _aggregate.obs_flags()),
        ) as pool:
            futures = {pool.submit(_worker_execute, p): p for p in points}
            # Parent-side submission stamps: monotonic clocks are
            # system-wide on Linux, so (worker start - submission) is a
            # valid cross-process queue-wait measurement.
            submitted = {future: time.monotonic() for future in futures}
            try:
                pending = set(futures)
                failed = False
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        if future.cancelled():
                            continue
                        outcome = future.result()
                        _aggregate.merge_point(
                            getattr(outcome, "obs", None),
                            submitted=submitted.get(future),
                        )
                        busy += _aggregate.busy_seconds(
                            getattr(outcome, "obs", None)
                        )
                        on_outcome(futures[future], outcome)
                        if stop_on_failure and not outcome.ok and not failed:
                            failed = True
                            for other in pending:
                                other.cancel()
            finally:
                for future in futures:
                    future.cancel()
        if _metrics_enabled():
            wall = max(1e-9, time.monotonic() - pool_started)
            _obs_gauge(
                "parallel.worker_utilization", busy / (workers * wall)
            )
    except BrokenProcessPool as exc:
        raise RunnerError(
            f"run {name!r}: a worker process died unexpectedly "
            f"(jobs={jobs}); completed points are checkpointed — "
            f"re-run with resume to continue ({exc})"
        ) from exc
