"""Checkpoint files: incremental journaling of completed batch points.

The executor rewrites the checkpoint atomically (temp file + ``fsync``
+ ``os.replace``) after completed points, so a crash, OOM kill, or
SIGTERM at any instant leaves a valid file holding every point finished
so far.  ``--resume`` then reloads it and recomputes only what is
missing.

Two defenses beyond atomicity guard against the failure modes the
chaos suite (:mod:`repro.faultkit`) injects:

* **integrity** — every file embeds a SHA-256 digest over its
  canonical JSON body; silent on-disk corruption (a flipped byte the
  filesystem never notices) is caught at load time instead of
  resurfacing as a wrong resumed result;
* **generation rotation** — each rewrite first moves the current file
  to ``<path>.prev``, so when the newest generation is torn or corrupt
  the loader falls back to the last valid one automatically (counted
  as ``checkpoint.integrity_failures`` and recorded on the returned
  :class:`Checkpoint`).

Loads fail closed: a truncated or non-JSON file raises a diagnostic
:class:`~repro.errors.CheckpointError` naming the file and byte offset
— and, when the fallback generation was also unusable, what was wrong
with it.  A checkpoint records the run's *name* as its identity;
resuming a ``corners`` checkpoint into a ``sweep K`` run is rejected
rather than silently mixing results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import CheckpointError, CheckpointIntegrityError, ReproError
from ..faultkit.inject import fault_point
from ..obs.metrics import inc as _obs_inc
from ..reporting import persist
from .journal import RunJournal

PathLike = Union[str, Path]

#: Format tag written into every checkpoint file.
CHECKPOINT_FORMAT = "repro.checkpoint"

#: Digest algorithm recorded in the integrity stanza.
INTEGRITY_ALGO = "sha256"


@dataclass
class Checkpoint:
    """In-memory image of a checkpoint file.

    Attributes
    ----------
    run:
        Name of the batch run that wrote the checkpoint (its identity).
    points:
        ``point key -> serialized result payload`` for every completed
        point.  Payloads are opaque to the checkpoint layer; the
        executor's ``serialize``/``deserialize`` hooks own their shape.
    journal:
        Journal of the run that wrote the file (``None`` for
        hand-rolled checkpoints).
    generation:
        Which on-disk generation satisfied the load: ``"current"``
        (the normal case) or ``"previous"`` (the ``.prev`` fallback
        after the newest file failed parsing or its integrity check).
    fallback_error:
        When ``generation == "previous"``, why the current generation
        was rejected; ``""`` otherwise.
    """

    run: str
    points: Dict[str, object] = field(default_factory=dict)
    journal: Optional[RunJournal] = None
    generation: str = field(default="current", compare=False)
    fallback_error: str = field(default="", compare=False)


def previous_generation_path(path: PathLike) -> Path:
    """Where :func:`save_checkpoint` rotates the prior generation."""
    target = Path(path)
    return target.with_name(target.name + ".prev")


def _canonical_digest(body: Dict[str, object]) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON encoding."""
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def save_checkpoint(checkpoint: Checkpoint, path: PathLike) -> None:
    """Atomically write a checkpoint generation (kill-safe at any instant).

    Write order is ``tmp`` (fsynced) → rotate current to ``.prev`` →
    rename ``tmp`` into place.  A kill between the renames leaves the
    previous generation intact for :func:`load_checkpoint`'s fallback;
    a kill before them leaves the current generation untouched.  The
    rotation only happens when a current file exists, so a single
    write leaves exactly one file behind.
    """
    body: Dict[str, object] = {
        "format": CHECKPOINT_FORMAT,
        "version": persist.FORMAT_VERSION,
        "run": checkpoint.run,
        "points": dict(checkpoint.points),
    }
    if checkpoint.journal is not None:
        body["journal"] = checkpoint.journal.to_dict()
    payload = dict(body)
    payload["integrity"] = {
        "algo": INTEGRITY_ALGO,
        "digest": _canonical_digest(body),
    }
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    fault_point("checkpoint.write.pre", path=str(target))
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("checkpoint.write.mid", path=str(target))
        if target.exists():
            os.replace(target, previous_generation_path(target))
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()
    fault_point("checkpoint.write.post", path=str(target))


def _read_generation(path: Path) -> Dict[str, object]:
    """Parse and integrity-check one on-disk generation.

    Every failure mode — missing file, unreadable file, truncated or
    non-JSON content, wrong format tag, digest mismatch — raises a
    :class:`CheckpointError` naming the file (and, for parse errors,
    the byte offset), so callers can fail closed or fall back.
    """
    try:
        raw = path.read_text()
    except FileNotFoundError:
        raise CheckpointError(f"{path}: checkpoint file does not exist") from None
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read: {exc}") from exc
    except UnicodeDecodeError as exc:
        # A flipped byte can break the encoding before it breaks the
        # JSON; that is corruption, not a crash.
        raise CheckpointError(
            f"{path}: not valid UTF-8 at byte offset {exc.start}; the "
            f"file was corrupted after it was written"
        ) from exc
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path}: truncated or non-JSON checkpoint at byte offset "
            f"{exc.pos} (line {exc.lineno}, column {exc.colno}): {exc.msg}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: expected a JSON object")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: not a checkpoint file "
            f"(format tag {payload.get('format')!r}, expected {CHECKPOINT_FORMAT!r})"
        )
    if payload.get("version") != persist.FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported version {payload.get('version')!r} "
            f"(this build reads version {persist.FORMAT_VERSION})"
        )
    integrity = payload.pop("integrity", None)
    if integrity is not None:
        if not isinstance(integrity, dict):
            raise CheckpointIntegrityError(
                f"{path}: malformed integrity stanza ({integrity!r})"
            )
        stored = integrity.get("digest")
        actual = _canonical_digest(payload)
        if stored != actual:
            raise CheckpointIntegrityError(
                f"{path}: integrity check failed — stored digest "
                f"{str(stored)[:12]}…, recomputed {actual[:12]}…; the file "
                f"was corrupted after it was written"
            )
    return payload


def load_checkpoint(path: PathLike, expect_run: Optional[str] = None) -> Checkpoint:
    """Read a checkpoint; every failure mode raises :class:`CheckpointError`.

    When the current generation is missing, truncated, or fails its
    integrity check, the rotated ``.prev`` generation is tried
    automatically (``checkpoint.integrity_failures`` counts each such
    fallback; the returned checkpoint reports ``generation ==
    "previous"`` and why).  Only when no generation is loadable does
    the error propagate — naming both files and what was wrong with
    each.

    Parameters
    ----------
    path:
        Checkpoint file written by :func:`save_checkpoint`.
    expect_run:
        When given, the stored run name must match — resuming the wrong
        checkpoint is an error, not a silent empty resume.
    """
    target = Path(path)
    prev = previous_generation_path(target)
    generation = "current"
    fallback_error = ""
    try:
        payload = _read_generation(target)
    except CheckpointError as exc:
        if not prev.exists():
            raise
        _obs_inc("checkpoint.integrity_failures")
        fallback_error = str(exc)
        try:
            payload = _read_generation(prev)
        except CheckpointError as prev_exc:
            raise CheckpointError(
                f"{target}: no loadable checkpoint generation — current: "
                f"{exc}; previous ({prev}): {prev_exc}"
            ) from exc
        generation = "previous"
    run = payload.get("run")
    if not isinstance(run, str) or not run:
        raise CheckpointError(f"{target}: checkpoint has no run name")
    if expect_run is not None and run != expect_run:
        raise CheckpointError(
            f"{target}: checkpoint belongs to run {run!r}, "
            f"cannot resume run {expect_run!r}"
        )
    points = payload.get("points", {})
    if not isinstance(points, dict):
        raise CheckpointError(f"{target}: checkpoint 'points' must be an object")
    journal = None
    if "journal" in payload:
        try:
            journal = RunJournal.from_dict(payload["journal"])
        except ReproError as exc:
            raise CheckpointError(f"{target}: {exc}") from exc
    return Checkpoint(
        run=run,
        points=dict(points),
        journal=journal,
        generation=generation,
        fallback_error=fallback_error,
    )
