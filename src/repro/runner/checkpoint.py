"""Checkpoint files: incremental journaling of completed batch points.

The executor rewrites the checkpoint atomically (temp file +
``os.replace``, via :mod:`repro.reporting.persist`) after **every**
completed point, so a crash, OOM kill, or SIGTERM at any instant leaves
a valid file holding every point finished so far.  ``--resume`` then
reloads it and recomputes only what is missing.

A checkpoint records the run's *name* as its identity; resuming a
``corners`` checkpoint into a ``sweep K`` run is rejected with a
:class:`~repro.errors.CheckpointError` rather than silently mixing
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import CheckpointError, ReproError
from ..reporting import persist
from .journal import RunJournal

PathLike = Union[str, Path]

#: Format tag written into every checkpoint file.
CHECKPOINT_FORMAT = "repro.checkpoint"


@dataclass
class Checkpoint:
    """In-memory image of a checkpoint file.

    Attributes
    ----------
    run:
        Name of the batch run that wrote the checkpoint (its identity).
    points:
        ``point key -> serialized result payload`` for every completed
        point.  Payloads are opaque to the checkpoint layer; the
        executor's ``serialize``/``deserialize`` hooks own their shape.
    journal:
        Journal of the run that wrote the file (``None`` for
        hand-rolled checkpoints).
    """

    run: str
    points: Dict[str, object] = field(default_factory=dict)
    journal: Optional[RunJournal] = None


def save_checkpoint(checkpoint: Checkpoint, path: PathLike) -> None:
    """Atomically write a checkpoint file (safe against mid-write kills)."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": persist.FORMAT_VERSION,
        "run": checkpoint.run,
        "points": dict(checkpoint.points),
    }
    if checkpoint.journal is not None:
        payload["journal"] = checkpoint.journal.to_dict()
    persist.write_json_atomic(payload, path)


def load_checkpoint(path: PathLike, expect_run: Optional[str] = None) -> Checkpoint:
    """Read a checkpoint; every failure mode raises :class:`CheckpointError`.

    Parameters
    ----------
    path:
        Checkpoint file written by :func:`save_checkpoint`.
    expect_run:
        When given, the stored run name must match — resuming the wrong
        checkpoint is an error, not a silent empty resume.
    """
    if not Path(path).exists():
        raise CheckpointError(f"{path}: checkpoint file does not exist")
    try:
        payload = persist.read_versioned_json(path, CHECKPOINT_FORMAT)
    except CheckpointError:
        raise
    except ReproError as exc:
        raise CheckpointError(str(exc)) from exc
    run = payload.get("run")
    if not isinstance(run, str) or not run:
        raise CheckpointError(f"{path}: checkpoint has no run name")
    if expect_run is not None and run != expect_run:
        raise CheckpointError(
            f"{path}: checkpoint belongs to run {run!r}, "
            f"cannot resume run {expect_run!r}"
        )
    points = payload.get("points", {})
    if not isinstance(points, dict):
        raise CheckpointError(f"{path}: checkpoint 'points' must be an object")
    journal = None
    if "journal" in payload:
        try:
            journal = RunJournal.from_dict(payload["journal"])
        except ReproError as exc:
            raise CheckpointError(f"{path}: {exc}") from exc
    return Checkpoint(run=run, points=dict(points), journal=journal)
