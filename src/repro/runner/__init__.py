"""Fault-tolerant run harness for multi-point evaluations.

Every batched evaluation in the library — Table 4 sweeps
(:func:`repro.analysis.sweep.run_sweep`), corner sign-off
(:func:`repro.analysis.corners.rank_across_corners`), and architecture
search (:mod:`repro.optimize.search`) — routes through
:func:`run_batch`, which adds per-point fault isolation,
checkpoint/resume, deterministic retry/degradation policies, and
optional warm-pool parallelism (``jobs=N`` with a shared-memory table
handoff and chunked dispatch; results come back in batch point order
regardless of completion order) on top of any ``(point) -> result``
evaluation.  ``pool_mode`` ("auto"/"warm"/"sequential") and
``chunk_size`` tune the pool; the "auto" default falls back to
in-process execution whenever a pool cannot beat sequential.

The execution layer is hardened against real process failures — and
chaos-tested against :mod:`repro.faultkit` schedules: dead pool
workers are detected and their in-flight points resubmitted (bounded
by the :class:`RetryPolicy`), hung workers are reaped by a watchdog,
checkpoints carry integrity checksums with a rotated ``.prev``
generation to fall back on, retries can back off exponentially with
seeded (deterministic) jitter, and a pool that keeps dying degrades
gracefully to sequential execution.  Every recovery action is counted
through :mod:`repro.obs` (``runner.worker_deaths``,
``runner.resubmissions``, ``runner.hangs_reaped``,
``checkpoint.integrity_failures``, ``fault.injected.*``).

Quickstart::

    from repro.runner import PointSpec, RetryPolicy, run_batch

    outcome = run_batch(
        "my-study",
        [PointSpec(key=f"x={x}", value=x) for x in xs],
        lambda point, attempt: expensive(point.value),
        policy=RetryPolicy(max_attempts=3, timeout_s=60.0),
        keep_going=True,
        checkpoint_path="study.ckpt.json",
    )
    outcome.results, outcome.failures, print(outcome.journal.summary())
"""

from .checkpoint import CHECKPOINT_FORMAT, Checkpoint, load_checkpoint, save_checkpoint
from .executor import (
    Attempt,
    BatchOutcome,
    PointOutcome,
    PointSpec,
    execute_point,
    run_batch,
)
from .journal import (
    STATUS_CACHED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    AttemptRecord,
    PointFailure,
    PointRecord,
    RunJournal,
)
from .parallel import (
    POOL_MODES,
    resolve_chunk_size,
    resolve_jobs,
    should_use_pool,
    usable_cpus,
)
from .policy import RetryPolicy, scaled_bunch_size

__all__ = [
    "Attempt",
    "AttemptRecord",
    "BatchOutcome",
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "POOL_MODES",
    "PointFailure",
    "PointOutcome",
    "PointRecord",
    "PointSpec",
    "RetryPolicy",
    "RunJournal",
    "STATUS_CACHED",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "execute_point",
    "load_checkpoint",
    "resolve_chunk_size",
    "resolve_jobs",
    "run_batch",
    "save_checkpoint",
    "scaled_bunch_size",
    "should_use_pool",
    "usable_cpus",
]
