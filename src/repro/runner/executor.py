"""Fault-tolerant batch executor.

:func:`run_batch` is the single entry point every multi-point
evaluation (sweeps, corner sign-off, architecture search) routes
through.  It provides the three guarantees a long DP-heavy batch job
needs:

* **per-point isolation** — a failing point becomes a structured
  :class:`~repro.runner.journal.PointFailure` instead of aborting the
  other points (``keep_going=True``), or aborts *after* journaling and
  checkpointing everything completed so far (strict mode);
* **checkpoint/resume** — each completed point is immediately journaled
  to an atomically-rewritten checkpoint file, and ``resume=True``
  recomputes only the points the checkpoint is missing;
* **retry with deterministic degradation** — a
  :class:`~repro.runner.policy.RetryPolicy` bounds attempts and
  per-attempt wall-clock, and walks a deterministic fallback ladder
  (coarser bunch size), with every degradation recorded in the
  :class:`~repro.runner.journal.RunJournal`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RunnerError
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .journal import (
    STATUS_CACHED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    AttemptRecord,
    PointFailure,
    PointRecord,
    RunJournal,
)
from .policy import RetryPolicy

PathLike = Union[str, Path]


@dataclass(frozen=True)
class PointSpec:
    """One point of a batch.

    Attributes
    ----------
    key:
        Stable identity used for checkpointing and resume; must be
        unique within the batch and deterministic across runs.
    value:
        The payload handed to the evaluate callable (knob value,
        corner, candidate spec, ...).
    label:
        Optional display name; defaults to the key.
    """

    key: str
    value: object
    label: str = ""

    def display(self) -> str:
        """Label if set, else the key."""
        return self.label or self.key

    def journal_value(self) -> object:
        """The value as journaled: JSON primitives verbatim, else the label.

        Journals travel inside checkpoint files, so rich point values
        (a ``Corner``, an ``ArchitectureSpec``) are recorded by display
        name rather than serialized.
        """
        if isinstance(self.value, (str, int, float, bool)) or self.value is None:
            return self.value
        return self.display()


@dataclass(frozen=True)
class Attempt:
    """Context handed to the evaluate callable for one try.

    Attributes
    ----------
    index:
        0-based attempt number.
    deadline:
        Absolute ``time.monotonic()`` instant the attempt must respect
        (pass it to :func:`repro.core.rank.compute_rank`), or ``None``.
    degradation:
        Fallback knobs from the policy's ladder; evaluators apply the
        ones they understand (see
        :func:`repro.runner.policy.scaled_bunch_size`).
    """

    index: int
    deadline: Optional[float] = None
    degradation: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PointOutcome:
    """Result of driving one point through its attempt budget."""

    record: PointRecord
    result: object = None

    @property
    def ok(self) -> bool:
        """Whether the point produced a result."""
        return self.record.status in (STATUS_COMPLETED, STATUS_CACHED)


@dataclass
class BatchOutcome:
    """What a batch run produced.

    Attributes
    ----------
    results:
        ``point key -> result`` for every point that has one (fresh or
        resumed from checkpoint).
    failures:
        Points that exhausted every attempt, in run order.
    journal:
        Full per-point, per-attempt record of the run.
    """

    results: Dict[str, object]
    failures: Tuple[PointFailure, ...]
    journal: RunJournal

    @property
    def ok(self) -> bool:
        """True iff every point has a result."""
        return not self.failures

    @property
    def partial(self) -> bool:
        """True iff some — but not all — points have results."""
        return bool(self.failures) and bool(self.results)

    @property
    def total_failure(self) -> bool:
        """True iff no point produced a result."""
        return bool(self.failures) and not self.results


def execute_point(
    point: PointSpec,
    evaluate: Callable[[PointSpec, Attempt], object],
    policy: RetryPolicy,
) -> PointOutcome:
    """Drive one point through the policy's attempt budget.

    Retryable exceptions (``policy.retry_on``) consume attempts;
    anything else — a programming error — propagates immediately.
    Never raises on exhaustion: the failed :class:`PointOutcome` carries
    the full attempt history and the caller chooses strict vs
    keep-going semantics.
    """
    attempts = []
    for index in range(policy.max_attempts):
        attempt = Attempt(
            index=index,
            deadline=policy.deadline(),
            degradation=policy.degradation(index),
        )
        started = time.monotonic()
        try:
            result = evaluate(point, attempt)
        except Exception as exc:
            attempts.append(
                AttemptRecord(
                    index=index,
                    error_type=type(exc).__name__,
                    error_message=str(exc),
                    wall_time_s=time.monotonic() - started,
                    degradation=attempt.degradation,
                )
            )
            if not policy.is_retryable(exc):
                raise
            continue
        attempts.append(
            AttemptRecord(
                index=index,
                wall_time_s=time.monotonic() - started,
                degradation=attempt.degradation,
            )
        )
        return PointOutcome(
            record=PointRecord(
                key=point.key,
                value=point.journal_value(),
                status=STATUS_COMPLETED,
                attempts=tuple(attempts),
            ),
            result=result,
        )
    return PointOutcome(
        record=PointRecord(
            key=point.key,
            value=point.journal_value(),
            status=STATUS_FAILED,
            attempts=tuple(attempts),
        )
    )


def run_batch(
    name: str,
    points: Sequence[PointSpec],
    evaluate: Callable[[PointSpec, Attempt], object],
    policy: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    checkpoint_path: Optional[PathLike] = None,
    resume: bool = False,
    serialize: Optional[Callable[[object], object]] = None,
    deserialize: Optional[Callable[[object], object]] = None,
) -> BatchOutcome:
    """Evaluate every point with isolation, checkpointing, and retries.

    Parameters
    ----------
    name:
        Run identity; a checkpoint written by a differently-named run
        refuses to resume into this one.
    points:
        The batch, in deterministic order; keys must be unique.
    evaluate:
        ``(point, attempt) -> result``.  Honour ``attempt.deadline``
        and ``attempt.degradation`` to get timeouts and the fallback
        ladder; a plain callable that ignores them still gets isolation
        and checkpointing.
    policy:
        Attempt budget / timeout / degradation ladder (default: one
        attempt, no timeout).
    keep_going:
        True: record failures and continue to the next point.  False
        (strict): checkpoint what is done, then raise
        :class:`~repro.errors.RunnerError` on the first exhausted point.
    checkpoint_path:
        When given, the checkpoint is (re)written atomically after
        every completed point — an interrupted run loses at most the
        in-flight point.
    resume:
        Load ``checkpoint_path`` and skip every point it already has
        (recorded as ``cached`` in the journal).
    serialize / deserialize:
        Result <-> JSON-payload hooks for checkpointing (identity by
        default, i.e. results must already be JSON-compatible).

    Returns
    -------
    BatchOutcome
    """
    policy = policy if policy is not None else RetryPolicy()
    serialize = serialize if serialize is not None else (lambda result: result)
    deserialize = deserialize if deserialize is not None else (lambda payload: payload)

    seen = set()
    for point in points:
        if point.key in seen:
            raise RunnerError(
                f"run {name!r}: duplicate point key {point.key!r}; "
                "checkpoint keys must be unique"
            )
        seen.add(point.key)
    if resume and checkpoint_path is None:
        raise RunnerError(f"run {name!r}: resume requested without a checkpoint path")

    cached: Dict[str, object] = {}
    if resume:
        cached = dict(load_checkpoint(checkpoint_path, expect_run=name).points)

    journal = RunJournal(name=name)
    checkpoint = Checkpoint(run=name, points=dict(cached), journal=journal)
    results: Dict[str, object] = {}

    def commit() -> None:
        if checkpoint_path is not None:
            save_checkpoint(checkpoint, checkpoint_path)

    # Write the identity file up front so even a run killed before its
    # first completed point leaves a resumable (empty) checkpoint.
    commit()

    for point in points:
        if point.key in cached:
            results[point.key] = deserialize(cached[point.key])
            journal.add(
                PointRecord(
                    key=point.key, value=point.journal_value(), status=STATUS_CACHED
                )
            )
            continue
        outcome = execute_point(point, evaluate, policy)
        journal.add(outcome.record)
        if outcome.ok:
            results[point.key] = outcome.result
            checkpoint.points[point.key] = serialize(outcome.result)
            commit()
            continue
        if not keep_going:
            commit()
            last = outcome.record.attempts[-1] if outcome.record.attempts else None
            detail = (
                f": last attempt raised {last.error_type}: {last.error_message}"
                if last
                else ""
            )
            hint = (
                f" (completed points are checkpointed in {checkpoint_path}; "
                f"re-run with resume to continue)"
                if checkpoint_path is not None
                else ""
            )
            raise RunnerError(
                f"run {name!r}: point {point.display()!r} failed after "
                f"{len(outcome.record.attempts)} attempt(s){detail}{hint}"
            )
    commit()
    return BatchOutcome(
        results=results, failures=journal.failures(), journal=journal
    )
