"""Fault-tolerant batch executor.

:func:`run_batch` is the single entry point every multi-point
evaluation (sweeps, corner sign-off, architecture search) routes
through.  It provides the three guarantees a long DP-heavy batch job
needs:

* **per-point isolation** — a failing point becomes a structured
  :class:`~repro.runner.journal.PointFailure` instead of aborting the
  other points (``keep_going=True``), or aborts *after* journaling and
  checkpointing everything completed so far (strict mode);
* **checkpoint/resume** — completed points are journaled to an
  atomically-rewritten checkpoint file (every point by default;
  amortizable with ``checkpoint_every`` / ``checkpoint_interval_s``),
  and ``resume=True`` recomputes only the points the checkpoint is
  missing;
* **retry with deterministic degradation** — a
  :class:`~repro.runner.policy.RetryPolicy` bounds attempts and
  per-attempt wall-clock, and walks a deterministic fallback ladder
  (coarser bunch size), with every degradation recorded in the
  :class:`~repro.runner.journal.RunJournal`.

``jobs > 1`` dispatches points to a warm worker pool
(:mod:`repro.runner.parallel`) with all three guarantees intact, and
results, journal, and checkpoint re-canonicalized into batch point
order — the persisted output of a parallel run is identical to the
sequential one (timing fields aside).  ``pool_mode`` controls the
dispatch decision: ``"auto"`` (default) falls back to in-process
execution whenever a pool cannot beat sequential (one usable CPU,
fewer than two pending points), ``"warm"`` forces the pool, and
``"sequential"`` disables it while still requiring a picklable
evaluator, so runs stay portable across machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RunnerError
from ..faultkit.inject import activated as _faults_activated
from ..faultkit.inject import fault_point
from ..faultkit.schedule import FaultSchedule, schedule_from_env
from ..obs.metrics import inc as _obs_inc
from ..obs.metrics import observe as _obs_observe
from ..obs.trace import span as _span
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .journal import (
    STATUS_CACHED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    AttemptRecord,
    PointFailure,
    PointRecord,
    RunJournal,
)
from .parallel import (
    POOL_MODE_AUTO,
    POOL_MODES,
    WorkerPayload,
    dumps_worker_payload,
    execute_points_parallel,
    resolve_jobs,
    should_use_pool,
)
from .policy import RetryPolicy

PathLike = Union[str, Path]


@dataclass(frozen=True)
class PointSpec:
    """One point of a batch.

    Attributes
    ----------
    key:
        Stable identity used for checkpointing and resume; must be
        unique within the batch and deterministic across runs.
    value:
        The payload handed to the evaluate callable (knob value,
        corner, candidate spec, ...).
    label:
        Optional display name; defaults to the key.
    """

    key: str
    value: object
    label: str = ""

    def display(self) -> str:
        """Label if set, else the key."""
        return self.label or self.key

    def journal_value(self) -> object:
        """The value as journaled: JSON primitives verbatim, else the label.

        Journals travel inside checkpoint files, so rich point values
        (a ``Corner``, an ``ArchitectureSpec``) are recorded by display
        name rather than serialized.
        """
        if isinstance(self.value, (str, int, float, bool)) or self.value is None:
            return self.value
        return self.display()


@dataclass(frozen=True)
class Attempt:
    """Context handed to the evaluate callable for one try.

    Attributes
    ----------
    index:
        0-based attempt number.
    deadline:
        Absolute ``time.monotonic()`` instant the attempt must respect
        (pass it to :func:`repro.core.rank.compute_rank`), or ``None``.
    degradation:
        Fallback knobs from the policy's ladder; evaluators apply the
        ones they understand (see
        :func:`repro.runner.policy.scaled_bunch_size`).
    """

    index: int
    deadline: Optional[float] = None
    degradation: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PointOutcome:
    """Result of driving one point through its attempt budget.

    ``obs`` is the worker-side observability payload (metrics snapshot,
    trace events, start/end stamps) attached by the parallel backend so
    the parent can merge it; ``None`` for in-process execution, where
    metrics land in the parent registry directly.
    """

    record: PointRecord
    result: object = None
    obs: Optional[dict] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the point produced a result."""
        return self.record.status in (STATUS_COMPLETED, STATUS_CACHED)


@dataclass
class BatchOutcome:
    """What a batch run produced.

    Attributes
    ----------
    results:
        ``point key -> result`` for every point that has one (fresh or
        resumed from checkpoint).
    failures:
        Points that exhausted every attempt, in run order.
    journal:
        Full per-point, per-attempt record of the run.
    """

    results: Dict[str, object]
    failures: Tuple[PointFailure, ...]
    journal: RunJournal

    @property
    def ok(self) -> bool:
        """True iff every point has a result."""
        return not self.failures

    @property
    def partial(self) -> bool:
        """True iff some — but not all — points have results."""
        return bool(self.failures) and bool(self.results)

    @property
    def total_failure(self) -> bool:
        """True iff no point produced a result."""
        return bool(self.failures) and not self.results


def execute_point(
    point: PointSpec,
    evaluate: Callable[[PointSpec, Attempt], object],
    policy: RetryPolicy,
) -> PointOutcome:
    """Drive one point through the policy's attempt budget.

    Retryable exceptions (``policy.retry_on``) consume attempts;
    anything else — a programming error — propagates immediately.
    Never raises on exhaustion: the failed :class:`PointOutcome` carries
    the full attempt history and the caller chooses strict vs
    keep-going semantics.
    """
    attempts = []
    point_started = time.monotonic()
    for index in range(policy.max_attempts):
        attempt = Attempt(
            index=index,
            deadline=policy.deadline(),
            degradation=policy.degradation(index),
        )
        _obs_inc("runner.attempts")
        if index:
            _obs_inc("runner.retries")
            delay = policy.backoff_delay(index, key=point.key)
            if delay > 0.0:
                _obs_observe("runner.backoff_wait_s", delay)
                time.sleep(delay)
        started = time.monotonic()
        with _span("point_attempt", point=point.key, attempt=index):
            try:
                fault_point(
                    "executor.attempt.start", point=point.key, attempt=index
                )
                result = evaluate(point, attempt)
                fault_point(
                    "executor.attempt.end", point=point.key, attempt=index
                )
            except Exception as exc:
                attempts.append(
                    AttemptRecord(
                        index=index,
                        error_type=type(exc).__name__,
                        error_message=str(exc),
                        wall_time_s=time.monotonic() - started,
                        degradation=attempt.degradation,
                    )
                )
                if not policy.is_retryable(exc):
                    raise
                continue
        attempts.append(
            AttemptRecord(
                index=index,
                wall_time_s=time.monotonic() - started,
                degradation=attempt.degradation,
            )
        )
        _obs_inc("runner.points_completed")
        if attempt.degradation:
            _obs_inc("runner.degraded_points")
        _obs_observe("runner.point_wall_s", time.monotonic() - point_started)
        return PointOutcome(
            record=PointRecord(
                key=point.key,
                value=point.journal_value(),
                status=STATUS_COMPLETED,
                attempts=tuple(attempts),
            ),
            result=result,
        )
    _obs_inc("runner.points_failed")
    _obs_observe("runner.point_wall_s", time.monotonic() - point_started)
    return PointOutcome(
        record=PointRecord(
            key=point.key,
            value=point.journal_value(),
            status=STATUS_FAILED,
            attempts=tuple(attempts),
        )
    )


class _Committer:
    """Amortized, canonically-ordered checkpoint writes.

    ``mark()`` once per completed point; the checkpoint is rewritten
    when ``every`` points accumulated or ``interval_s`` elapsed since
    the last write (whichever comes first), and always on
    :meth:`commit`.  Before every write the checkpoint's point dict is
    reordered into batch point order, so the file on disk does not
    depend on completion order — a parallel run persists byte-for-byte
    what the sequential run would.
    """

    def __init__(
        self,
        checkpoint: Checkpoint,
        path: Optional[PathLike],
        order: Sequence[str],
        every: int,
        interval_s: Optional[float],
    ) -> None:
        self._checkpoint = checkpoint
        self._path = path
        self._order = tuple(order)
        self._every = every
        self._interval_s = interval_s
        self._pending = 0
        self._stamp = time.monotonic()

    def mark(self) -> None:
        """Note one completed point; write if the amortization says so."""
        self._pending += 1
        if self._pending >= self._every:
            self.commit()
        elif (
            self._interval_s is not None
            and time.monotonic() - self._stamp >= self._interval_s
        ):
            self.commit()

    def commit(self) -> None:
        """Write the checkpoint now (no-op without a checkpoint path)."""
        self._pending = 0
        if self._path is None:
            return
        points = self._checkpoint.points
        ordered = {k: points[k] for k in self._order if k in points}
        for key, value in points.items():  # stale resume keys, kept last
            if key not in ordered:
                ordered[key] = value
        self._checkpoint.points = ordered
        with _span("checkpoint_commit", points=len(ordered)):
            save_checkpoint(self._checkpoint, self._path)
        _obs_inc("runner.checkpoint_commits")
        self._stamp = time.monotonic()


def _strict_failure(
    name: str,
    point: PointSpec,
    record: PointRecord,
    checkpoint_path: Optional[PathLike],
) -> RunnerError:
    """The strict-mode abort error (identical for every backend)."""
    last = record.attempts[-1] if record.attempts else None
    detail = (
        f": last attempt raised {last.error_type}: {last.error_message}"
        if last
        else ""
    )
    hint = (
        f" (completed points are checkpointed in {checkpoint_path}; "
        f"re-run with resume to continue)"
        if checkpoint_path is not None
        else ""
    )
    return RunnerError(
        f"run {name!r}: point {point.display()!r} failed after "
        f"{len(record.attempts)} attempt(s){detail}{hint}"
    )


def run_batch(
    name: str,
    points: Sequence[PointSpec],
    evaluate: Callable[[PointSpec, Attempt], object],
    policy: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    checkpoint_path: Optional[PathLike] = None,
    resume: bool = False,
    serialize: Optional[Callable[[object], object]] = None,
    deserialize: Optional[Callable[[object], object]] = None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    pool_mode: str = POOL_MODE_AUTO,
    checkpoint_every: int = 1,
    checkpoint_interval_s: Optional[float] = None,
    fault_schedule: Optional[FaultSchedule] = None,
) -> BatchOutcome:
    """Evaluate every point with isolation, checkpointing, and retries.

    Parameters
    ----------
    name:
        Run identity; a checkpoint written by a differently-named run
        refuses to resume into this one.
    points:
        The batch, in deterministic order; keys must be unique.
    evaluate:
        ``(point, attempt) -> result``.  Honour ``attempt.deadline``
        and ``attempt.degradation`` to get timeouts and the fallback
        ladder; a plain callable that ignores them still gets isolation
        and checkpointing.  With ``jobs > 1`` it must be picklable (a
        module-level function or dataclass instance, not a closure).
    policy:
        Attempt budget / timeout / degradation ladder (default: one
        attempt, no timeout).
    keep_going:
        True: record failures and continue to the next point.  False
        (strict): checkpoint what is done, then raise
        :class:`~repro.errors.RunnerError` on the first exhausted point
        (in batch order; a parallel run cancels not-yet-started points
        but still checkpoints everything that finished).
    checkpoint_path:
        When given, the checkpoint is (re)written atomically as points
        complete — an interrupted run at the default cadence loses at
        most the in-flight point.
    resume:
        Load ``checkpoint_path`` and skip every point it already has
        (recorded as ``cached`` in the journal).
    serialize / deserialize:
        Result <-> JSON-payload hooks for checkpointing (identity by
        default, i.e. results must already be JSON-compatible).
    jobs:
        Worker processes: 1 (default) runs in-process, ``N > 1`` runs a
        warm worker pool, 0 means one worker per CPU.  Results,
        journal, and checkpoint come back in batch point order
        regardless.
    chunk_size:
        Points per work-queue chunk when pooling.  ``None``/``0``
        (default) sizes chunks automatically (about four waves per
        worker, capped at 32 points); the value only affects
        scheduling, never results.
    pool_mode:
        ``"auto"`` (default) uses the pool only when it can beat
        sequential — at least two pending points and two usable CPUs;
        ``"warm"`` forces the pool whenever ``jobs > 1``;
        ``"sequential"`` never pools.  Any mode with ``jobs > 1``
        still requires a picklable evaluator, so a batch that works on
        a laptop also works on a many-core runner.
    checkpoint_every:
        Amortize checkpoint writes: rewrite the file every this many
        completed points (default 1 — every point).
    checkpoint_interval_s:
        Also rewrite whenever this many seconds elapsed since the last
        write, regardless of the point count.  ``None`` disables the
        time trigger.  A final write always happens on every exit path
        (success, strict-mode abort, or propagating error), so
        amortization never loses finished points beyond a hard kill.
    fault_schedule:
        Deterministic chaos testing: a
        :class:`~repro.faultkit.FaultSchedule` armed for the duration
        of the batch (in the parent and in every pool worker).  When
        ``None``, the ``REPRO_FAULT_SCHEDULE`` environment variable is
        consulted; unset means injection stays a single disabled-guard
        check on the hot path.

    Returns
    -------
    BatchOutcome
    """
    policy = policy if policy is not None else RetryPolicy()
    serialize = serialize if serialize is not None else (lambda result: result)
    deserialize = deserialize if deserialize is not None else (lambda payload: payload)
    jobs = resolve_jobs(jobs)
    if pool_mode not in POOL_MODES:
        raise RunnerError(
            f"run {name!r}: pool_mode must be one of {POOL_MODES}, "
            f"got {pool_mode!r}"
        )
    if chunk_size is not None and chunk_size < 0:
        raise RunnerError(
            f"run {name!r}: chunk_size must be >= 1 (or 0/None for auto), "
            f"got {chunk_size!r}"
        )
    if checkpoint_every < 1:
        raise RunnerError(
            f"run {name!r}: checkpoint_every must be >= 1, got {checkpoint_every!r}"
        )
    if checkpoint_interval_s is not None and checkpoint_interval_s <= 0:
        raise RunnerError(
            f"run {name!r}: checkpoint_interval_s must be positive, "
            f"got {checkpoint_interval_s!r}"
        )

    seen = set()
    for point in points:
        if point.key in seen:
            raise RunnerError(
                f"run {name!r}: duplicate point key {point.key!r}; "
                "checkpoint keys must be unique"
            )
        seen.add(point.key)
    if resume and checkpoint_path is None:
        raise RunnerError(f"run {name!r}: resume requested without a checkpoint path")
    if fault_schedule is None:
        fault_schedule = schedule_from_env()
    payload = None
    if jobs > 1:
        # Fail fast (and pickle exactly once, arrays hoisted) before
        # any worker forks — in *every* pool mode, so an evaluator that
        # falls back to sequential here still fails loudly on the
        # many-core machine where the pool would actually run.
        payload = dumps_worker_payload(name, evaluate, policy, points)

    with _faults_activated(fault_schedule):
        cached: Dict[str, object] = {}
        if resume:
            cached = dict(load_checkpoint(checkpoint_path, expect_run=name).points)
        pending_n = sum(1 for point in points if point.key not in cached)
        use_pool = payload is not None and should_use_pool(
            pool_mode, jobs, pending_n
        )
        if payload is not None and not use_pool:
            _obs_inc("parallel.pool_fallbacks")

        journal = RunJournal(name=name)
        checkpoint = Checkpoint(run=name, points=dict(cached), journal=journal)
        results: Dict[str, object] = {}
        committer = _Committer(
            checkpoint,
            checkpoint_path,
            order=[point.key for point in points],
            every=checkpoint_every,
            interval_s=checkpoint_interval_s,
        )

        # Write the identity file up front so even a run killed before
        # its first completed point leaves a resumable (empty) checkpoint.
        committer.commit()

        try:
            with _span("run_batch", run=name, points=len(points), jobs=jobs):
                if not use_pool:
                    _run_sequential(
                        name,
                        points,
                        evaluate,
                        policy,
                        keep_going,
                        checkpoint_path,
                        cached,
                        deserialize,
                        serialize,
                        journal,
                        checkpoint,
                        results,
                        committer,
                    )
                else:
                    _run_parallel(
                        name,
                        points,
                        evaluate,
                        payload,
                        jobs,
                        policy,
                        keep_going,
                        checkpoint_path,
                        cached,
                        deserialize,
                        serialize,
                        journal,
                        checkpoint,
                        results,
                        committer,
                        fault_schedule,
                        chunk_size,
                    )
        finally:
            # Final write on every exit path: normal return, strict-mode
            # abort, or a propagating evaluator/worker error.
            committer.commit()
    return BatchOutcome(
        results=results, failures=journal.failures(), journal=journal
    )


def _cached_record(point: PointSpec) -> PointRecord:
    _obs_inc("runner.points_cached")
    return PointRecord(
        key=point.key, value=point.journal_value(), status=STATUS_CACHED
    )


def _run_sequential(
    name: str,
    points: Sequence[PointSpec],
    evaluate: Callable[[PointSpec, Attempt], object],
    policy: RetryPolicy,
    keep_going: bool,
    checkpoint_path: Optional[PathLike],
    cached: Dict[str, object],
    deserialize: Callable[[object], object],
    serialize: Callable[[object], object],
    journal: RunJournal,
    checkpoint: Checkpoint,
    results: Dict[str, object],
    committer: _Committer,
) -> None:
    for point in points:
        if point.key in cached:
            results[point.key] = deserialize(cached[point.key])
            journal.add(_cached_record(point))
            continue
        outcome = execute_point(point, evaluate, policy)
        journal.add(outcome.record)
        if outcome.ok:
            results[point.key] = outcome.result
            checkpoint.points[point.key] = serialize(outcome.result)
            committer.mark()
            continue
        if not keep_going:
            raise _strict_failure(name, point, outcome.record, checkpoint_path)


def _run_parallel(
    name: str,
    points: Sequence[PointSpec],
    evaluate: Callable[[PointSpec, Attempt], object],
    payload: WorkerPayload,
    jobs: int,
    policy: RetryPolicy,
    keep_going: bool,
    checkpoint_path: Optional[PathLike],
    cached: Dict[str, object],
    deserialize: Callable[[object], object],
    serialize: Callable[[object], object],
    journal: RunJournal,
    checkpoint: Checkpoint,
    results: Dict[str, object],
    committer: _Committer,
    fault_schedule: Optional[FaultSchedule] = None,
    chunk_size: Optional[int] = None,
) -> None:
    outcomes: Dict[str, PointOutcome] = {}

    def on_outcome(point: PointSpec, outcome: PointOutcome) -> None:
        # Completion order: journal provisionally (so mid-run
        # checkpoints stay informative) and persist finished results.
        outcomes[point.key] = outcome
        journal.add(outcome.record)
        if outcome.ok:
            checkpoint.points[point.key] = serialize(outcome.result)
            committer.mark()

    import pickle as _pickle

    remaining = execute_points_parallel(
        name,
        [
            (index, point)
            for index, point in enumerate(points)
            if point.key not in cached
        ],
        payload,
        jobs,
        policy,
        on_outcome,
        stop_on_failure=not keep_going,
        fault_blob=(
            _pickle.dumps(fault_schedule, protocol=_pickle.HIGHEST_PROTOCOL)
            if fault_schedule
            else None
        ),
        chunk_size=chunk_size,
    )

    # Graceful degradation: the pool died repeatedly and handed back
    # the undispatched points — finish them sequentially in-process so
    # a flaky machine degrades to ``jobs=1`` instead of failing.
    for point in remaining:
        outcome = execute_point(point, evaluate, policy)
        on_outcome(point, outcome)
        if not outcome.ok and not keep_going:
            break

    # Deterministic merge: rebuild journal and results in batch point
    # order so the outcome is independent of worker scheduling.
    journal.records.clear()
    first_failure: Optional[Tuple[PointSpec, PointRecord]] = None
    for point in points:
        if point.key in cached:
            results[point.key] = deserialize(cached[point.key])
            journal.add(_cached_record(point))
            continue
        outcome = outcomes.get(point.key)
        if outcome is None:
            continue  # cancelled after a strict-mode failure
        journal.add(outcome.record)
        if outcome.ok:
            results[point.key] = outcome.result
        elif first_failure is None:
            first_failure = (point, outcome.record)
    if first_failure is not None and not keep_going:
        point, record = first_failure
        raise _strict_failure(name, point, record, checkpoint_path)
