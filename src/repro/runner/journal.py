"""Run journal: the structured record of a fault-tolerant batch run.

Every point the executor touches leaves a :class:`PointRecord` with its
full attempt history — errors, wall times, and any deterministic
degradations (e.g. a coarser bunch size) applied on retries.  The
journal is what makes a partial run auditable: it is rendered by
:func:`repro.reporting.text.format_run_journal`, persisted inside
checkpoints, and drives the CLI's partial-failure exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import RunnerError

#: Point statuses a journal records.
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"
STATUS_CACHED = "cached"  # reused from a resume checkpoint, not recomputed


@dataclass(frozen=True)
class AttemptRecord:
    """One evaluation attempt at one point.

    Attributes
    ----------
    index:
        0-based attempt number (0 is the first try, >= 1 are retries).
    error_type:
        Exception class name, or ``""`` if the attempt succeeded.
    error_message:
        Stringified exception, or ``""`` on success.
    wall_time_s:
        Wall-clock seconds the attempt took (including failed ones).
        Excluded from equality — like
        :class:`~repro.core.dp.SolverStats.runtime_seconds`, two runs
        of the same work produce equal records even though their
        timings differ, which is what lets a resumed run's journal
        entries compare equal to an uninterrupted run's.
    degradation:
        Deterministic fallback knobs applied for this attempt
        (e.g. ``{"bunch_scale": 2.0}``); empty on the first attempt.
    """

    index: int
    error_type: str = ""
    error_message: str = ""
    wall_time_s: float = field(default=0.0, compare=False)
    degradation: Mapping[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether this attempt succeeded."""
        return not self.error_type

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "index": self.index,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "wall_time_s": self.wall_time_s,
            "degradation": dict(self.degradation),
        }

    @staticmethod
    def from_dict(payload: dict) -> "AttemptRecord":
        return AttemptRecord(
            index=payload["index"],
            error_type=payload.get("error_type", ""),
            error_message=payload.get("error_message", ""),
            wall_time_s=payload.get("wall_time_s", 0.0),
            degradation=dict(payload.get("degradation", {})),
        )


@dataclass(frozen=True)
class PointFailure:
    """A point that exhausted every attempt without producing a result.

    Attributes
    ----------
    key:
        The point's stable identity (checkpoint key).
    value:
        The knob value / corner name / candidate label evaluated.
    attempts:
        Full attempt history, last entry being the fatal one.
    """

    key: str
    value: object
    attempts: Tuple[AttemptRecord, ...] = ()

    @property
    def error_type(self) -> str:
        """Exception class name of the final attempt."""
        return self.attempts[-1].error_type if self.attempts else ""

    @property
    def error_message(self) -> str:
        """Exception message of the final attempt."""
        return self.attempts[-1].error_message if self.attempts else ""

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "key": self.key,
            "value": self.value,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @staticmethod
    def from_dict(payload: dict) -> "PointFailure":
        return PointFailure(
            key=payload["key"],
            value=payload.get("value"),
            attempts=tuple(
                AttemptRecord.from_dict(a) for a in payload.get("attempts", ())
            ),
        )


@dataclass(frozen=True)
class PointRecord:
    """Journal entry for one point of a batch run."""

    key: str
    value: object
    status: str  # STATUS_COMPLETED | STATUS_FAILED | STATUS_CACHED
    attempts: Tuple[AttemptRecord, ...] = ()

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "value": self.value,
            "status": self.status,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @staticmethod
    def from_dict(payload: dict) -> "PointRecord":
        return PointRecord(
            key=payload["key"],
            value=payload.get("value"),
            status=payload["status"],
            attempts=tuple(
                AttemptRecord.from_dict(a) for a in payload.get("attempts", ())
            ),
        )


@dataclass
class RunJournal:
    """Accumulated record of one batch run (mutable; append-only).

    Attributes
    ----------
    name:
        The run's name (also the checkpoint's run identity).
    records:
        One :class:`PointRecord` per point touched, in run order.
    """

    name: str
    records: List[PointRecord] = field(default_factory=list)

    def add(self, record: PointRecord) -> None:
        """Append a point record."""
        self.records.append(record)

    def by_status(self, status: str) -> List[PointRecord]:
        """Records with the given status, in run order."""
        return [r for r in self.records if r.status == status]

    @property
    def completed(self) -> int:
        """Points evaluated successfully this run."""
        return len(self.by_status(STATUS_COMPLETED))

    @property
    def cached(self) -> int:
        """Points reused from a resume checkpoint."""
        return len(self.by_status(STATUS_CACHED))

    @property
    def failed(self) -> int:
        """Points that exhausted every attempt."""
        return len(self.by_status(STATUS_FAILED))

    @property
    def retries(self) -> int:
        """Total retry attempts across all points (attempts beyond the first)."""
        return sum(max(0, len(r.attempts) - 1) for r in self.records)

    @property
    def total_wall_time_s(self) -> float:
        """Wall-clock seconds summed over every attempt."""
        return sum(a.wall_time_s for r in self.records for a in r.attempts)

    def degradations(self) -> Dict[str, Tuple[str, Mapping[str, float]]]:
        """Per-point fallback knobs of the *successful* attempt.

        Returns ``{key: (status, degradation)}`` for points whose winning
        attempt ran degraded — the audit trail that a journal promises:
        no silent accuracy loss.
        """
        out: Dict[str, Tuple[str, Mapping[str, float]]] = {}
        for record in self.records:
            if record.status == STATUS_COMPLETED and record.attempts:
                last = record.attempts[-1]
                if last.degradation:
                    out[record.key] = (record.status, last.degradation)
        return out

    def failures(self) -> Tuple[PointFailure, ...]:
        """Failed points as :class:`PointFailure` rows."""
        return tuple(
            PointFailure(key=r.key, value=r.value, attempts=r.attempts)
            for r in self.by_status(STATUS_FAILED)
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        parts = [f"{self.completed} completed"]
        if self.cached:
            parts.append(f"{self.cached} resumed")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        if self.retries:
            parts.append(f"{self.retries} retries")
        return (
            f"run {self.name!r}: {', '.join(parts)} "
            f"({self.total_wall_time_s:.2f} s of solve time)"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "records": [r.to_dict() for r in self.records],
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunJournal":
        try:
            return RunJournal(
                name=payload["name"],
                records=[
                    PointRecord.from_dict(r) for r in payload.get("records", ())
                ],
            )
        except KeyError as exc:
            raise RunnerError(
                f"malformed run-journal payload: missing {exc}"
            ) from exc
