"""Command-line interface.

Installed as ``ia-rank`` (see pyproject) and runnable as
``python -m repro.cli``.  Subcommands:

* ``rank`` — compute the rank of one configuration,
* ``sweep`` — regenerate one Table 4 column (K / M / C / R),
* ``wld`` — generate a Davis WLD and write it to CSV,
* ``nodes`` — baseline comparison across the built-in nodes,
* ``optimize`` — architecture search (Section 6),
* ``curve`` — the rank(budget) curve in one DP pass,
* ``report`` — per-pair assignment usage + timing slack,
* ``corners`` — sign-off rank across process/operating corners,
* ``stats`` — render the metrics section of a trace or benchmark file.

Any design-taking command accepts ``--node-file my_node.json`` to run
on a custom JSON-described process.

Flag names mirror the :mod:`repro.api` facade keywords:
``--bunch-size``, ``--repeater-units``, ``--clock-frequency``,
``--miller-factor``, ``--backend``.  The pre-facade spellings
(``--bunch``, ``--units``, ``--clock``, ``--miller``) keep working as
hidden aliases; see docs/usage.md for the full mapping.

Compute commands (``rank``, ``sweep``, ``optimize``, ``corners``)
accept ``--trace FILE``: observability (:mod:`repro.obs`) is switched
on for the run and a Chrome trace-event JSON — spans plus the full
metrics snapshot — is written to FILE on exit (load it in Perfetto or
``chrome://tracing``, or render the counters with ``ia-rank stats``).

Multi-point commands (``sweep``, ``corners``, ``optimize``) run through
the fault-tolerant harness (:mod:`repro.runner`) and accept
``--keep-going`` (isolate failing points instead of aborting),
``--checkpoint PATH`` (journal completed points atomically),
``--resume PATH`` (recompute only missing points), ``--max-retries N``
and ``--timeout-s S`` (per-attempt retry budget and wall-clock
deadline, with deterministic bunch-size degradation on retries),
``--jobs N`` (evaluate points on a warm pool of N worker processes,
0 = one per CPU; output is identical to a sequential run),
``--chunk-size K`` and ``--pool-mode auto|warm|sequential`` (warm-pool
scheduling: points per dispatched chunk, and whether to force or
disable the pool — 'auto' falls back to sequential whenever a pool
cannot beat it), ``--checkpoint-every K``
(amortize checkpoint rewrites to every K completed points) and
``--fault-schedule SPEC`` (deterministic chaos testing: arm a
:mod:`repro.faultkit` schedule, inline JSON or a file path; also
settable via the ``REPRO_FAULT_SCHEDULE`` environment variable).

Exit codes (stable contract, asserted by ``tests/test_cli.py``):

* ``0`` (:data:`EXIT_OK`) — clean run, every requested point computed;
* ``1`` (:data:`EXIT_FAILURE`) — total failure: a library error, or a
  batch run in which *no* point produced a result;
* ``2`` (:data:`EXIT_USAGE`) — command-line usage error (argparse);
* ``3`` (:data:`EXIT_PARTIAL`) — partial failure: a ``--keep-going``
  batch completed some points but recorded failures in the run
  journal;
* ``130`` (:data:`EXIT_INTERRUPTED`) — interrupted by SIGINT
  (Ctrl-C); pool workers are reaped first and any ``--checkpoint``
  file holds every completed point, so the run is resumable;
* ``143`` — terminated by SIGTERM, with the same reap-and-checkpoint
  guarantee (the conventional ``128 + signum`` code, raised as
  ``SystemExit`` by the runner's signal handler).

Examples::

    ia-rank rank --node 130nm --gates 1000000 --bunch-size 10000
    ia-rank rank --backend python   # scalar reference kernels
    ia-rank sweep K --gates 1000000
    ia-rank sweep K --keep-going --checkpoint k.ckpt.json
    ia-rank sweep K --resume k.ckpt.json
    ia-rank wld --gates 1000000 --out wld.csv
    ia-rank nodes
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.compare import compare_nodes
from .analysis.sweep import (
    sweep_clock,
    sweep_miller,
    sweep_permittivity,
    sweep_repeater_fraction,
)
from .api import (
    DesignSpace,
    RankRequest,
    baseline_problem,
    compute_rank,
    optimize_rank,
    parse_fault_schedule,
    solve_rank_request,
)
from .errors import ReproError
from .reporting.tables import format_node_table, format_sweep_table, sweep_to_csv
from .reporting.text import format_run_journal, format_table
from .runner import RetryPolicy
from .units import to_mm2, to_ps
from .wld.davis import DavisParameters, davis_wld
from .wld.io import save_wld_csv

#: Clean run: every requested point computed.
EXIT_OK = 0
#: Total failure: library error, or a batch with zero successful points.
EXIT_FAILURE = 1
#: Usage error (argparse's convention).
EXIT_USAGE = 2
#: Partial failure: a --keep-going batch finished with journaled failures.
EXIT_PARTIAL = 3
#: Interrupted by SIGINT after reaping workers; checkpoint resumable.
EXIT_INTERRUPTED = 130

_SWEEPS = {
    "K": sweep_permittivity,
    "M": sweep_miller,
    "C": sweep_clock,
    "R": sweep_repeater_fraction,
}


def _hidden_alias(
    parser: argparse.ArgumentParser, flag: str, dest: str, type_
) -> None:
    """Register a legacy flag spelling that feeds the canonical dest.

    The alias is absent from ``--help`` and contributes no default
    (``argparse.SUPPRESS``), so it only takes effect when the user
    actually types it; given both spellings, the later one wins,
    argparse's normal behaviour for a shared dest.
    """
    parser.add_argument(
        flag, dest=dest, type=type_, default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )


def _add_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--node", default="130nm", help="technology node name")
    parser.add_argument(
        "--node-file",
        default="",
        help="JSON technology-node description (overrides --node)",
    )
    parser.add_argument(
        "--gates", type=int, default=1_000_000, help="design size in gates"
    )
    parser.add_argument(
        "--clock-frequency", type=float, default=500e6, help="target clock in Hz"
    )
    parser.add_argument(
        "--repeater-fraction",
        type=float,
        default=0.4,
        help="max repeater area as a fraction of die area",
    )
    parser.add_argument(
        "--permittivity", type=float, default=3.9, help="ILD relative permittivity"
    )
    parser.add_argument(
        "--miller-factor", type=float, default=2.0, help="Miller coupling factor"
    )
    parser.add_argument(
        "--bunch-size",
        type=int,
        default=10_000,
        help="bunch size (0 disables bunching)",
    )
    parser.add_argument(
        "--repeater-units", type=int, default=512, help="repeater budget cells"
    )
    parser.add_argument(
        "--solver",
        default="dp",
        choices=("dp", "greedy"),
        help="rank solver (reference/exhaustive are test-only)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "python"),
        help="DP transition kernels: vectorized numpy (default) or the "
        "scalar python reference; results are identical",
    )
    # Pre-facade spellings, kept as hidden aliases.
    _hidden_alias(parser, "--clock", "clock_frequency", float)
    _hidden_alias(parser, "--miller", "miller_factor", float)
    _hidden_alias(parser, "--bunch", "bunch_size", int)
    _hidden_alias(parser, "--units", "repeater_units", int)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability flags for compute commands."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="enable metrics + tracing and write a Chrome trace-event "
        "JSON (Perfetto-loadable) with the metrics snapshot to FILE",
    )


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags for multi-point commands."""
    group = parser.add_argument_group("fault tolerance")
    group.add_argument(
        "--keep-going",
        action="store_true",
        help="isolate failing points (partial result + exit code 3) "
        "instead of aborting on the first failure",
    )
    group.add_argument(
        "--checkpoint",
        default="",
        metavar="PATH",
        help="journal completed points to PATH (atomic rewrite after "
        "every point) so an interrupted run can --resume",
    )
    group.add_argument(
        "--resume",
        default="",
        metavar="PATH",
        help="resume from a checkpoint file: recompute only missing "
        "points, keep journaling to the same PATH",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failing point up to N extra times, coarsening "
        "the bunch size 2x per retry (recorded in the run journal)",
    )
    group.add_argument(
        "--timeout-s",
        type=float,
        default=0.0,
        metavar="S",
        help="per-attempt wall-clock budget in seconds, enforced "
        "cooperatively inside the DP solver (0 disables)",
    )
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate points on N warm pool workers (0 = one per CPU); "
        "results and checkpoints are identical to a sequential run",
    )
    group.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        metavar="K",
        help="points per work-queue chunk when pooling (0 = automatic: "
        "~4 chunks per worker, capped at 32); scheduling only, never "
        "affects results",
    )
    group.add_argument(
        "--pool-mode",
        default="auto",
        choices=("auto", "warm", "sequential"),
        help="worker-pool policy: 'auto' (default) falls back to "
        "sequential when a pool cannot beat it (single usable CPU, "
        "tiny batch), 'warm' always pools when --jobs > 1, "
        "'sequential' never pools",
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="K",
        help="rewrite the checkpoint every K completed points instead "
        "of every point (trades re-computation on crash for less I/O)",
    )
    group.add_argument(
        "--fault-schedule",
        default="",
        metavar="SPEC",
        help="deterministic chaos testing: arm a repro.faultkit "
        "schedule (inline JSON, or a path to a JSON schedule file) "
        "for this run; also settable via REPRO_FAULT_SCHEDULE",
    )


def _runner_kwargs(args: argparse.Namespace) -> dict:
    """Translate fault-tolerance flags into harness keywords."""
    checkpoint = args.resume or args.checkpoint or None
    kwargs = dict(
        policy=RetryPolicy(
            max_attempts=1 + max(0, args.max_retries),
            timeout_s=args.timeout_s if args.timeout_s > 0 else None,
        ),
        keep_going=args.keep_going,
        checkpoint=checkpoint,
        resume=bool(args.resume),
        jobs=args.jobs,
        chunk_size=args.chunk_size or None,
        pool_mode=args.pool_mode,
        checkpoint_every=args.checkpoint_every,
    )
    if args.fault_schedule:
        kwargs["fault_schedule"] = parse_fault_schedule(args.fault_schedule)
    return kwargs


def _batch_exit_code(journal, n_results: int, n_failures: int) -> int:
    """Exit code + journal print for a finished batch command."""
    if n_failures:
        print(file=sys.stderr)
        print(format_run_journal(journal), file=sys.stderr)
        return EXIT_PARTIAL if n_results else EXIT_FAILURE
    return EXIT_OK


def _problem_from_args(args: argparse.Namespace):
    if getattr(args, "node_file", ""):
        from .api import RankProblem
        from .arch import ArchitectureSpec, DieModel, build_architecture
        from .tech.io import load_node

        node = load_node(args.node_file)
        arch = build_architecture(
            ArchitectureSpec(
                node=node,
                permittivity=args.permittivity,
                miller_factor=args.miller_factor,
            )
        )
        die = DieModel(
            node=node,
            gate_count=args.gates,
            repeater_fraction=args.repeater_fraction,
        )
        wld = davis_wld(DavisParameters(gate_count=args.gates))
        return RankProblem(
            arch=arch, die=die, wld=wld, clock_frequency=args.clock_frequency
        )
    return baseline_problem(
        args.node,
        args.gates,
        clock_frequency=args.clock_frequency,
        repeater_fraction=args.repeater_fraction,
        permittivity=args.permittivity,
        miller_factor=args.miller_factor,
    )


def _rank_request_from_args(args: argparse.Namespace) -> RankRequest:
    """The typed request equivalent of the design flags.

    The CLI constructs the same :class:`~repro.schema.RankRequest` the
    HTTP service canonicalizes, so a command line and a ``/v1/rank``
    body with the same knobs produce the same fingerprint — and hit
    the same caches.
    """
    return RankRequest(
        node=args.node,
        gates=args.gates,
        clock_frequency=args.clock_frequency,
        repeater_fraction=args.repeater_fraction,
        permittivity=args.permittivity,
        miller_factor=args.miller_factor,
        solver=args.solver,
        bunch_size=args.bunch_size or None,
        repeater_units=args.repeater_units,
        backend=args.backend,
    )


def _cmd_rank(args: argparse.Namespace) -> int:
    if getattr(args, "node_file", ""):
        # Custom node files describe problems outside the wire schema's
        # by-name node vocabulary; they keep the direct path.
        problem = _problem_from_args(args)
        result = compute_rank(
            problem,
            solver=args.solver,
            bunch_size=args.bunch_size or None,
            repeater_units=args.repeater_units,
            backend=args.backend,
        )
    else:
        result = solve_rank_request(_rank_request_from_args(args))
    print(result.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    problem = _problem_from_args(args)
    sweep_fn = _SWEEPS[args.knob]
    sweep = sweep_fn(
        problem,
        solver=args.solver,
        bunch_size=args.bunch_size or None,
        repeater_units=args.repeater_units,
        backend=args.backend,
        **_runner_kwargs(args),
    )
    if args.csv:
        print(sweep_to_csv(sweep), end="")
    else:
        print(format_sweep_table(sweep))
    return _batch_exit_code(sweep.journal, len(sweep.points), len(sweep.failures))


def _cmd_wld(args: argparse.Namespace) -> int:
    wld = davis_wld(
        DavisParameters(gate_count=args.gates, rent_exponent=args.rent)
    )
    if args.out:
        save_wld_csv(wld, args.out)
        print(f"wrote {wld.describe()} to {args.out}")
    else:
        print(wld.describe())
    return 0


def _cmd_nodes(args: argparse.Namespace) -> int:
    baselines = compare_nodes(
        bunch_size=args.bunch_size or None, repeater_units=args.repeater_units
    )
    print(format_node_table(baselines))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    problem = _problem_from_args(args)
    space = DesignSpace(
        node=problem.die.node,
        local_pairs=(1, 2),
        semi_global_pairs=(1, 2, 3),
        global_pairs=(1, 2),
        permittivities=tuple(float(k) for k in args.k_classes.split(",")),
        miller_factors=tuple(float(m) for m in args.m_classes.split(",")),
        max_metal_layers=args.max_layers,
    )
    outcome = optimize_rank(
        problem,
        space,
        exhaustive_limit=args.exhaustive_limit,
        bunch_size=args.bunch_size or None,
        repeater_units=args.repeater_units,
        backend=args.backend,
        **_runner_kwargs(args),
    )
    rows = [
        (c.label(), c.metal_layers, c.result.rank, f"{c.normalized:.6f}")
        for c in outcome.pareto
    ]
    print(
        format_table(
            ("stack", "layers", "rank", "normalized"),
            rows,
            title="Rank-vs-layers Pareto frontier",
        )
    )
    print()
    print(f"best: {outcome.best.label()} -> {outcome.best.result.summary()}")
    return _batch_exit_code(
        outcome.journal, len(outcome.evaluated), len(outcome.failures)
    )


def _cmd_corners(args: argparse.Namespace) -> int:
    from .analysis.corners import STANDARD_CORNERS, rank_across_corners

    problem = _problem_from_args(args)
    report = rank_across_corners(
        problem,
        STANDARD_CORNERS,
        bunch_size=args.bunch_size or None,
        repeater_units=args.repeater_units,
        backend=args.backend,
        **_runner_kwargs(args),
    )
    rows = [
        (corner.name, result.rank, f"{result.normalized:.6f}",
         "yes" if result.fits else "NO")
        for corner, result in report.results
    ]
    print(
        format_table(
            ("corner", "rank", "normalized", "fits"),
            rows,
            title="Rank across corners",
        )
    )
    if report.results:
        worst_corner, worst = report.worst
        print()
        print(
            f"sign-off rank: {worst.rank:,} ({worst.normalized:.6f}) at corner "
            f"{worst_corner.name!r}; guardband vs nominal: "
            f"{report.guardband:.6f}"
        )
    else:
        print()
        print("no corner produced a result; no sign-off number")
    return _batch_exit_code(
        report.journal, len(report.results), len(report.failures)
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.slack import slack_profile, summarize_slack
    from .reporting.witness import format_assignment_report

    problem = _problem_from_args(args)
    result = compute_rank(
        problem,
        solver="dp",
        bunch_size=args.bunch_size or None,
        repeater_units=args.repeater_units,
        collect_witness=True,
        backend=args.backend,
    )
    tables, _ = problem.tables(bunch_size=args.bunch_size or None)
    print(result.summary())
    print()
    print(format_assignment_report(tables, result))
    if result.witness:
        summary = summarize_slack(slack_profile(tables, result))
        print()
        print(
            f"timing: min slack {to_ps(summary.min_slack):.2f} ps at "
            f"length {summary.critical_length:g} pitches; boundary group "
            f"relative slack {summary.boundary_relative_slack * 100:.1f}% "
            f"({'delay-wall' if summary.boundary_relative_slack < 0.05 else 'budget'}-bound)"
        )
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from .api import budget_curve

    problem = _problem_from_args(args)
    curve, tables = budget_curve(
        problem,
        bunch_size=args.bunch_size or None,
        repeater_units=args.repeater_units,
    )
    total = tables.total_wires
    step = max(1, curve.num_units // args.points) if curve.num_units else 1
    rows = []
    for cells in range(0, curve.num_units + 1, step):
        rows.append(
            (
                cells,
                f"{to_mm2(cells * curve.cell_area):.4f}",
                curve.ranks[cells],
                f"{curve.ranks[cells] / total:.6f}",
            )
        )
    print(
        format_table(
            ("budget cells", "area [mm^2]", "rank", "normalized"),
            rows,
            title="Budget-rank curve (fixed die)",
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .obs.render import format_metrics
    from .obs.trace import validate_trace

    try:
        with open(args.file) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"{args.file}: cannot read: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{args.file}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise ReproError(
            f"{args.file}: no 'metrics' section; expected a --trace file "
            "or a BENCH_rank.json produced with observability enabled"
        )
    if "traceEvents" in payload:
        problems = validate_trace(payload)
        if problems:
            for problem in problems:
                print(f"warning: {problem}", file=sys.stderr)
        print(
            f"{args.file}: {len(payload['traceEvents'])} trace events"
        )
        print()
    print(format_metrics(payload["metrics"]))
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    # Deferred: the service stack (asyncio server, executor pool) is
    # only paid for by the one subcommand that runs it.
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor_mode=args.executor_mode,
        queue_depth=args.queue_depth,
        cache_entries=args.cache_entries,
        precompute_entries=args.precompute_entries,
        default_deadline_s=args.default_deadline_s or None,
        warm_on_start=not args.no_warm,
    )
    return serve(config)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="ia-rank",
        description=(
            "Interconnect-architecture rank metric "
            "(reproduction of Dasgupta-Kahng-Muddu, DATE 2003)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rank = sub.add_parser("rank", help="compute the rank of one configuration")
    _add_design_args(p_rank)
    _add_obs_args(p_rank)
    p_rank.set_defaults(func=_cmd_rank)

    p_sweep = sub.add_parser("sweep", help="regenerate one Table 4 column")
    p_sweep.add_argument("knob", choices=sorted(_SWEEPS), help="knob to sweep")
    _add_design_args(p_sweep)
    _add_runner_args(p_sweep)
    _add_obs_args(p_sweep)
    p_sweep.add_argument("--csv", action="store_true", help="emit CSV instead")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_wld = sub.add_parser("wld", help="generate a Davis WLD")
    p_wld.add_argument("--gates", type=int, default=1_000_000)
    p_wld.add_argument("--rent", type=float, default=0.6, help="Rent exponent")
    p_wld.add_argument("--out", default="", help="CSV output path")
    p_wld.set_defaults(func=_cmd_wld)

    p_nodes = sub.add_parser("nodes", help="baseline comparison across nodes")
    p_nodes.add_argument("--bunch-size", type=int, default=10_000)
    p_nodes.add_argument("--repeater-units", type=int, default=512)
    _hidden_alias(p_nodes, "--bunch", "bunch_size", int)
    _hidden_alias(p_nodes, "--units", "repeater_units", int)
    p_nodes.set_defaults(func=_cmd_nodes)

    p_opt = sub.add_parser(
        "optimize", help="search architectures for maximal rank (Section 6)"
    )
    _add_design_args(p_opt)
    p_opt.add_argument(
        "--k-classes",
        default="3.9,3.6,2.8",
        help="comma-separated candidate ILD permittivities",
    )
    p_opt.add_argument(
        "--m-classes",
        default="2.0,1.0",
        help="comma-separated candidate Miller factors (shielding levels)",
    )
    p_opt.add_argument("--max-layers", type=int, default=12)
    p_opt.add_argument("--exhaustive-limit", type=int, default=128)
    _add_runner_args(p_opt)
    _add_obs_args(p_opt)
    p_opt.set_defaults(func=_cmd_optimize)

    p_curve = sub.add_parser(
        "curve", help="rank vs repeater budget, one DP pass (fixed die)"
    )
    _add_design_args(p_curve)
    p_curve.add_argument(
        "--points", type=int, default=16, help="rows to print along the curve"
    )
    p_curve.set_defaults(func=_cmd_curve)

    p_report = sub.add_parser(
        "report",
        help="full assignment report: per-pair usage + timing slack",
    )
    _add_design_args(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_corners = sub.add_parser(
        "corners", help="rank across process/operating corners"
    )
    _add_design_args(p_corners)
    _add_runner_args(p_corners)
    _add_obs_args(p_corners)
    p_corners.set_defaults(func=_cmd_corners)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP/JSON rank service (rank-as-a-service)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8421, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="solve workers; with >= 2 on a multi-core host an 'auto' "
        "executor forks a warm worker pool",
    )
    p_serve.add_argument(
        "--executor-mode",
        default="auto",
        choices=("auto", "thread", "process"),
        help="where solves run: in-process threads, forked warm "
        "workers, or 'auto' (threads unless >= 2 workers and CPUs)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="queued solves beyond the busy workers before requests "
        "are rejected with 429 + Retry-After",
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        metavar="N",
        help="memoized responses kept (LRU, keyed by request fingerprint)",
    )
    p_serve.add_argument(
        "--precompute-entries",
        type=int,
        default=8,
        metavar="N",
        help="coarsened-table cache entries per solve process",
    )
    p_serve.add_argument(
        "--default-deadline-s",
        type=float,
        default=30.0,
        metavar="S",
        help="deadline for requests that do not set deadline_s "
        "(0 disables; per-request values are capped at 300s)",
    )
    p_serve.add_argument(
        "--no-warm",
        action="store_true",
        help="skip pre-solving the baseline request at startup",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_stats = sub.add_parser(
        "stats",
        help="render the metrics section of a --trace or BENCH file",
    )
    p_stats.add_argument(
        "file", help="trace JSON (from --trace) or BENCH_rank.json"
    )
    p_stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    See the module docstring for the exit-code contract: 0 clean,
    1 total failure, 2 usage error, 3 partial failure.
    """
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 for --help; surface
        # the code as a return value so embedders never see SystemExit.
        return int(exc.code or 0)
    trace_path = getattr(args, "trace", "")
    if trace_path:
        from . import obs

        obs.enable(trace_events=True)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except KeyboardInterrupt:
        # The parallel backend's signal handler reaps pool workers
        # before this propagates, and run_batch's finally has already
        # committed the checkpoint — the run is resumable.
        print("interrupted (checkpoint, if any, is resumable)", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed stdout early;
        # that is a normal way to stop reading, not a failure.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
    finally:
        if trace_path:
            from . import obs
            from .obs.trace import write_trace

            # Written even when the command failed: a partial trace is
            # exactly what you want when debugging a failed run.
            count = write_trace(trace_path)
            obs.disable()
            print(
                f"trace: wrote {count} events to {trace_path} "
                "(load in Perfetto / chrome://tracing, or run "
                f"'ia-rank stats {trace_path}')",
                file=sys.stderr,
            )


if __name__ == "__main__":
    sys.exit(main())
