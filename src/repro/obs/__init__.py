"""Observability: metrics registry, tracing spans, cross-process merge.

The subsystem is off by default and costs (almost) nothing while off —
every publishing helper is one guarded function call, and the DP inner
loop publishes nothing at all (it folds its local
:class:`~repro.core.dp.SolverStats` into the registry once per solve).
Enable it for a region of work, then read the registry or write a
trace::

    from repro import obs

    obs.enable(trace_events=True)
    result = compute_rank(problem, bunch_size=10_000)
    obs.write_trace("rank.trace.json")   # load in Perfetto / chrome://tracing
    print(obs.snapshot()["counters"])    # {'solver.dp.rows': ..., ...}
    obs.disable()

The CLI exposes the same switch as ``--trace FILE`` on solve commands,
and ``ia-rank stats FILE`` renders the embedded metrics section of a
trace file or ``BENCH_rank.json``.

Three guarantees the rest of the library relies on:

* **disabled means free** — ``enable()`` flips module-level booleans
  checked by :func:`repro.obs.metrics.inc` and friends; no registry
  lock is ever taken while disabled.
* **parallel equals sequential** — ``run_batch --jobs N`` workers
  collect metrics locally and the parent merges per-point deltas, so
  deterministic counter totals match a ``jobs=1`` run exactly
  (cache-warm accounting excluded; see
  :data:`repro.obs.aggregate.NONDETERMINISTIC_PREFIXES`).
* **standard trace format** — spans are Chrome trace events validated
  by :func:`validate_trace`, loadable in Perfetto without conversion.
"""

from __future__ import annotations

from . import aggregate, metrics, trace
from .aggregate import NONDETERMINISTIC_PREFIXES, deterministic_counters
from .metrics import (
    MetricsRegistry,
    gauge,
    inc,
    merge,
    metrics_enabled,
    observe,
    registry,
    snapshot,
)
from .trace import (
    span,
    tracing_enabled,
    validate_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "NONDETERMINISTIC_PREFIXES",
    "deterministic_counters",
    "disable",
    "enable",
    "gauge",
    "inc",
    "is_enabled",
    "merge",
    "metrics_enabled",
    "observe",
    "registry",
    "reset",
    "snapshot",
    "span",
    "tracing_enabled",
    "validate_trace",
    "write_trace",
]


def enable(trace_events: bool = False) -> None:
    """Turn on metric publishing (and span recording when asked).

    ``enable(trace_events=True)`` also records every :func:`span` as a
    Chrome trace event for a later :func:`write_trace`.  Enabling is
    idempotent and does not clear previously collected data — call
    :func:`reset` for a clean slate.
    """
    metrics._set_enabled(True)
    if trace_events:
        trace._set_enabled(True)


def disable() -> None:
    """Stop publishing metrics and recording spans (data is kept)."""
    metrics._set_enabled(False)
    trace._set_enabled(False)


def is_enabled() -> bool:
    """Whether any part of the subsystem (metrics or tracing) is on."""
    return metrics.metrics_enabled() or trace.tracing_enabled()


def reset() -> None:
    """Drop all collected metrics and buffered trace events."""
    metrics.reset()
    trace.clear_events()
