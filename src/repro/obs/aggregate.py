"""Cross-process metric and span aggregation for parallel batches.

A ``run_batch(..., jobs=N)`` worker cannot publish into the parent's
registry, so the contract is delta shipping: each worker *resets* its
process-local observability state before a point, evaluates it, and
attaches the resulting snapshot (metrics + trace events + start/end
stamps) to the :class:`~repro.runner.executor.PointOutcome` it returns.
The parent merges every payload as outcomes arrive.  Because each
worker drives points serially, reset-then-snapshot yields exactly the
per-point delta, and because counter/timer merging is associative and
commutative, a parallel run reports the same deterministic counter
totals as a sequential one — the parity that
``tests/obs/test_parity.py`` pins down.

(The exception is cache-warm accounting: every worker owns a pickled
copy of the :class:`~repro.core.precompute.PrecomputeCache`, so
``precompute.*`` / ``davis_cache.*`` hit/miss splits legitimately
depend on how points land on workers.  Comparisons must exclude those —
see :data:`NONDETERMINISTIC_PREFIXES`.)
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from . import metrics as _metrics
from . import trace as _trace

#: Metric-name prefixes whose totals legitimately differ between a
#: sequential and a parallel run: per-worker cache copies shift the
#: hit/miss split, and the parallel.* family only exists with jobs > 1.
NONDETERMINISTIC_PREFIXES = ("precompute.", "davis_cache.", "parallel.")


def obs_flags() -> tuple:
    """The (metrics, tracing) enable pair, for worker initializers."""
    return (_metrics.metrics_enabled(), _trace.tracing_enabled())


def obs_enabled() -> bool:
    """Whether any observability (metrics or tracing) is on."""
    return _metrics.metrics_enabled() or _trace.tracing_enabled()


def apply_obs_flags(flags: Sequence[bool]) -> None:
    """Install an :func:`obs_flags` pair inside a worker process."""
    metrics_on, trace_on = flags
    _metrics._set_enabled(bool(metrics_on))
    _trace._set_enabled(bool(trace_on))


def begin_point() -> float:
    """Reset worker-local observability state; returns the start stamp."""
    _metrics.reset()
    _trace.clear_events()
    return time.monotonic()


def end_point(started: float) -> dict:
    """Snapshot everything the point produced, for shipment to the parent."""
    return {
        "metrics": _metrics.snapshot(),
        "events": _trace.events(),
        "started": started,
        "ended": time.monotonic(),
    }


def merge_point(payload: Optional[dict], submitted: Optional[float] = None) -> None:
    """Fold one worker point's payload into the parent's state.

    ``submitted`` is the parent-side ``time.monotonic()`` stamp of the
    pool submission; with it, the point's queue wait (submission to
    worker pickup) lands in the ``parallel.queue_wait_s`` histogram.
    """
    if not payload:
        return
    _metrics.merge(payload.get("metrics"))
    events = payload.get("events")
    if events:
        _trace.extend_events(events)
    started = payload.get("started")
    if submitted is not None and started is not None:
        _metrics.observe("parallel.queue_wait_s", max(0.0, started - submitted))


def busy_seconds(payload: Optional[dict]) -> float:
    """Worker-side wall seconds one point consumed (0 without a payload)."""
    if not payload:
        return 0.0
    started = payload.get("started")
    ended = payload.get("ended")
    if started is None or ended is None:
        return 0.0
    return max(0.0, ended - started)


def deterministic_counters(snapshot: dict) -> dict:
    """The counter subset that must agree between jobs=1 and jobs=N.

    Filters a registry snapshot down to counters outside
    :data:`NONDETERMINISTIC_PREFIXES` — the comparison key for the
    sequential-vs-parallel parity guarantee.
    """
    return {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if not name.startswith(NONDETERMINISTIC_PREFIXES)
    }
