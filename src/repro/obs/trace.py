"""Tracing spans emitted as Chrome trace-event JSON.

:func:`span` is the library's tracing primitive: a context manager
that, while tracing is enabled, records one *complete* (``"ph": "X"``)
Chrome trace event with the span's wall-clock duration — and, while
only metrics are enabled, still feeds a ``span.<name>_s`` timing
histogram.  When the subsystem is fully disabled, :func:`span` returns
a shared no-op object, so dormant instrumentation costs one function
call and one boolean check.

:func:`write_trace` serializes the buffered events in the JSON *object*
flavour of the Chrome trace-event format
(``{"traceEvents": [...], ...}``), which ``chrome://tracing`` and
Perfetto's legacy importer both load directly.  The current metrics
snapshot rides along under a top-level ``"metrics"`` key (extra keys
are explicitly permitted by the format), which is what lets a parallel
and a sequential ``--trace`` run be compared for counter parity from
their trace files alone.

Timestamps are ``time.monotonic()`` microseconds.  On Linux that clock
is system-wide, so events recorded in worker processes (shipped back by
:mod:`repro.obs.aggregate`) land on a timeline consistent with the
parent's — each process keeps its own ``pid`` lane in the viewer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from types import TracebackType
from typing import Dict, Iterable, List, Optional, Type, Union

from . import metrics as _metrics
from ..units import to_us

#: Event-phase values this library emits / accepts when validating.
VALID_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M"})

#: Cap on buffered events; beyond it events are counted, not stored.
MAX_EVENTS = 200_000

_ENABLED = False
_LOCK = threading.Lock()
_EVENTS: List[dict] = []
_DROPPED = 0


def _reinit_after_fork() -> None:
    """Replace the buffer lock in forked children.

    A forked worker inherits ``_LOCK`` in whatever state the parent's
    threads left it at ``fork()`` time; if any thread held it (a
    concurrent :func:`add_event`), the child's copy is locked forever
    and the first worker-side trace call deadlocks.  Fresh-lock-on-fork
    is the same discipline the stdlib ``logging`` module applies to its
    module lock.
    """
    global _LOCK
    _LOCK = threading.Lock()


os.register_at_fork(after_in_child=_reinit_after_fork)


def tracing_enabled() -> bool:
    """Whether span events are currently being recorded."""
    return _ENABLED


def _set_enabled(on: bool) -> None:
    global _ENABLED
    _ENABLED = on


def add_event(event: dict) -> None:
    """Append one raw trace event (callers normally use :func:`span`)."""
    global _DROPPED
    with _LOCK:
        if len(_EVENTS) >= MAX_EVENTS:
            _DROPPED += 1
            return
        _EVENTS.append(event)


def events() -> List[dict]:
    """Copy of the buffered events (worker shipment / tests)."""
    with _LOCK:
        return list(_EVENTS)


def extend_events(incoming: Iterable[dict]) -> None:
    """Append events merged back from a worker process."""
    global _DROPPED
    with _LOCK:
        for event in incoming:
            if len(_EVENTS) >= MAX_EVENTS:
                _DROPPED += 1
                continue
            _EVENTS.append(event)


def clear_events() -> None:
    """Drop the buffer (used per-point in worker processes)."""
    global _DROPPED
    with _LOCK:
        _EVENTS.clear()
        _DROPPED = 0


def dropped_events() -> int:
    """Events discarded because the buffer hit :data:`MAX_EVENTS`."""
    return _DROPPED


class Span:
    """One live span; created by :func:`span`, closed by ``with``."""

    __slots__ = ("name", "args", "_start")

    def __init__(self, name: str, args: Dict[str, object]) -> None:
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.monotonic()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        end = time.monotonic()
        duration = end - self._start
        if _metrics.metrics_enabled():
            _metrics.observe(f"span.{self.name}_s", duration)
        if _ENABLED:
            event = {
                "name": self.name,
                "cat": "repro",
                "ph": "X",
                "ts": to_us(self._start),
                "dur": to_us(duration),
                "pid": os.getpid(),
                "tid": threading.get_ident() % 2**31,
            }
            if self.args:
                event["args"] = dict(self.args)
            if exc_type is not None:
                event.setdefault("args", {})["error"] = exc_type.__name__
            add_event(event)
        return False


class _NullSpan:
    """Shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **args: object) -> Union[Span, "_NullSpan"]:
    """A context manager timing one named region of work.

    Returns the shared no-op span unless tracing or metrics are
    enabled, so instrumentation left in place costs (almost) nothing
    when observability is off.  ``args`` become the Chrome event's
    ``args`` payload — keep them small and JSON-compatible.
    """
    if not (_ENABLED or _metrics.metrics_enabled()):
        return _NULL_SPAN
    return Span(name, args)


def write_trace(
    path: Union[str, "os.PathLike[str]"], extra: Optional[dict] = None
) -> int:
    """Write the buffered events as a Chrome trace-event JSON file.

    The file is written atomically (temp + ``os.replace``) and carries
    the current metrics snapshot under ``"metrics"``; ``extra`` entries
    are folded into ``"otherData"``.  Returns the number of events
    written.
    """
    with _LOCK:
        trace_events = list(_EVENTS)
        dropped = _DROPPED
    other = {"events_dropped": dropped}
    if extra:
        other.update(extra)
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metrics": _metrics.snapshot(),
        "otherData": other,
    }
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return len(trace_events)


def validate_trace(payload: object) -> List[str]:
    """Check a loaded trace file against the Chrome trace-event schema.

    Returns a list of human-readable problems — empty means the file is
    a well-formed JSON-object-format trace that Perfetto's legacy
    importer will accept.  Validation is structural (required keys and
    types per event), not semantic.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object with a 'traceEvents' array"]
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["'traceEvents' must be an array"]
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in VALID_PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field!r} must be an integer")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative 'dur'"
                )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems
