"""Human-readable rendering of metrics snapshots (``ia-rank stats``).

Takes the JSON ``metrics`` section embedded in ``BENCH_rank.json`` or
in a ``--trace`` file and renders counters, timing histograms, and
gauges as fixed-width tables.  Lives apart from the rest of
:mod:`repro.obs` so the zero-dependency publishing path never imports
the reporting layer.
"""

from __future__ import annotations

from typing import List, Optional

from ..units import to_us


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{to_us(seconds):.1f} us"


def format_metrics(snapshot: dict) -> str:
    """Render one registry snapshot as counter / timer / gauge tables."""
    # Local import: reporting pulls in analysis + core, which (being
    # instrumented) import repro.obs — keep that cycle out of obs
    # import time.
    from ..reporting.text import format_table

    sections: List[str] = []

    counters = snapshot.get("counters", {})
    if counters:
        rows = [(name, f"{value:,}") for name, value in sorted(counters.items())]
        sections.append(format_table(("counter", "value"), rows, title="Counters"))

    timers = snapshot.get("timers", {})
    if timers:
        rows = []
        for name, timer in sorted(timers.items()):
            count = timer.get("count", 0)
            total = timer.get("total_s", 0.0)
            mean = total / count if count else None
            rows.append(
                (
                    name,
                    count,
                    _format_seconds(total),
                    _format_seconds(mean),
                    _format_seconds(timer.get("min_s")),
                    _format_seconds(timer.get("max_s")),
                )
            )
        sections.append(
            format_table(
                ("timer", "count", "total", "mean", "min", "max"),
                rows,
                title="Timers",
            )
        )

    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [(name, f"{value:g}") for name, value in sorted(gauges.items())]
        sections.append(format_table(("gauge", "value"), rows, title="Gauges"))

    if not sections:
        return "no metrics recorded"
    return "\n\n".join(sections)
