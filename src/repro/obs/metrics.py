"""Metrics registry: counters, gauges, and timing histograms.

The registry is the single sink every instrumented subsystem publishes
into — the DP solver's :class:`~repro.core.dp.SolverStats`, the
precompute / Davis-WLD cache hit counters, the runner's attempt and
checkpoint accounting, and the parallel backend's queue/utilization
numbers all land here under dotted metric names (``solver.dp.rows``,
``precompute.coarsened.hits``, ``runner.attempts``, ...).

Design constraints:

* **near-zero overhead when disabled** — every module-level publishing
  helper (:func:`inc`, :func:`gauge`, :func:`observe`) is a single
  function call that checks one module-level boolean and returns.  Hot
  loops additionally accumulate into local counters (``SolverStats``)
  and publish once per solve, so the disabled cost on the DP inner loop
  is exactly zero.
* **mergeable** — :meth:`MetricsRegistry.snapshot` produces a plain
  JSON-ready dict and :meth:`MetricsRegistry.merge` folds such a
  snapshot back in (counters add, timer histograms combine, gauges
  last-write-wins).  This is what lets ``run_batch --jobs N`` workers
  collect metrics locally and report the same counter totals as a
  sequential run (see :mod:`repro.obs.aggregate`).

Timing histograms keep count / total / min / max plus power-of-two
bucket counts (bucket key ``e`` counts observations with
``value <= 2**e`` seconds and ``> 2**(e-1)``), which merge exactly
across processes.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

#: Bucket exponent clamp: 2**-20 s (~1 us) .. 2**12 s (~68 min).
_BUCKET_MIN_EXP = -20
_BUCKET_MAX_EXP = 12

#: Module-level enable flag; flipped only through repro.obs.enable().
_ENABLED = False


def _bucket_exponent(seconds: float) -> int:
    """Power-of-two bucket for a timing observation (clamped)."""
    if seconds <= 0.0:
        return _BUCKET_MIN_EXP
    exp = math.ceil(math.log2(seconds))
    return max(_BUCKET_MIN_EXP, min(_BUCKET_MAX_EXP, exp))


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and timing histograms.

    Operations are low-frequency by design (per point / per solve, not
    per DP transition), so a single lock is plenty.  The registry is
    process-local: cross-process aggregation works by snapshotting in
    the worker and merging in the parent (:mod:`repro.obs.aggregate`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one timing observation into histogram ``name``."""
        seconds = float(seconds)
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = {
                    "count": 0,
                    "total_s": 0.0,
                    "min_s": math.inf,
                    "max_s": 0.0,
                    "buckets": {},
                }
                self._timers[name] = timer
            timer["count"] += 1
            timer["total_s"] += seconds
            timer["min_s"] = min(timer["min_s"], seconds)
            timer["max_s"] = max(timer["max_s"], seconds)
            key = str(_bucket_exponent(seconds))
            timer["buckets"][key] = timer["buckets"].get(key, 0) + 1

    # ------------------------------------------------------------------
    # Snapshot / merge / reset
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy: ``{"counters": ..., "gauges": ..., "timers": ...}``.

        ``min_s`` is emitted as ``None`` for never-observed timers so
        the payload stays valid JSON (no infinities).
        """
        with self._lock:
            timers = {}
            for name, timer in self._timers.items():
                timers[name] = {
                    "count": timer["count"],
                    "total_s": timer["total_s"],
                    "min_s": None if math.isinf(timer["min_s"]) else timer["min_s"],
                    "max_s": timer["max_s"],
                    "buckets": dict(timer["buckets"]),
                }
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": timers,
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters and histogram contents add; gauges take the incoming
        value.  Merging is associative and commutative over counters
        and timers, so any worker completion order yields the same
        totals.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, incoming in snapshot.get("timers", {}).items():
                timer = self._timers.get(name)
                if timer is None:
                    timer = {
                        "count": 0,
                        "total_s": 0.0,
                        "min_s": math.inf,
                        "max_s": 0.0,
                        "buckets": {},
                    }
                    self._timers[name] = timer
                timer["count"] += incoming.get("count", 0)
                timer["total_s"] += incoming.get("total_s", 0.0)
                incoming_min = incoming.get("min_s")
                if incoming_min is not None:
                    timer["min_s"] = min(timer["min_s"], incoming_min)
                timer["max_s"] = max(timer["max_s"], incoming.get("max_s", 0.0))
                for key, count in incoming.get("buckets", {}).items():
                    timer["buckets"][key] = timer["buckets"].get(key, 0) + count

    def reset(self) -> None:
        """Drop every metric (used per-point in worker processes)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def counter(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)


#: The process-global registry every guarded helper publishes into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (always live; publishing is gated)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """Whether metric publishing is currently on."""
    return _ENABLED


def _set_enabled(on: bool) -> None:
    global _ENABLED
    _ENABLED = on


def inc(name: str, value: int = 1) -> None:
    """Guarded counter increment: a no-op while metrics are disabled."""
    if _ENABLED:
        _REGISTRY.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Guarded gauge set: a no-op while metrics are disabled."""
    if _ENABLED:
        _REGISTRY.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Guarded timing observation: a no-op while metrics are disabled."""
    if _ENABLED:
        _REGISTRY.observe(name, seconds)


def snapshot() -> dict:
    """Snapshot the global registry (works regardless of the flag)."""
    return _REGISTRY.snapshot()


def merge(payload: Optional[dict]) -> None:
    """Merge a snapshot into the global registry (``None`` is a no-op)."""
    if payload:
        _REGISTRY.merge(payload)


def reset() -> None:
    """Clear the global registry."""
    _REGISTRY.reset()
