"""The Otten--Brayton wire delay model (paper Eqs. (2) and (3)).

A wire of length ``l`` on layer-pair ``j`` is driven through ``eta``
identical stages (the original driver plus ``eta - 1`` inserted
repeaters), each a size-``s`` inverter.  The delay of one segment of
length ``l/eta`` is (Eq. (2))

    tau = b * R_tr * (C_L + c_p') + b * (c * R_tr + r * C_L) * (l/eta)
          + a * r * c * (l/eta)^2

with ``R_tr = r_o / s``, ``C_L = s * c_o`` and ``c_p' = s * c_p``; the
total delay is ``eta`` segments (Eq. (3)):

    D = b * r_o * (c_o + c_p) * eta
        + b * (c * r_o / s + r * c_o * s) * l
        + a * r * c * l^2 / eta

with the switching constants ``a = 0.4`` and ``b = 0.7``.  Note how the
intrinsic term grows with ``eta`` while the distributed-RC term shrinks:
repeaters trade driver self-delay against quadratic wire delay.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..constants import SWITCHING_A, SWITCHING_B
from ..errors import DelayModelError
from ..rc.models import WireRC
from ..tech.device import DeviceParameters

if TYPE_CHECKING:  # numpy loads lazily in the batch kernel below
    import numpy as np


def _validate(length: float, size: float, stages: int) -> None:
    if length < 0:
        raise DelayModelError(f"wire length must be non-negative, got {length!r}")
    if size <= 0:
        raise DelayModelError(f"repeater size must be positive, got {size!r}")
    if stages < 1:
        raise DelayModelError(f"stage count must be at least 1, got {stages!r}")


def segment_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    segment_length: float,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> float:
    """Delay of one repeater-to-repeater segment (paper Eq. (2)), seconds."""
    _validate(segment_length, size, 1)
    r_tr = device.output_resistance / size
    c_load = size * device.input_capacitance
    c_par = size * device.parasitic_capacitance
    return (
        b * r_tr * (c_load + c_par)
        + b * (rc.capacitance * r_tr + rc.resistance * c_load) * segment_length
        + a * rc.rc_product * segment_length ** 2
    )


def wire_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    stages: int,
    length: float,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> float:
    """Total delay of a wire driven through ``stages`` stages (Eq. (3)).

    ``stages`` counts the driver itself; ``stages - 1`` repeaters are
    physically inserted along the wire.
    """
    _validate(length, size, stages)
    intrinsic = b * device.intrinsic_delay * stages
    linear = (
        b
        * (
            rc.capacitance * device.output_resistance / size
            + rc.resistance * device.input_capacitance * size
        )
        * length
    )
    quadratic = a * rc.rc_product * length ** 2 / stages
    return intrinsic + linear + quadratic


def wire_delay_batch(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    stages: "np.ndarray",
    lengths: "np.ndarray",
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> "np.ndarray":
    """Vectorized :func:`wire_delay` over arrays of stages and lengths.

    One call evaluates Eq. (3) for a whole layer-pair worth of wire
    groups at once (``stages`` and ``lengths`` broadcast against each
    other), which is what lets the assignment-table build and the
    batched feasibility kernels stay free of per-wire Python loops.
    Returns a float array of the broadcast shape.
    """
    import numpy as np

    stages = np.asarray(stages, dtype=float)
    lengths = np.asarray(lengths, dtype=float)
    if size <= 0:
        raise DelayModelError(f"repeater size must be positive, got {size!r}")
    if lengths.size and np.any(lengths < 0):
        raise DelayModelError("wire lengths must be non-negative")
    if stages.size and np.any(stages < 1):
        raise DelayModelError("stage counts must be at least 1")
    intrinsic = b * device.intrinsic_delay * stages
    linear = (
        b
        * (
            rc.capacitance * device.output_resistance / size
            + rc.resistance * device.input_capacitance * size
        )
        * lengths
    )
    quadratic = a * rc.rc_product * lengths ** 2 / stages
    return intrinsic + linear + quadratic


def unbuffered_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    length: float,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> float:
    """Delay with the bare driver and no inserted repeaters (eta = 1)."""
    return wire_delay(rc, device, size, 1, length, a, b)


def min_delay_stage_count(
    rc: WireRC,
    device: DeviceParameters,
    length: float,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> float:
    """Real-valued stage count minimizing Eq. (3) for a wire.

    Setting dD/d(eta) = 0 gives
    ``eta* = l * sqrt(a * r * c / (b * r_o * (c_o + c_p)))``.
    The integer optimum is one of ``floor``/``ceil`` of this value
    (delay is convex in ``eta``).
    """
    if length < 0:
        raise DelayModelError(f"wire length must be non-negative, got {length!r}")
    return length * math.sqrt(a * rc.rc_product / (b * device.intrinsic_delay))
