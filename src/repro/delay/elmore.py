"""Elmore-style repeatered-line delay, for cross-validation.

An independent first-order model used by tests and ablations to check
that the Otten--Brayton trends (monotonicity in R, C, length; benefit of
repeaters for long wires) are not artifacts of one formula.  The 50%
Elmore delay of one stage driving a distributed RC segment plus the next
stage's input is

    t = ln2 * R_d * (C_w + C_in + C_par) + ln2 * R_w * C_in + 0.38 * R_w * C_w

with ``R_d = r_o/s``, ``C_in = s*c_o``, ``C_par = s*c_p``,
``R_w = r*l_seg`` and ``C_w = c*l_seg``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..errors import DelayModelError
from ..rc.models import WireRC
from ..tech.device import DeviceParameters

if TYPE_CHECKING:  # numpy loads lazily in the batch kernel below
    import numpy as np

_LN2 = math.log(2.0)
_DISTRIBUTED = 0.38


def elmore_segment_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    segment_length: float,
) -> float:
    """50% Elmore delay of one repeater stage and its wire segment."""
    if size <= 0:
        raise DelayModelError(f"repeater size must be positive, got {size!r}")
    if segment_length < 0:
        raise DelayModelError(
            f"segment length must be non-negative, got {segment_length!r}"
        )
    r_d = device.output_resistance / size
    c_in = size * device.input_capacitance
    c_par = size * device.parasitic_capacitance
    r_w = rc.resistance * segment_length
    c_w = rc.capacitance * segment_length
    return (
        _LN2 * r_d * (c_w + c_in + c_par)
        + _LN2 * r_w * c_in
        + _DISTRIBUTED * r_w * c_w
    )


def elmore_wire_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    stages: int,
    length: float,
) -> float:
    """Total Elmore delay of a wire split into ``stages`` equal segments."""
    if stages < 1:
        raise DelayModelError(f"stage count must be at least 1, got {stages!r}")
    if length < 0:
        raise DelayModelError(f"wire length must be non-negative, got {length!r}")
    return stages * elmore_segment_delay(rc, device, size, length / stages)


def elmore_wire_delay_batch(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    stages: "np.ndarray",
    lengths: "np.ndarray",
) -> "np.ndarray":
    """Vectorized :func:`elmore_wire_delay` over stage/length arrays.

    ``stages`` and ``lengths`` broadcast against each other; one call
    cross-validates a whole layer-pair worth of wire groups against the
    Otten--Brayton batch kernel.  Element arithmetic matches the scalar
    function exactly.
    """
    import numpy as np

    stages = np.asarray(stages, dtype=float)
    lengths = np.asarray(lengths, dtype=float)
    if size <= 0:
        raise DelayModelError(f"repeater size must be positive, got {size!r}")
    if stages.size and np.any(stages < 1):
        raise DelayModelError("stage counts must be at least 1")
    if lengths.size and np.any(lengths < 0):
        raise DelayModelError("wire lengths must be non-negative")
    segment = lengths / stages
    r_d = device.output_resistance / size
    c_in = size * device.input_capacitance
    c_par = size * device.parasitic_capacitance
    r_w = rc.resistance * segment
    c_w = rc.capacitance * segment
    per_stage = (
        _LN2 * r_d * (c_w + c_in + c_par)
        + _LN2 * r_w * c_in
        + _DISTRIBUTED * r_w * c_w
    )
    return stages * per_stage
