"""Target-delay models.

The paper (Section 4.1) sets the target delay of wire ``i`` to

    d_i = (l_i / l_max) * (1 / f_c)

i.e. proportional to length, with the longest wire allowed one full clock
period.  Its Section 6 notes that a linear requirement becomes
unreasonable because actual delay grows quadratically with length, and
announces study of alternative models — so this module also provides the
quadratic alternative as an ablation
(:class:`QuadraticTargetModel`: ``d_i = (l_i / l_max)^2 / f_c``),
exercised by ``benchmarks/bench_target_models.py``.

Lengths here are *physical* (metres) because targets interact with
physical delay; callers convert WLD gate-pitch lengths via the die model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DelayModelError


class TargetDelayModel:
    """Interface: map wire length (metres) to target delay (seconds)."""

    #: longest wire length, metres (set by concrete models)
    max_length: float
    #: target clock frequency, hertz
    clock_frequency: float

    def target(self, length: float) -> float:
        """Target delay for one wire of the given physical length."""
        raise NotImplementedError

    def targets(self, lengths: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`target` (default: elementwise loop)."""
        return np.array([self.target(float(l)) for l in np.asarray(lengths)])


def _validate(max_length: float, clock_frequency: float) -> None:
    if max_length <= 0:
        raise DelayModelError(
            f"max wire length must be positive, got {max_length!r}"
        )
    if clock_frequency <= 0:
        raise DelayModelError(
            f"clock frequency must be positive, got {clock_frequency!r}"
        )


@dataclass(frozen=True)
class LinearTargetModel(TargetDelayModel):
    """The paper's model: ``d_i = (l_i / l_max) / f_c``.

    Attributes
    ----------
    max_length:
        ``l_max`` in metres: the longest wire of the WLD, which is
        granted exactly one clock period.
    clock_frequency:
        ``f_c`` in hertz (the Table 4 column ``C`` knob).
    """

    max_length: float
    clock_frequency: float

    def __post_init__(self) -> None:
        _validate(self.max_length, self.clock_frequency)

    def target(self, length: float) -> float:
        if length < 0:
            raise DelayModelError(f"length must be non-negative, got {length!r}")
        return (length / self.max_length) / self.clock_frequency

    def targets(self, lengths: np.ndarray) -> np.ndarray:
        arr = np.asarray(lengths, dtype=float)
        if arr.size and np.any(arr < 0):
            raise DelayModelError("lengths must be non-negative")
        return (arr / self.max_length) / self.clock_frequency


@dataclass(frozen=True)
class QuadraticTargetModel(TargetDelayModel):
    """Section 6's alternative: ``d_i = (l_i / l_max)^2 / f_c``.

    Matches the quadratic growth of unrepeatered RC delay, so short wires
    get proportionally looser targets than under the linear model.
    """

    max_length: float
    clock_frequency: float

    def __post_init__(self) -> None:
        _validate(self.max_length, self.clock_frequency)

    def target(self, length: float) -> float:
        if length < 0:
            raise DelayModelError(f"length must be non-negative, got {length!r}")
        ratio = length / self.max_length
        return ratio * ratio / self.clock_frequency

    def targets(self, lengths: np.ndarray) -> np.ndarray:
        arr = np.asarray(lengths, dtype=float)
        if arr.size and np.any(arr < 0):
            raise DelayModelError("lengths must be non-negative")
        ratio = arr / self.max_length
        return ratio * ratio / self.clock_frequency
