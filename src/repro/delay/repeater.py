"""Repeater sizing and insertion.

The paper's recipe (Section 4.1): repeaters in all wires of a layer-pair
share one size — the delay-optimal ``s_opt,j = sqrt(c_j * r_o / (c_o *
r_j))`` of Eq. (4) — and repeaters are inserted *incrementally* into a
wire until its delay meets the target or the budget runs out.

Incremental insertion of uniform-size repeaters is equivalent to finding
the minimal stage count ``eta`` with ``D(eta) <= d``; because Eq. (3) is
``A*eta + L + Q/eta`` (convex in ``eta``), the feasible stage counts form
a closed interval whose ends solve the quadratic
``A*eta^2 - (d - L)*eta + Q = 0``.  :func:`min_stages_for_target` returns
the smallest integer in that interval, or ``None`` when the interval is
empty (the wire can never meet the target on this layer-pair — matching
the paper's "repeaters cannot be placed at appropriate intervals" bail
out).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..constants import SWITCHING_A, SWITCHING_B
from ..errors import DelayModelError
from ..rc.models import WireRC
from ..tech.device import DeviceParameters
from .ottenbrayton import wire_delay

if TYPE_CHECKING:  # numpy loads lazily in the batch kernels below
    import numpy as np

    from ..rc.models import RCArrays


def optimal_repeater_size(rc: WireRC, device: DeviceParameters) -> float:
    """Delay-optimal repeater size for a layer-pair (paper Eq. (4)).

    ``s_opt = sqrt(c * r_o / (c_o * r))`` in multiples of the minimum
    inverter.  Sizes never go below 1 (a repeater cannot be smaller than
    the minimum inverter).
    """
    size = math.sqrt(
        rc.capacitance
        * device.output_resistance
        / (device.input_capacitance * rc.resistance)
    )
    return max(1.0, size)


def optimal_repeater_size_batch(
    rc_arrays: "RCArrays", device: DeviceParameters
) -> "np.ndarray":
    """Vectorized :func:`optimal_repeater_size` over a whole architecture.

    ``rc_arrays`` is an :class:`~repro.rc.models.RCArrays` (or anything
    with ``resistance`` / ``capacitance`` arrays); one call sizes every
    layer-pair's repeater.  Element arithmetic matches the scalar
    function exactly.
    """
    import numpy as np

    size = np.sqrt(
        rc_arrays.capacitance
        * device.output_resistance
        / (device.input_capacitance * rc_arrays.resistance)
    )
    return np.maximum(1.0, size)


def min_stages_for_target(
    rc: WireRC,
    device: DeviceParameters,
    length: float,
    target: float,
    size: Optional[float] = None,
    max_stages: Optional[int] = None,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> Optional[int]:
    """Minimal stage count whose Eq. (3) delay meets ``target``.

    Parameters
    ----------
    rc, device:
        Layer-pair electricals and driver/repeater device.
    length:
        Wire length in metres.
    target:
        Target delay ``d_i`` in seconds.
    size:
        Repeater size; defaults to the layer-pair's Eq. (4) optimum.
    max_stages:
        Optional cap modelling "repeaters cannot be placed at appropriate
        intervals" (e.g. a minimum segment length); stage counts above
        the cap are treated as unplaceable.

    Returns
    -------
    int or None
        The minimal feasible stage count (>= 1), or ``None`` if no stage
        count meets the target.
    """
    if length < 0:
        raise DelayModelError(f"wire length must be non-negative, got {length!r}")
    if target <= 0:
        return None
    if size is None:
        size = optimal_repeater_size(rc, device)

    coeff_a = b * device.intrinsic_delay
    linear = (
        b
        * (
            rc.capacitance * device.output_resistance / size
            + rc.resistance * device.input_capacitance * size
        )
        * length
    )
    quad = a * rc.rc_product * length ** 2

    budget = target - linear
    if budget <= 0:
        return None  # the eta-independent linear term alone exceeds the target

    # Feasible eta satisfy coeff_a*eta^2 - budget*eta + quad <= 0.
    disc = budget * budget - 4.0 * coeff_a * quad
    if disc < 0:
        return None  # even the convex minimum exceeds the target
    sqrt_disc = math.sqrt(disc)
    low = (budget - sqrt_disc) / (2.0 * coeff_a)
    high = (budget + sqrt_disc) / (2.0 * coeff_a)

    eta = max(1, math.ceil(low - 1e-12))
    if eta > high + 1e-12:
        return None  # no integer in the feasible interval at/above 1
    if max_stages is not None and eta > max_stages:
        return None
    # Guard against floating-point edge cases: verify, and nudge once.
    if wire_delay(rc, device, size, eta, length, a, b) > target:
        eta += 1
        if eta > high + 1e-9 or (max_stages is not None and eta > max_stages):
            return None
        if wire_delay(rc, device, size, eta, length, a, b) > target:
            return None
    return eta


def min_stages_for_target_batch(
    rc: WireRC,
    device: DeviceParameters,
    lengths: "np.ndarray",
    targets: "np.ndarray",
    size: Optional[float] = None,
    max_stages: Optional[int] = None,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> "np.ndarray":
    """Vectorized :func:`min_stages_for_target` over length/target arrays.

    Returns an int64 array of minimal stage counts with ``-1`` marking
    wires that cannot meet their targets on this layer-pair.  Used by the
    rank solvers to precompute per-(layer-pair, wire-group) repeater
    demand in one shot.
    """
    import numpy as np

    lengths = np.asarray(lengths, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if lengths.shape != targets.shape:
        raise DelayModelError(
            f"lengths and targets must have equal shape, got "
            f"{lengths.shape} vs {targets.shape}"
        )
    if lengths.size and np.any(lengths < 0):
        raise DelayModelError("lengths must be non-negative")
    if size is None:
        size = optimal_repeater_size(rc, device)

    coeff_a = b * device.intrinsic_delay
    linear = (
        b
        * (
            rc.capacitance * device.output_resistance / size
            + rc.resistance * device.input_capacitance * size
        )
        * lengths
    )
    quad = a * rc.rc_product * lengths ** 2
    budget = targets - linear

    result = np.full(lengths.shape, -1, dtype=np.int64)
    with np.errstate(invalid="ignore"):
        disc = budget * budget - 4.0 * coeff_a * quad
        feasible = (budget > 0) & (disc >= 0) & (targets > 0)
        sqrt_disc = np.sqrt(np.where(feasible, disc, 0.0))
        low = (budget - sqrt_disc) / (2.0 * coeff_a)
        high = (budget + sqrt_disc) / (2.0 * coeff_a)
    eta = np.maximum(1, np.ceil(low - 1e-12)).astype(np.int64)
    feasible &= eta <= high + 1e-12
    if max_stages is not None:
        feasible &= eta <= max_stages
    result[feasible] = eta[feasible]

    # Floating-point verification pass on the (rare) boundary cases.
    check = result > 0
    if np.any(check):
        stages = result[check].astype(float)
        delays = (
            coeff_a * stages + linear[check] + quad[check] / stages
        )
        bad = delays > targets[check]
        if np.any(bad):
            indices = np.flatnonzero(check)[bad]
            for index in indices:
                fixed = min_stages_for_target(
                    rc,
                    device,
                    float(lengths[index]),
                    float(targets[index]),
                    size=size,
                    max_stages=max_stages,
                    a=a,
                    b=b,
                )
                result[index] = -1 if fixed is None else fixed
    return result


@dataclass(frozen=True)
class RepeaterSolution:
    """Result of repeater insertion on one wire.

    Attributes
    ----------
    stages:
        Total stage count ``eta`` (driver included).
    inserted:
        Repeaters physically inserted: ``stages - 1``.  This is what the
        repeater-area budget is charged for.
    size:
        Repeater size in minimum-inverter multiples.
    area:
        Silicon area charged to the repeater budget (``inserted * size *
        min_inverter_area``), in square metres.
    delay:
        Achieved Eq. (3) delay, seconds.
    """

    stages: int
    inserted: int
    size: float
    area: float
    delay: float


def solve_repeaters(
    rc: WireRC,
    device: DeviceParameters,
    length: float,
    target: float,
    size: Optional[float] = None,
    max_stages: Optional[int] = None,
    a: float = SWITCHING_A,
    b: float = SWITCHING_B,
) -> Optional[RepeaterSolution]:
    """Insert the minimal number of repeaters meeting ``target``.

    Returns ``None`` when the wire cannot meet the target on this
    layer-pair at any stage count (budget is *not* considered here — the
    assignment engines own the budget).
    """
    if size is None:
        size = optimal_repeater_size(rc, device)
    stages = min_stages_for_target(
        rc, device, length, target, size=size, max_stages=max_stages, a=a, b=b
    )
    if stages is None:
        return None
    inserted = stages - 1
    return RepeaterSolution(
        stages=stages,
        inserted=inserted,
        size=size,
        area=inserted * device.repeater_area(size),
        delay=wire_delay(rc, device, size, stages, length, a, b),
    )
