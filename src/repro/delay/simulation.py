"""Golden-model validation: numerical simulation of a repeatered line.

The rank metric consumes delays exclusively through the Otten--Brayton
closed form (Eqs. (2)-(3)).  This module provides an independent
*numerical* golden model — a discretized distributed-RC ladder driven
through ideal-switch stages, integrated exactly via the linear-system
matrix exponential — so tests can check that the closed forms track
physics, not just each other.

Model per stage: a step source behind the stage resistance ``r_o/s``
drives ``segments`` RC sections (each ``r·dx`` series resistance into a
``c·dx`` shunt capacitor), loaded by the next stage's input capacitance
``s·c_o``; the stage delay is the 50% crossing of the load node, plus
the switching charge time of the stage's own parasitic ``s·c_p``
(approximated as ``ln 2 · r_o/s · s·c_p``).  Total wire delay is the
stage delay times the stage count — matching the Eq. (3) topology.

This is intentionally *not* used by any solver: it exists to be slow,
obviously-correct, and independent.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import DelayModelError
from ..rc.models import WireRC
from ..tech.device import DeviceParameters

_LN2 = math.log(2.0)


def _ladder_matrices(
    rc: WireRC,
    drive_resistance: float,
    load_capacitance: float,
    length: float,
    sections: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """State-space matrices of one RC-ladder segment.

    Node voltages v (size ``sections + 1``; the last node carries the
    load capacitance) obey ``C dv/dt = G (u - v_0 direction ...)`` —
    assembled here as ``dv/dt = A v + b`` for a unit step input.
    """
    dx = length / sections
    r_step = rc.resistance * dx
    c_step = rc.capacitance * dx

    n = sections + 1
    # total shunt capacitance = c * length: half-sections at the ends
    caps = np.full(n, c_step)
    caps[0] = c_step / 2.0
    caps[-1] = c_step / 2.0 + load_capacitance
    conductance = np.zeros((n, n))
    # source through drive resistance into node 0
    g_drive = 1.0 / drive_resistance
    conductance[0, 0] += g_drive
    g_wire = 1.0 / r_step
    for i in range(sections):
        conductance[i, i] += g_wire
        conductance[i + 1, i + 1] += g_wire
        conductance[i, i + 1] -= g_wire
        conductance[i + 1, i] -= g_wire

    a_matrix = -conductance / caps[:, None]
    b_vector = np.zeros(n)
    b_vector[0] = g_drive / caps[0]
    return a_matrix, b_vector


def simulate_segment_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    segment_length: float,
    sections: int = 60,
    time_points: int = 4000,
) -> float:
    """50% step-response delay of one stage segment, numerically.

    Integrates the RC ladder with dense time sampling (via ``expm``-free
    eigendecomposition of the symmetric-similar system) and returns the
    first time the far node crosses half the supply, plus the stage's
    own parasitic charging allowance.
    """
    if size <= 0:
        raise DelayModelError(f"repeater size must be positive, got {size!r}")
    if segment_length <= 0:
        raise DelayModelError(
            f"segment length must be positive, got {segment_length!r}"
        )
    if sections < 2:
        raise DelayModelError(f"need at least 2 ladder sections, got {sections!r}")

    drive_resistance = device.output_resistance / size
    load_capacitance = size * device.input_capacitance

    a_matrix, b_vector = _ladder_matrices(
        rc, drive_resistance, load_capacitance, segment_length, sections
    )

    # steady state: v_inf solves A v + b = 0 (all nodes at the supply)
    v_inf = np.linalg.solve(a_matrix, -b_vector)

    # crude horizon from the Elmore constant of the whole segment
    elmore = (
        drive_resistance
        * (rc.capacitance * segment_length + load_capacitance)
        + rc.resistance * segment_length * (
            rc.capacitance * segment_length / 2.0 + load_capacitance
        )
    )
    horizon = 12.0 * elmore

    eigvals, eigvecs = np.linalg.eig(a_matrix)
    coefficients = np.linalg.solve(eigvecs, -v_inf)  # v(0) = 0

    times = np.linspace(0.0, horizon, time_points)
    modes = np.exp(np.outer(times, eigvals))  # (T, n)
    far_node = (modes * (eigvecs[-1, :] * coefficients)).sum(axis=1).real
    far_node += v_inf[-1].real

    half = 0.5 * v_inf[-1].real
    above = np.nonzero(far_node >= half)[0]
    if above.size == 0:
        raise DelayModelError(
            "simulation horizon too short; increase time_points/sections"
        )
    index = above[0]
    if index == 0:
        crossing = 0.0
    else:
        t0, t1 = times[index - 1], times[index]
        v0, v1 = far_node[index - 1], far_node[index]
        crossing = t0 + (half - v0) / (v1 - v0) * (t1 - t0)

    parasitic = _LN2 * drive_resistance * (size * device.parasitic_capacitance)
    return float(crossing + parasitic)


def simulate_wire_delay(
    rc: WireRC,
    device: DeviceParameters,
    size: float,
    stages: int,
    length: float,
    sections: int = 60,
) -> float:
    """Numerical delay of a wire through ``stages`` identical stages."""
    if stages < 1:
        raise DelayModelError(f"stage count must be at least 1, got {stages!r}")
    if length <= 0:
        raise DelayModelError(f"length must be positive, got {length!r}")
    return stages * simulate_segment_delay(
        rc, device, size, length / stages, sections=sections
    )
