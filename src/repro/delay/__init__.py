"""Delay models and repeater insertion.

* :mod:`repro.delay.ottenbrayton` — the paper's Eqs. (2)-(3) wire delay
  (Otten--Brayton planning model, a = 0.4, b = 0.7),
* :mod:`repro.delay.repeater` — optimal repeater sizing (Eq. (4)) and the
  minimal repeater count meeting a target delay (closed-form solution of
  the Eq. (3) quadratic, equivalent to the paper's incremental
  insertion),
* :mod:`repro.delay.elmore` — an independent Elmore-style model used to
  cross-validate trends,
* :mod:`repro.delay.target` — target-delay models: the paper's linear
  ``d_i = (l_i / l_max) / f_c`` plus the quadratic alternative its
  Section 6 flags as future work.
"""

from .elmore import elmore_segment_delay, elmore_wire_delay
from .ottenbrayton import (
    min_delay_stage_count,
    segment_delay,
    unbuffered_delay,
    wire_delay,
)
from .repeater import (
    RepeaterSolution,
    min_stages_for_target,
    min_stages_for_target_batch,
    optimal_repeater_size,
    solve_repeaters,
)
from .target import LinearTargetModel, QuadraticTargetModel, TargetDelayModel

__all__ = [
    "segment_delay",
    "wire_delay",
    "unbuffered_delay",
    "min_delay_stage_count",
    "RepeaterSolution",
    "optimal_repeater_size",
    "min_stages_for_target",
    "min_stages_for_target_batch",
    "solve_repeaters",
    "elmore_segment_delay",
    "elmore_wire_delay",
    "TargetDelayModel",
    "LinearTargetModel",
    "QuadraticTargetModel",
]
