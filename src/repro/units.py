"""Unit helpers.

The library computes internally in SI units: lengths in metres, areas in
square metres, resistance in ohms, capacitance in farads, time in seconds,
frequency in hertz.  Process geometry, however, is naturally quoted in
micrometres and nanometres (as in the paper's Table 3), so this module
provides explicit, grep-able conversion helpers instead of scattering
``1e-6`` literals around the code base.

All helpers validate sign where a negative value would be physically
meaningless and raise :class:`repro.errors.UnitsError`.
"""

from __future__ import annotations

from .errors import UnitsError

#: metres per micrometre
UM = 1.0e-6
#: metres per nanometre
NM = 1.0e-9
#: metres per millimetre
MM = 1.0e-3

#: seconds per picosecond
PS = 1.0e-12
#: seconds per nanosecond
NS = 1.0e-9
#: seconds per microsecond
US = 1.0e-6

#: hertz per megahertz
MHZ = 1.0e6
#: hertz per gigahertz
GHZ = 1.0e9

#: farads per femtofarad
FF = 1.0e-15
#: farads per picofarad
PF = 1.0e-12

# Plain SI scale prefixes, for report formatting of quantities the
# library does not model as first-class dimensions (gate counts in
# millions, power in nanowatts, ...).  Using these instead of bare
# ``1e6`` literals keeps every power-of-ten scaling grep-able, which is
# what the RPL001 lint rule (repro.lintkit) enforces.
NANO = 1.0e-9
MICRO = 1.0e-6
MILLI = 1.0e-3
KILO = 1.0e3
MEGA = 1.0e6
GIGA = 1.0e9
TERA = 1.0e12


def _require_non_negative(value: float, what: str) -> float:
    if value < 0:
        raise UnitsError(f"{what} must be non-negative, got {value!r}")
    return float(value)


def um(value: float) -> float:
    """Convert micrometres to metres (non-negative)."""
    return _require_non_negative(value, "length in um") * UM


def nm(value: float) -> float:
    """Convert nanometres to metres (non-negative)."""
    return _require_non_negative(value, "length in nm") * NM


def to_nm(metres: float) -> float:
    """Convert metres to nanometres."""
    return metres / NM


def mm(value: float) -> float:
    """Convert millimetres to metres (non-negative)."""
    return _require_non_negative(value, "length in mm") * MM


def to_um(metres: float) -> float:
    """Convert metres to micrometres."""
    return metres / UM

def to_mm(metres: float) -> float:
    """Convert metres to millimetres."""
    return metres / MM


def mm2(value: float) -> float:
    """Convert square millimetres to square metres (non-negative)."""
    return _require_non_negative(value, "area in mm^2") * MM * MM


def to_mm2(square_metres: float) -> float:
    """Convert square metres to square millimetres."""
    return square_metres / (MM * MM)


def um2(value: float) -> float:
    """Convert square micrometres to square metres (non-negative)."""
    return _require_non_negative(value, "area in um^2") * UM * UM


def to_um2(square_metres: float) -> float:
    """Convert square metres to square micrometres."""
    return square_metres / (UM * UM)


def ps(value: float) -> float:
    """Convert picoseconds to seconds (non-negative)."""
    return _require_non_negative(value, "time in ps") * PS


def ns(value: float) -> float:
    """Convert nanoseconds to seconds (non-negative)."""
    return _require_non_negative(value, "time in ns") * NS


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds / PS


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NS


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / US


def mhz(value: float) -> float:
    """Convert megahertz to hertz (non-negative)."""
    return _require_non_negative(value, "frequency in MHz") * MHZ


def ghz(value: float) -> float:
    """Convert gigahertz to hertz (non-negative)."""
    return _require_non_negative(value, "frequency in GHz") * GHZ


def to_ghz(hertz: float) -> float:
    """Convert hertz to gigahertz."""
    return hertz / GHZ


def ff(value: float) -> float:
    """Convert femtofarads to farads (non-negative)."""
    return _require_non_negative(value, "capacitance in fF") * FF


def to_ff(farads: float) -> float:
    """Convert farads to femtofarads."""
    return farads / FF
