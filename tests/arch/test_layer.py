"""Tests for LayerPair."""

import pytest

from repro import units
from repro.arch.layer import LayerPair
from repro.errors import ConfigurationError
from repro.rc.models import WireRC
from repro.tech.node import MetalRule, ViaRule


@pytest.fixture
def pair():
    return LayerPair(
        name="semi_global-1",
        tier="semi_global",
        metal=MetalRule(
            min_width=units.um(0.2),
            min_spacing=units.um(0.21),
            thickness=units.um(0.34),
        ),
        via=ViaRule(min_width=units.um(0.26)),
        rc=WireRC(resistance=3e5, capacitance=3e-10),
    )


class TestLayerPair:
    def test_wire_pitch(self, pair):
        assert pair.wire_pitch == pytest.approx(units.um(0.41))

    def test_wire_area(self, pair):
        assert pair.wire_area(units.um(100)) == pytest.approx(
            units.um(100) * units.um(0.41)
        )

    def test_zero_length_wire_area(self, pair):
        assert pair.wire_area(0.0) == 0.0

    def test_negative_length_rejected(self, pair):
        with pytest.raises(ConfigurationError):
            pair.wire_area(-1.0)

    def test_empty_name_rejected(self, pair):
        with pytest.raises(ConfigurationError):
            LayerPair(name="", tier="x", metal=pair.metal, via=pair.via, rc=pair.rc)

    def test_empty_tier_rejected(self, pair):
        with pytest.raises(ConfigurationError):
            LayerPair(name="x", tier="", metal=pair.metal, via=pair.via, rc=pair.rc)

    def test_area_linear_in_length(self, pair):
        assert pair.wire_area(2e-3) == pytest.approx(2 * pair.wire_area(1e-3))
