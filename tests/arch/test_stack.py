"""Tests for InterconnectArchitecture."""

import pytest

from repro.arch.stack import InterconnectArchitecture
from repro.errors import ConfigurationError


class TestStack:
    def test_len_and_num_pairs(self, arch130):
        assert len(arch130) == arch130.num_pairs == 4

    def test_ordering_top_is_global(self, arch130):
        assert arch130.top.tier == "global"
        assert arch130.bottom.tier == "local"

    def test_iteration_order(self, arch130):
        tiers = [p.tier for p in arch130]
        assert tiers == ["global", "semi_global", "semi_global", "local"]

    def test_indexing(self, arch130):
        assert arch130[0] is arch130.top
        assert arch130[-1] is arch130.bottom

    def test_pair_range_check(self, arch130):
        with pytest.raises(ConfigurationError):
            arch130.pair(99)
        with pytest.raises(ConfigurationError):
            arch130.pair(-1)

    def test_pairs_below(self, arch130):
        below = arch130.pairs_below(0)
        assert len(below) == 3
        assert below[0].tier == "semi_global"
        assert arch130.pairs_below(3) == ()

    def test_tier_counts(self, arch130):
        assert arch130.tier_counts() == {
            "global": 1,
            "semi_global": 2,
            "local": 1,
        }

    def test_describe_mentions_all_pairs(self, arch130):
        text = arch130.describe()
        for pair in arch130:
            assert pair.name in text

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectArchitecture(name="empty", pairs=())

    def test_global_pair_has_lowest_resistance(self, arch130):
        """Fat top-tier wires must beat the local tier on r-bar."""
        assert arch130.top.rc.resistance < arch130.bottom.rc.resistance
