"""Tests for the die area model (paper Eq. (6))."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.die import DieModel
from repro.errors import ConfigurationError
from repro.tech.presets import NODE_130NM


@pytest.fixture
def die():
    return DieModel(node=NODE_130NM, gate_count=1_000_000, repeater_fraction=0.4)


class TestAreas:
    def test_gate_area(self, die):
        g = NODE_130NM.gate_pitch
        assert die.gate_area == pytest.approx(g * g * 1_000_000)

    def test_eq6_inflation(self, die):
        """A_d = gate_area / (1 - R) and A_R = R * A_d (Eq. (6))."""
        assert die.die_area == pytest.approx(die.gate_area / 0.6)
        assert die.repeater_area == pytest.approx(0.4 * die.die_area)

    def test_identity_ad_equals_ar_plus_gates(self, die):
        assert die.die_area == pytest.approx(die.repeater_area + die.gate_area)

    def test_zero_fraction(self):
        die = DieModel(node=NODE_130NM, gate_count=1000, repeater_fraction=0.0)
        assert die.die_area == pytest.approx(die.gate_area)
        assert die.repeater_area == 0.0

    def test_130nm_1m_die_in_expected_range(self, die):
        """~4.5 mm^2 for a 1M-gate 130 nm design at R=0.4."""
        assert 3e-6 < die.die_area < 6e-6


class TestGatePitch:
    def test_adjusted_pitch_covers_die(self, die):
        pitch = die.adjusted_gate_pitch
        assert pitch * pitch * die.gate_count == pytest.approx(die.die_area)

    def test_adjusted_exceeds_nominal(self, die):
        assert die.adjusted_gate_pitch > NODE_130NM.gate_pitch

    def test_die_edge(self, die):
        assert die.die_edge == pytest.approx(math.sqrt(die.die_area))

    def test_wire_length_conversion(self, die):
        assert die.wire_length(10.0) == pytest.approx(10 * die.adjusted_gate_pitch)

    def test_wire_length_rejects_negative(self, die):
        with pytest.raises(ConfigurationError):
            die.wire_length(-1.0)


class TestValidation:
    def test_zero_gates_rejected(self):
        with pytest.raises(ConfigurationError):
            DieModel(node=NODE_130NM, gate_count=0, repeater_fraction=0.1)

    def test_fraction_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DieModel(node=NODE_130NM, gate_count=100, repeater_fraction=1.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DieModel(node=NODE_130NM, gate_count=100, repeater_fraction=-0.1)


class TestWithRepeaterFraction:
    def test_returns_new_model(self, die):
        bigger = die.with_repeater_fraction(0.5)
        assert bigger.repeater_fraction == pytest.approx(0.5)
        assert die.repeater_fraction == pytest.approx(0.4)

    def test_more_budget_means_bigger_die(self, die):
        assert die.with_repeater_fraction(0.5).die_area > die.die_area

    @given(fraction=st.floats(min_value=0.0, max_value=0.9))
    def test_eq6_consistency_property(self, fraction):
        die = DieModel(
            node=NODE_130NM, gate_count=10_000, repeater_fraction=fraction
        )
        assert die.die_area == pytest.approx(die.repeater_area + die.gate_area)
        assert die.repeater_area == pytest.approx(fraction * die.die_area)
