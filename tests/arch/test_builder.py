"""Tests for ArchitectureSpec and build_architecture."""

import pytest

from repro.arch.builder import ArchitectureSpec, build_architecture
from repro.errors import ConfigurationError
from repro.rc.capacitance import SakuraiModel


class TestSpecValidation:
    def test_defaults_match_table2(self, node130):
        spec = ArchitectureSpec(node=node130)
        assert spec.local_pairs == 1
        assert spec.semi_global_pairs == 2
        assert spec.global_pairs == 1
        assert spec.miller_factor == pytest.approx(2.0)
        assert spec.permittivity is None

    def test_num_pairs(self, node130):
        spec = ArchitectureSpec(node=node130, local_pairs=2, global_pairs=2)
        assert spec.num_pairs == 6

    def test_zero_pairs_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(
                node=node130, local_pairs=0, semi_global_pairs=0, global_pairs=0
            )

    def test_negative_count_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(node=node130, local_pairs=-1)

    def test_negative_miller_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(node=node130, miller_factor=-1.0)

    def test_sub_vacuum_permittivity_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(node=node130, permittivity=0.5)

    def test_with_miller(self, node130):
        spec = ArchitectureSpec(node=node130).with_miller(1.5)
        assert spec.miller_factor == pytest.approx(1.5)

    def test_with_permittivity(self, node130):
        spec = ArchitectureSpec(node=node130).with_permittivity(2.8)
        assert spec.permittivity == pytest.approx(2.8)


class TestBuild:
    def test_pair_count_and_order(self, node130):
        arch = build_architecture(
            ArchitectureSpec(
                node=node130, local_pairs=2, semi_global_pairs=3, global_pairs=1
            )
        )
        tiers = [p.tier for p in arch]
        assert tiers == ["global"] + ["semi_global"] * 3 + ["local"] * 2

    def test_pairs_share_tier_rc(self, node130):
        arch = build_architecture(ArchitectureSpec(node=node130))
        sg = [p for p in arch if p.tier == "semi_global"]
        assert sg[0].rc == sg[1].rc

    def test_permittivity_scales_capacitance(self, node130):
        base = build_architecture(ArchitectureSpec(node=node130))
        lowk = build_architecture(ArchitectureSpec(node=node130, permittivity=1.95))
        for pair_base, pair_lowk in zip(base, lowk):
            assert pair_lowk.rc.capacitance == pytest.approx(
                pair_base.rc.capacitance / 2, rel=1e-9
            )
            assert pair_lowk.rc.resistance == pytest.approx(pair_base.rc.resistance)

    def test_miller_reduces_capacitance_only(self, node130):
        worst = build_architecture(ArchitectureSpec(node=node130, miller_factor=2.0))
        shielded = build_architecture(
            ArchitectureSpec(node=node130, miller_factor=1.0)
        )
        for pw, ps in zip(worst, shielded):
            assert ps.rc.capacitance < pw.rc.capacitance
            assert ps.rc.resistance == pytest.approx(pw.rc.resistance)

    def test_custom_capacitance_model(self, node130):
        arch = build_architecture(
            ArchitectureSpec(node=node130, capacitance_model=SakuraiModel())
        )
        default = build_architecture(ArchitectureSpec(node=node130))
        assert arch.top.rc.capacitance != pytest.approx(default.top.rc.capacitance)

    def test_name_encodes_configuration(self, node130):
        arch = build_architecture(
            ArchitectureSpec(node=node130, permittivity=2.5, miller_factor=1.5)
        )
        assert "130nm" in arch.name
        assert "k=2.5" in arch.name
        assert "M=1.5" in arch.name

    def test_via_rules_assigned_per_tier(self, node130):
        arch = build_architecture(ArchitectureSpec(node=node130))
        assert arch.top.via == node130.via("global")
        assert arch.bottom.via == node130.via("local")
