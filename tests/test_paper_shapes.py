"""Integration tests: the paper's qualitative results on a scaled design.

Full 1M-gate Table 4 regeneration lives in ``benchmarks/``; here the
same claims are checked on a 200k-gate 130 nm design so the test suite
stays fast.  What must hold (the paper's "shapes"):

* rank improves as ILD permittivity K decreases (Table 4, K),
* rank improves as the Miller factor M decreases (Table 4, M),
* rank degrades, with plateau structure, as the clock rises (Table 4, C),
* rank grows steadily with the repeater budget R (Table 4, R),
* equal rank levels need comparable relative K and M reductions (the
  abstract's equivalence headline),
* greedy assignment is suboptimal (Figure 2) — covered in
  ``tests/core/test_greedy_solver.py``.
"""

import pytest

from repro.analysis.sensitivity import miller_permittivity_equivalence
from repro.analysis.sweep import (
    sweep_clock,
    sweep_miller,
    sweep_permittivity,
    sweep_repeater_fraction,
)
from repro.core.rank import compute_rank
from repro.core.scenarios import baseline_problem

FAST = dict(bunch_size=2000, repeater_units=256)


@pytest.fixture(scope="module")
def design():
    return baseline_problem("130nm", 200_000)


@pytest.fixture(scope="module")
def k_sweep(design):
    return sweep_permittivity(design, values=[3.9, 3.4, 2.9, 2.4, 1.9], **FAST)


@pytest.fixture(scope="module")
def m_sweep(design):
    return sweep_miller(design, values=[2.0, 1.75, 1.5, 1.25, 1.0], **FAST)


class TestBaseline:
    def test_baseline_rank_in_paper_regime(self, design):
        """Normalized rank at Table 2 parameters lands in the paper's
        0.3-0.55 window (paper: 0.397)."""
        result = compute_rank(design, **FAST)
        assert result.fits
        assert 0.30 < result.normalized < 0.55


class TestKColumn:
    def test_monotone_improvement(self, k_sweep):
        assert k_sweep.is_monotone()

    def test_improvement_magnitude(self, k_sweep):
        """Paper: k 3.9 -> 1.9 lifts rank by ~41%; ours must land in the
        same few-tens-of-percent band."""
        assert 0.2 < k_sweep.improvement() < 0.7


class TestMColumn:
    def test_monotone_improvement(self, m_sweep):
        assert m_sweep.is_monotone()

    def test_improvement_magnitude(self, m_sweep):
        """Paper: M 2.0 -> 1.0 lifts rank by ~39%."""
        assert 0.15 < m_sweep.improvement() < 0.7


class TestCColumn:
    def test_monotone_degradation(self, design):
        sweep = sweep_clock(
            design, values=[5e8, 8e8, 1.1e9, 1.4e9, 1.7e9], **FAST
        )
        assert sweep.is_monotone(non_increasing=True)

    def test_wall_plateaus(self, design):
        """Once a length class becomes infeasible the rank pins to the
        class boundary: high-frequency points repeat exactly."""
        sweep = sweep_clock(design, values=[1.2e9, 1.3e9, 1.4e9], **FAST)
        ranks = sweep.normalized_ranks()
        assert ranks[0] == pytest.approx(ranks[1]) == pytest.approx(ranks[2])


class TestRColumn:
    def test_monotone_growth(self, design):
        sweep = sweep_repeater_fraction(design, **FAST)
        assert sweep.is_monotone()

    def test_budget_binding(self, design):
        """Quadrupling the budget should raise rank substantially (the
        paper's R column nearly quadruples from R=0.1 to R=0.4)."""
        sweep = sweep_repeater_fraction(design, values=[0.1, 0.4], **FAST)
        low, high = sweep.normalized_ranks()
        assert high > 2.0 * low


class TestEquivalenceHeadline:
    def test_k_and_m_reductions_comparable(self, k_sweep, m_sweep):
        """The abstract's claim, reproduced: lifting rank to a common
        level takes K and M reductions within ~40% of each other."""
        points = miller_permittivity_equivalence(k_sweep, m_sweep, num_levels=5)
        ratios = [p.ratio for p in points if p.ratio is not None]
        assert ratios
        for ratio in ratios:
            assert 0.6 < ratio < 1.6


class TestQuadraticTargetAblation:
    def test_quadratic_targets_collapse_short_wire_rank(self, design):
        """Section 6's alternative: with ``d_i = (l_i/l_max)^2 / f_c``
        the short-wire bulk gets targets quadratically below the linear
        model's, so the rank must drop sharply — quantifying why the
        paper calls the choice of per-connection requirement an open
        modelling question."""
        linear = compute_rank(design, **FAST)
        quadratic = compute_rank(design.with_target_kind("quadratic"), **FAST)
        assert quadratic.fits
        assert 0 < quadratic.rank < 0.5 * linear.rank

    def test_quadratic_equals_linear_for_longest_wire(self, design):
        """Both models grant the longest wire one clock period, so the
        very top of the ranking survives either way."""
        quadratic = compute_rank(design.with_target_kind("quadratic"), **FAST)
        assert quadratic.rank > 0
