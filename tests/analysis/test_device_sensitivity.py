"""Device-constant sensitivity: the DESIGN.md §5 robustness claim.

The paper does not print its minimum-inverter constants; ours are
calibrated.  The reproduction's validity therefore rests on the Table 4
*shapes* being stable under perturbation of those constants.  These
tests perturb r_o and c_o by ±20% and assert the shape conclusions
survive:

* K and M sweeps stay monotone increasing with tens-of-percent total
  improvement;
* the R sweep stays strongly monotone increasing;
* the C sweep keeps its plateau structure (plateau *values* are WLD
  CDF shares, so they cannot move; only the onset frequency may shift).
"""

import dataclasses

import pytest

from repro import (
    ArchitectureSpec,
    DieModel,
    RankProblem,
    build_architecture,
    compute_rank,
)
from repro.analysis.sweep import run_sweep
from repro.wld.davis import DavisParameters, davis_wld

FAST = dict(bunch_size=2000, repeater_units=128)


def perturbed_problem(node130, r_o_scale=1.0, c_o_scale=1.0):
    device = dataclasses.replace(
        node130.device,
        output_resistance=node130.device.output_resistance * r_o_scale,
        input_capacitance=node130.device.input_capacitance * c_o_scale,
    )
    node = node130.with_device(device)
    return RankProblem(
        arch=build_architecture(ArchitectureSpec(node=node)),
        die=DieModel(node=node, gate_count=100_000, repeater_fraction=0.4),
        wld=davis_wld(DavisParameters(gate_count=100_000)),
        clock_frequency=5e8,
    )


PERTURBATIONS = [(0.8, 1.0), (1.2, 1.0), (1.0, 0.8), (1.0, 1.2)]


@pytest.mark.parametrize("r_scale,c_scale", PERTURBATIONS)
class TestShapeStability:
    def test_k_sweep_shape_survives(self, node130, r_scale, c_scale):
        problem = perturbed_problem(node130, r_scale, c_scale)

        def make(k):
            spec = ArchitectureSpec(node=problem.die.node, permittivity=k)
            return problem.with_arch(build_architecture(spec))

        sweep = run_sweep("K", [3.9, 3.0, 2.2], make, **FAST)
        assert sweep.is_monotone()
        assert 0.1 < sweep.improvement() < 1.0

    def test_r_sweep_shape_survives(self, node130, r_scale, c_scale):
        problem = perturbed_problem(node130, r_scale, c_scale)
        sweep = run_sweep(
            "R",
            [0.1, 0.3, 0.5],
            lambda r: problem.with_repeater_fraction(r),
            **FAST,
        )
        assert sweep.is_monotone()
        low, high = sweep.normalized_ranks()[0], sweep.normalized_ranks()[-1]
        assert high > 2.0 * low

    def test_c_sweep_keeps_plateau_values(self, node130, r_scale, c_scale):
        """Plateau ranks are WLD CDF shares — device-independent; at a
        frequency safely on the l>=3 wall for every perturbation, the
        rank must land exactly on the share."""
        problem = perturbed_problem(node130, r_scale, c_scale)
        # probe a frequency deep in the wall regime for every
        # perturbation; the binding length class differs per device,
        # but the rank must sit exactly on *some* length-class edge of
        # the WLD (the structural signature behind the paper's
        # plateaus).
        walled = compute_rank(problem.with_clock_frequency(8.0e9), **FAST)
        wld = problem.wld
        n = wld.total_wires
        shares = {0, n}
        cumulative = n
        for length, count in sorted(wld, key=lambda item: item[0]):
            cumulative -= count
            shares.add(cumulative)
        assert walled.rank in shares
