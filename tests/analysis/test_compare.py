"""Tests for cross-node comparison (E7)."""

import pytest

from repro.analysis.compare import PAPER_BASELINE_DESIGNS, compare_nodes


class TestCompareNodes:
    def test_paper_designs_registered(self):
        assert PAPER_BASELINE_DESIGNS == (
            ("180nm", 1_000_000),
            ("130nm", 1_000_000),
            ("90nm", 4_000_000),
        )

    def test_small_designs(self):
        baselines = compare_nodes(
            designs=[("180nm", 50_000), ("130nm", 50_000)],
            bunch_size=2000,
            repeater_units=128,
        )
        assert len(baselines) == 2
        assert baselines[0].node_name == "180nm"
        assert all(b.result.fits for b in baselines)

    def test_newer_node_at_least_as_good(self):
        """Same design on a faster node should not lose rank."""
        baselines = compare_nodes(
            designs=[("180nm", 50_000), ("130nm", 50_000), ("90nm", 50_000)],
            bunch_size=2000,
            repeater_units=128,
        )
        ranks = [b.normalized for b in baselines]
        assert ranks[0] <= ranks[1] <= ranks[2] + 1e-9

    def test_overrides_forwarded(self):
        tight = compare_nodes(
            designs=[("130nm", 50_000)],
            bunch_size=2000,
            repeater_units=128,
            clock_frequency=2.0e9,
        )
        loose = compare_nodes(
            designs=[("130nm", 50_000)],
            bunch_size=2000,
            repeater_units=128,
            clock_frequency=3.0e8,
        )
        assert tight[0].normalized <= loose[0].normalized

    def test_greedy_solver_option(self):
        baselines = compare_nodes(
            designs=[("130nm", 50_000)],
            solver="greedy",
            bunch_size=2000,
        )
        assert baselines[0].result.solver == "greedy"
