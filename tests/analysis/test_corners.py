"""Tests for multi-corner rank evaluation."""

import pytest

from repro.analysis.corners import (
    STANDARD_CORNERS,
    Corner,
    apply_corner,
    rank_across_corners,
)
from repro.errors import RankComputationError

FAST = dict(bunch_size=2000, repeater_units=128)


@pytest.fixture(scope="module")
def report(small_baseline):
    return rank_across_corners(small_baseline, **FAST)


class TestCornerValidation:
    def test_standard_set_has_nominal(self):
        assert any(c.name == "nominal" for c in STANDARD_CORNERS)

    def test_invalid_scales_rejected(self):
        with pytest.raises(RankComputationError):
            Corner(name="bad", device_speed=0.0)
        with pytest.raises(RankComputationError):
            Corner(name="bad", clock_scale=-1.0)
        with pytest.raises(RankComputationError):
            Corner(name="bad", miller_factor=-0.5)


class TestApplyCorner:
    def test_nominal_is_identity_rank(self, small_baseline):
        from repro.core.rank import compute_rank

        nominal = apply_corner(small_baseline, Corner(name="nominal"))
        assert compute_rank(nominal, **FAST).rank == compute_rank(
            small_baseline, **FAST
        ).rank

    def test_device_speed_applied(self, small_baseline):
        variant = apply_corner(
            small_baseline, Corner(name="slow", device_speed=1.25)
        )
        assert variant.die.node.device.output_resistance == pytest.approx(
            1.25 * small_baseline.die.node.device.output_resistance
        )

    def test_clock_scale_applied(self, small_baseline):
        variant = apply_corner(
            small_baseline, Corner(name="fast-clock", clock_scale=1.1)
        )
        assert variant.clock_frequency == pytest.approx(
            1.1 * small_baseline.clock_frequency
        )

    def test_permittivity_clamped(self, small_baseline):
        variant = apply_corner(
            small_baseline,
            Corner(name="vacuum?", permittivity_scale=0.01),
        )
        assert "k=1" in variant.arch.name


class TestCornerReport:
    def test_all_corners_evaluated(self, report):
        assert len(report.results) == len(STANDARD_CORNERS)

    def test_worst_is_minimum(self, report):
        ranks = [result.rank for _, result in report.results]
        assert report.worst[1].rank == min(ranks)

    def test_nominal_found(self, report):
        corner, _ = report.nominal
        assert corner.name == "nominal"

    def test_guardband_non_negative(self, report):
        assert report.guardband >= 0.0

    def test_slow_device_degrades(self, report):
        by_name = {corner.name: result for corner, result in report.results}
        assert by_name["slow-device"].rank <= by_name["nominal"].rank

    def test_fast_device_helps(self, report):
        by_name = {corner.name: result for corner, result in report.results}
        assert by_name["fast-device"].rank >= by_name["nominal"].rank

    def test_empty_corners_rejected(self, small_baseline):
        with pytest.raises(RankComputationError):
            rank_across_corners(small_baseline, corners=())
