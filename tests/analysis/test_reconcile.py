"""Tests for repeater-area reconciliation (footnote 3 extension)."""

import pytest

from repro.analysis.reconcile import reconcile_repeater_area
from repro.core.scenarios import baseline_problem
from repro.errors import RankComputationError

FAST = dict(bunch_size=2000, repeater_units=256)


@pytest.fixture(scope="module")
def outcome():
    problem = baseline_problem("130nm", 100_000)
    return reconcile_repeater_area(problem, **FAST)


class TestReconciliation:
    def test_first_step_is_unreconciled_baseline(self, outcome):
        assert outcome.initial.repeater_fraction == pytest.approx(0.4)

    def test_usage_below_provision(self, outcome):
        for step in outcome.steps:
            assert step.used_area <= step.provisioned_area * (1 + 1e-9)
            assert 0.0 <= step.utilized <= 1.0 + 1e-9

    def test_rank_never_degrades(self, outcome):
        """Right-sizing shrinks the die, shortening every wire: the
        reconciled rank must be at least the unreconciled one."""
        assert outcome.final.result.rank >= outcome.initial.result.rank

    def test_budget_shrinks_when_underused(self, outcome):
        if outcome.initial.utilized < 0.9:
            assert (
                outcome.final.provisioned_area < outcome.initial.provisioned_area
            )
            assert outcome.die_area_saved > 0

    def test_converges(self, outcome):
        assert outcome.converged
        assert len(outcome.steps) <= 8

    def test_final_provision_tracks_usage(self, outcome):
        final = outcome.final
        if final.used_area > 0:
            assert final.provisioned_area <= 1.35 * final.used_area * 1.05


class TestValidation:
    def test_bad_slack(self):
        problem = baseline_problem("130nm", 50_000)
        with pytest.raises(RankComputationError):
            reconcile_repeater_area(problem, slack=-0.1)

    def test_bad_tolerance(self):
        problem = baseline_problem("130nm", 50_000)
        with pytest.raises(RankComputationError):
            reconcile_repeater_area(problem, tolerance=0.0)

    def test_bad_iterations(self):
        problem = baseline_problem("130nm", 50_000)
        with pytest.raises(RankComputationError):
            reconcile_repeater_area(problem, max_iterations=0)
