"""Tests for the coarsening study (E8, paper Section 5.1)."""

import pytest

from repro.analysis.coarsening import (
    coarsening_study,
    max_pairwise_deviation,
)
from repro.errors import RankComputationError


class TestCoarseningStudy:
    def test_points_structure(self, small_baseline):
        points = coarsening_study(
            small_baseline, bunch_sizes=[5000, 1000], repeater_units=128
        )
        assert len(points) == 2
        assert points[0].bunch_size == 5000
        assert points[0].error_bound <= 5000
        assert points[0].runtime_seconds > 0

    def test_error_bound_holds(self, small_baseline):
        """Observed deviation between coarsenings is within the sum of
        the paper's per-run bunching bounds."""
        points = coarsening_study(
            small_baseline, bunch_sizes=[10_000, 2000, 500], repeater_units=256
        )
        ranks = [p.result.rank for p in points]
        bounds = [p.error_bound for p in points]
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                assert abs(ranks[i] - ranks[j]) <= bounds[i] + bounds[j]

    def test_max_pairwise_deviation(self, small_baseline):
        points = coarsening_study(
            small_baseline, bunch_sizes=[5000, 1000], repeater_units=128
        )
        ranks = [p.result.rank for p in points]
        assert max_pairwise_deviation(points) == max(ranks) - min(ranks)

    def test_empty_sizes_rejected(self, small_baseline):
        with pytest.raises(RankComputationError):
            coarsening_study(small_baseline, bunch_sizes=[])

    def test_deviation_empty(self):
        assert max_pairwise_deviation([]) == 0
