"""Tests for timing-slack profiles."""

import pytest

from repro.analysis.slack import slack_profile, summarize_slack
from repro.core.rank import compute_rank
from repro.errors import RankComputationError

FAST = dict(bunch_size=2000, repeater_units=256)


@pytest.fixture(scope="module")
def profiled(small_baseline):
    result = compute_rank(small_baseline, collect_witness=True, **FAST)
    tables, _ = small_baseline.tables(bunch_size=2000)
    return tables, result, slack_profile(tables, result)


class TestProfile:
    def test_covers_certified_groups(self, profiled):
        tables, result, profile = profiled
        assert sum(g.wires for g in profile) == result.rank

    def test_all_slacks_non_negative(self, profiled):
        """Every certified group genuinely meets its target."""
        _, _, profile = profiled
        for group in profile:
            assert group.slack >= -1e-15

    def test_rank_order(self, profiled):
        _, _, profile = profiled
        indices = [g.group for g in profile]
        assert indices == sorted(indices)

    def test_minimality_of_stage_counts(self, profiled):
        """One fewer stage would miss the target (where stages > 1)."""
        from repro.delay.ottenbrayton import wire_delay

        tables, _, profile = profiled
        device = tables.die.node.device
        checked = 0
        for group in profile:
            if group.stages > 1:
                rc = tables.arch.pair(group.pair).rc
                size = float(tables.repeater_size[group.pair])
                length = float(tables.lengths_m[group.group])
                fewer = wire_delay(rc, device, size, group.stages - 1, length)
                assert fewer > group.target
                checked += 1
                if checked > 20:
                    break

    def test_requires_witness(self, small_baseline):
        result = compute_rank(small_baseline, **FAST)
        tables, _ = small_baseline.tables(bunch_size=2000)
        with pytest.raises(RankComputationError, match="witness"):
            slack_profile(tables, result)


class TestSummary:
    def test_fields(self, profiled):
        _, _, profile = profiled
        summary = summarize_slack(profile)
        assert summary.min_slack >= -1e-15
        assert summary.critical_length > 0
        assert 0.0 <= summary.median_relative_slack <= 1.0

    def test_boundary_diagnoses_binding_constraint(self, profiled):
        """The baseline is budget-bound: the boundary group still has
        real slack (the wall is further down)."""
        _, _, profile = profiled
        summary = summarize_slack(profile)
        assert summary.boundary_relative_slack > 0.01

    def test_wall_bound_case(self, small_baseline):
        """On the wall, the boundary group's slack pins toward zero.
        The wall frequency scales with l_max: at 100k gates (l_max ~347
        pitches) the l=2 class dies near 5 GHz, not the 1M-gate design's
        1.1 GHz — frequencies here are chosen for this design size."""
        fast_clock = small_baseline.with_clock_frequency(4.5e9)
        result = compute_rank(fast_clock, collect_witness=True, **FAST)
        tables, _ = fast_clock.tables(bunch_size=2000)
        profile = slack_profile(tables, result)
        summary = summarize_slack(profile)
        assert summary.boundary_relative_slack < 0.35

    def test_empty_profile_rejected(self):
        with pytest.raises(RankComputationError):
            summarize_slack([])
