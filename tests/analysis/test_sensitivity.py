"""Tests for knob-equivalence analysis (the E5 headline machinery)."""

import pytest

from repro.analysis.sensitivity import (
    EquivalencePoint,
    _interpolate_value_at_rank,
    equivalent_reduction,
    miller_permittivity_equivalence,
)
from repro.analysis.sweep import SweepPoint, SweepResult
from repro.core.dp import SolverStats
from repro.core.rank import RankResult
from repro.errors import RankComputationError


def fake_sweep(name, pairs):
    """Build a SweepResult from (value, normalized) pairs."""
    points = []
    for value, normalized in pairs:
        result = RankResult(
            rank=int(normalized * 1000),
            normalized=normalized,
            total_wires=1000,
            fits=True,
            error_bound=0,
            solver="dp",
            stats=SolverStats(),
        )
        points.append(SweepPoint(value=value, result=result))
    return SweepResult(name=name, points=tuple(points))


class TestInterpolation:
    def test_exact_point(self):
        assert _interpolate_value_at_rank(
            [3.9, 3.0, 2.0], [0.4, 0.45, 0.55], 0.45
        ) == pytest.approx(3.0)

    def test_midpoint(self):
        assert _interpolate_value_at_rank(
            [4.0, 2.0], [0.4, 0.6], 0.5
        ) == pytest.approx(3.0)

    def test_out_of_range(self):
        assert _interpolate_value_at_rank([4.0, 2.0], [0.4, 0.6], 0.7) is None

    def test_too_few_points_rejected(self):
        with pytest.raises(RankComputationError):
            _interpolate_value_at_rank([1.0], [0.5], 0.5)

    def test_flat_segment(self):
        assert _interpolate_value_at_rank(
            [4.0, 3.0], [0.5, 0.5], 0.5
        ) == pytest.approx(3.0)


class TestEquivalentReduction:
    def test_paper_shaped_example(self):
        """K from 3.9 with rank rising linearly: reaching the mid level
        requires the mid reduction."""
        sweep = fake_sweep("K", [(3.9, 0.40), (2.9, 0.45), (1.9, 0.50)])
        reduction = equivalent_reduction(sweep, 0.45)
        assert reduction == pytest.approx((3.9 - 2.9) / 3.9)

    def test_out_of_range_none(self):
        sweep = fake_sweep("K", [(3.9, 0.40), (2.9, 0.45)])
        assert equivalent_reduction(sweep, 0.9) is None


class TestEquivalencePoints:
    def test_ratio(self):
        point = EquivalencePoint(rank_level=0.5, reduction_a=0.38, reduction_b=0.42)
        assert point.ratio == pytest.approx(0.42 / 0.38)

    def test_ratio_undefined(self):
        assert EquivalencePoint(0.5, None, 0.42).ratio is None
        assert EquivalencePoint(0.5, 0.38, None).ratio is None
        assert EquivalencePoint(0.5, 0.0, 0.42).ratio is None

    def test_paper_headline_on_paper_data(self):
        """Run the machinery on the paper's own Table 4 columns.

        Precise piecewise-linear inversion of the paper's data shows the
        two knobs are ~1:1 equivalent — at rank 0.50 the K reduction is
        38.5% and the M reduction 38.4%.  The abstract's "42% M ~ 38% K"
        pairs nearby *grid points* (K=2.4 at 0.5016 vs M=1.15 at 0.5184)
        rather than equal rank levels; our reproduction reports the
        precise equivalence (see EXPERIMENTS.md, E5).
        """
        from repro.analysis.sweep import PAPER_TABLE4_K, PAPER_TABLE4_M

        k_sweep = fake_sweep("K", PAPER_TABLE4_K)
        m_sweep = fake_sweep("M", PAPER_TABLE4_M)
        points = miller_permittivity_equivalence(k_sweep, m_sweep, num_levels=6)
        mid = min(points, key=lambda p: abs(p.rank_level - 0.50))
        assert mid.reduction_a == pytest.approx(0.385, abs=0.02)
        assert mid.reduction_b == pytest.approx(0.384, abs=0.02)
        assert mid.ratio == pytest.approx(1.0, abs=0.05)

    def test_levels_span_baseline_to_min_max(self):
        k_sweep = fake_sweep("K", [(3.9, 0.40), (1.9, 0.60)])
        m_sweep = fake_sweep("M", [(2.0, 0.40), (1.0, 0.50)])
        points = miller_permittivity_equivalence(k_sweep, m_sweep, num_levels=4)
        assert len(points) == 4
        assert points[-1].rank_level == pytest.approx(0.50)

    def test_no_improvement_rejected(self):
        flat = fake_sweep("K", [(3.9, 0.4), (1.9, 0.4)])
        with pytest.raises(RankComputationError):
            miller_permittivity_equivalence(flat, flat)

    def test_invalid_levels_rejected(self):
        k_sweep = fake_sweep("K", [(3.9, 0.4), (1.9, 0.6)])
        with pytest.raises(RankComputationError):
            miller_permittivity_equivalence(k_sweep, k_sweep, num_levels=0)


class TestEndToEnd:
    def test_small_design_equivalence(self, small_baseline):
        """On the 100k-gate design the K and M reductions for equal rank
        stay within a factor ~2 of each other (coupling dominates)."""
        from repro.analysis.sweep import sweep_miller, sweep_permittivity

        fast = dict(bunch_size=2000, repeater_units=128)
        k_sweep = sweep_permittivity(
            small_baseline, values=[3.9, 3.3, 2.7, 2.1], **fast
        )
        m_sweep = sweep_miller(
            small_baseline, values=[2.0, 1.7, 1.4, 1.1], **fast
        )
        points = miller_permittivity_equivalence(k_sweep, m_sweep, num_levels=4)
        ratios = [p.ratio for p in points if p.ratio is not None]
        assert ratios, "no overlapping rank levels"
        for ratio in ratios:
            assert 0.5 < ratio < 2.0
