"""Tests for the sweep engine and the Table 4 sweep builders.

Full-scale 1M-gate sweeps live in benchmarks; these tests run the same
code on a 100k-gate design with a handful of points.
"""

import pytest

from repro.analysis.sweep import (
    PAPER_TABLE4_C,
    PAPER_TABLE4_K,
    PAPER_TABLE4_M,
    PAPER_TABLE4_R,
    SweepResult,
    run_sweep,
    sweep_clock,
    sweep_miller,
    sweep_permittivity,
    sweep_repeater_fraction,
)
from repro.errors import RankComputationError

FAST = dict(bunch_size=2000, repeater_units=128)


class TestPaperData:
    def test_k_column_complete(self):
        assert len(PAPER_TABLE4_K) == 22
        assert PAPER_TABLE4_K[0] == (3.90, 0.397288)
        assert PAPER_TABLE4_K[-1] == (1.80, 0.575947)

    def test_m_column_complete(self):
        assert len(PAPER_TABLE4_M) == 21
        assert PAPER_TABLE4_M[-1] == (1.00, 0.553830)

    def test_c_column_plateaus(self):
        values = dict(PAPER_TABLE4_C)
        assert values[1.1e9] == values[1.5e9] == 0.309706
        assert values[1.6e9] == values[1.7e9] == 0.235608

    def test_r_column_linear(self):
        """The paper's R column is linear in R to ~1e-3."""
        ranks = [rank for _, rank in PAPER_TABLE4_R]
        increments = [b - a for a, b in zip(ranks, ranks[1:])]
        assert max(increments) - min(increments) < 3e-3


class TestRunSweep:
    def test_generic_engine(self, small_baseline):
        sweep = run_sweep(
            "R",
            [0.2, 0.4],
            lambda r: small_baseline.with_repeater_fraction(r),
            paper=dict(PAPER_TABLE4_R),
            **FAST,
        )
        assert sweep.name == "R"
        assert len(sweep.points) == 2
        assert sweep.points[0].paper_normalized == pytest.approx(0.210967)
        assert sweep.values() == [0.2, 0.4]

    def test_improvement(self, small_baseline):
        sweep = run_sweep(
            "R",
            [0.2, 0.4],
            lambda r: small_baseline.with_repeater_fraction(r),
            **FAST,
        )
        expected = (
            sweep.points[-1].normalized - sweep.points[0].normalized
        ) / sweep.points[0].normalized
        assert sweep.improvement() == pytest.approx(expected)

    def test_improvement_zero_baseline_rejected(self):
        from repro.core.dp import SolverStats
        from repro.core.rank import RankResult
        from repro.analysis.sweep import SweepPoint

        zero = RankResult(
            rank=0, normalized=0.0, total_wires=10, fits=True,
            error_bound=0, solver="dp", stats=SolverStats(),
        )
        sweep = SweepResult(
            name="X",
            points=(SweepPoint(1.0, zero), SweepPoint(2.0, zero)),
        )
        with pytest.raises(RankComputationError):
            sweep.improvement()


class TestTable4Sweeps:
    def test_k_sweep_monotone_increasing(self, small_baseline):
        sweep = sweep_permittivity(small_baseline, values=[3.9, 3.0, 2.2], **FAST)
        assert sweep.is_monotone()
        assert sweep.points[0].paper_normalized == pytest.approx(0.397288)

    def test_m_sweep_monotone_increasing(self, small_baseline):
        sweep = sweep_miller(small_baseline, values=[2.0, 1.5, 1.0], **FAST)
        assert sweep.is_monotone()

    def test_c_sweep_monotone_decreasing(self, small_baseline):
        sweep = sweep_clock(small_baseline, values=[5e8, 1.1e9, 1.7e9], **FAST)
        assert sweep.is_monotone(non_increasing=True)

    def test_r_sweep_monotone_increasing(self, small_baseline):
        sweep = sweep_repeater_fraction(
            small_baseline, values=[0.1, 0.3, 0.5], **FAST
        )
        assert sweep.is_monotone()

    def test_default_values_match_paper_grid(self, small_baseline):
        sweep = sweep_repeater_fraction(small_baseline, **FAST)
        assert sweep.values() == [r for r, _ in PAPER_TABLE4_R]

    def test_k_and_m_coincide_at_baseline(self, small_baseline):
        """Both sweeps start from the identical Table 2 baseline."""
        k = sweep_permittivity(small_baseline, values=[3.9], **FAST)
        m = sweep_miller(small_baseline, values=[2.0], **FAST)
        assert k.points[0].normalized == pytest.approx(m.points[0].normalized)
