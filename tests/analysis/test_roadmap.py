"""Tests for the scaling-roadmap study (E18)."""

import pytest

from repro.analysis.roadmap import (
    DEFAULT_GENERATIONS,
    materials_shortfall,
    roadmap_study,
)
from repro.errors import RankComputationError

FAST = dict(bunch_size=2000, repeater_units=256)


@pytest.fixture(scope="module")
def roadmaps():
    return roadmap_study(100_000, **FAST)


class TestRoadmapStructure:
    def test_default_generations(self):
        assert DEFAULT_GENERATIONS[0] == ("180nm", 1)
        assert DEFAULT_GENERATIONS[-1] == ("90nm", 4)

    def test_lengths_match(self, roadmaps):
        materials_only, full_scaling = roadmaps
        assert len(materials_only) == len(full_scaling) == 3

    def test_materials_only_stays_on_start_node(self, roadmaps):
        materials_only, _ = roadmaps
        assert all(p.node_name == "180nm" for p in materials_only)
        assert all(p.materials == "best" for p in materials_only)

    def test_full_scaling_follows_nodes(self, roadmaps):
        _, full_scaling = roadmaps
        assert [p.node_name for p in full_scaling] == ["180nm", "130nm", "90nm"]

    def test_gate_counts_double(self, roadmaps):
        materials_only, _ = roadmaps
        assert [p.gate_count for p in materials_only] == [
            100_000, 200_000, 400_000,
        ]


class TestPaperClaim:
    def test_materials_boost_is_one_shot(self, roadmaps):
        """Generation 0: best materials beat the baseline node hands
        down (the low-k + shielding boost is real)."""
        materials_only, full_scaling = roadmaps
        assert (
            materials_only[0].result.normalized
            > full_scaling[0].result.normalized
        )

    def test_materials_only_decays_with_design_growth(self, roadmaps):
        materials_only, _ = roadmaps
        assert (
            materials_only[-1].result.normalized
            < materials_only[0].result.normalized
        )

    def test_scaling_overtakes(self, roadmaps):
        """The paper's closing claim: by the last generation, node
        scaling at plain materials beats frozen-node best materials."""
        materials_only, full_scaling = roadmaps
        assert materials_shortfall(materials_only, full_scaling) > 0

    def test_scaling_trajectory_improves(self, roadmaps):
        _, full_scaling = roadmaps
        ranks = [p.result.normalized for p in full_scaling]
        assert ranks[-1] > ranks[0]


class TestValidation:
    def test_empty_generations_rejected(self):
        with pytest.raises(RankComputationError):
            roadmap_study(100_000, generations=())

    def test_tiny_gate_count_rejected(self):
        with pytest.raises(RankComputationError):
            roadmap_study(2)

    def test_empty_shortfall_rejected(self):
        with pytest.raises(RankComputationError):
            materials_shortfall([], [])
