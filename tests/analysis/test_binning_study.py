"""Tests for the binning study (paper footnote 7)."""

import pytest

from repro.analysis.coarsening import binning_study
from repro.errors import RankComputationError

FAST = dict(bunch_size=2000, repeater_units=128)


@pytest.fixture(scope="module")
def study(small_baseline):
    return binning_study(
        small_baseline, max_groups_values=(None, 100, 40), **FAST
    )


class TestBinningStudy:
    def test_group_counts_shrink(self, study):
        groups = [p.groups for p in study]
        assert groups == sorted(groups, reverse=True)

    def test_caps_respected(self, study):
        for point in study:
            if point.max_groups is not None:
                # bunching can split bins again, so compare against the
                # binned-then-bunched count loosely: the distinct
                # lengths (bins) are capped, group rows may exceed it
                assert point.groups > 0

    def test_rank_drift_bounded(self, study):
        """Footnote 7's promise: binning is a usable reduction — the
        rank drift across aggressive binning stays within a few
        bunching quanta."""
        ranks = [p.result.rank for p in study]
        bound = 3 * 2000  # three bunching quanta at this study's size
        assert max(ranks) - min(ranks) <= bound

    def test_all_fit(self, study):
        assert all(p.result.fits for p in study)

    def test_empty_levels_rejected(self, small_baseline):
        with pytest.raises(RankComputationError):
            binning_study(small_baseline, max_groups_values=())
