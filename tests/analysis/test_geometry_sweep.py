"""Tests for the geometric-parameter sweep (E17)."""

import pytest

from repro.analysis.sweep import sweep_tier_geometry
from repro.arch.builder import ArchitectureSpec, build_architecture
from repro.errors import ConfigurationError

FAST = dict(bunch_size=2000, repeater_units=128)


class TestTierScalingSpec:
    def test_scaling_applied_to_rules(self, node130):
        spec = ArchitectureSpec(node=node130).with_tier_scaling("global", 2.0)
        arch = build_architecture(spec)
        base = build_architecture(ArchitectureSpec(node=node130))
        assert arch.top.metal.min_width == pytest.approx(
            2 * base.top.metal.min_width
        )
        assert arch.top.metal.thickness == pytest.approx(
            2 * base.top.metal.thickness
        )
        # other tiers untouched
        assert arch.bottom.metal.min_width == pytest.approx(
            base.bottom.metal.min_width
        )

    def test_scaling_cuts_resistance_quadratically(self, node130):
        spec = ArchitectureSpec(node=node130).with_tier_scaling("global", 2.0)
        arch = build_architecture(spec)
        base = build_architecture(ArchitectureSpec(node=node130))
        assert arch.top.rc.resistance == pytest.approx(
            base.top.rc.resistance / 4, rel=1e-9
        )

    def test_capacitance_per_length_scale_invariant(self, node130):
        """Uniform scaling preserves all aspect ratios, so c-bar per
        unit length is unchanged — the fat-wire benefit is purely
        resistive."""
        spec = ArchitectureSpec(node=node130).with_tier_scaling("global", 2.0)
        arch = build_architecture(spec)
        base = build_architecture(ArchitectureSpec(node=node130))
        assert arch.top.rc.capacitance == pytest.approx(
            base.top.rc.capacitance, rel=1e-9
        )

    def test_replacing_existing_scale(self, node130):
        spec = (
            ArchitectureSpec(node=node130)
            .with_tier_scaling("global", 2.0)
            .with_tier_scaling("global", 3.0)
        )
        assert spec.scale_for("global") == pytest.approx(3.0)
        assert len(spec.tier_scaling) == 1

    def test_unscaled_default(self, node130):
        assert ArchitectureSpec(node=node130).scale_for("local") == 1.0

    def test_unknown_tier_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(node=node130, tier_scaling=(("m9", 2.0),))

    def test_non_positive_factor_rejected(self, node130):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(node=node130, tier_scaling=(("global", 0.0),))


class TestGeometrySweep:
    def test_sweep_runs(self, small_baseline):
        sweep = sweep_tier_geometry(
            small_baseline, tier="semi_global", values=(0.75, 1.0, 1.5), **FAST
        )
        assert sweep.name == "geometry:semi_global"
        assert len(sweep.points) == 3
        assert all(p.result.fits for p in sweep.points)

    def test_unit_scale_matches_baseline(self, small_baseline):
        from repro.core.rank import compute_rank

        sweep = sweep_tier_geometry(
            small_baseline, tier="global", values=(1.0,), **FAST
        )
        base = compute_rank(small_baseline, **FAST)
        assert sweep.points[0].result.rank == base.rank

    def test_budget_bound_regime_prefers_finer_semi_global(self, small_baseline):
        """In the calibrated (budget-bound) regime, shrinking the
        semi-global tier cheapens its repeaters and raises rank."""
        sweep = sweep_tier_geometry(
            small_baseline, tier="semi_global", values=(0.75, 1.0), **FAST
        )
        fine, base = sweep.normalized_ranks()
        assert fine >= base
