"""Tests for assignment usage reports."""

import pytest

from repro.core.rank import compute_rank
from repro.errors import RankComputationError
from repro.reporting.witness import assignment_usage, format_assignment_report


@pytest.fixture(scope="module")
def solved(small_baseline):
    result = compute_rank(
        small_baseline, bunch_size=2000, repeater_units=128, collect_witness=True
    )
    tables, _ = small_baseline.tables(bunch_size=2000)
    return tables, result


class TestAssignmentUsage:
    def test_covers_every_wire(self, solved):
        tables, result = solved
        usage = assignment_usage(tables, result)
        total = sum(u.prefix_wires + u.suffix_wires for u in usage)
        assert total == tables.total_wires

    def test_prefix_total_equals_rank(self, solved):
        tables, result = solved
        usage = assignment_usage(tables, result)
        assert sum(u.prefix_wires for u in usage) == result.rank

    def test_one_row_per_pair_in_order(self, solved):
        tables, result = solved
        usage = assignment_usage(tables, result)
        assert [u.pair for u in usage] == list(range(tables.num_pairs))
        assert usage[0].name == tables.arch.top.name

    def test_utilization_bounded(self, solved):
        tables, result = solved
        for u in assignment_usage(tables, result):
            assert 0.0 <= u.utilization <= 1.0 + 1e-6

    def test_area_within_capacity(self, solved):
        tables, result = solved
        for u in assignment_usage(tables, result):
            assert u.area_used <= u.capacity * (1 + 1e-9)

    def test_requires_witness(self, small_baseline):
        result = compute_rank(small_baseline, bunch_size=2000, repeater_units=128)
        tables, _ = small_baseline.tables(bunch_size=2000)
        with pytest.raises(RankComputationError, match="witness"):
            assignment_usage(tables, result)


class TestFormattedReport:
    def test_mentions_every_pair(self, solved):
        tables, result = solved
        text = format_assignment_report(tables, result)
        for pair in tables.arch:
            assert pair.name in text

    def test_title_contains_rank(self, solved):
        tables, result = solved
        assert f"{result.rank:,}" in format_assignment_report(tables, result)
