"""Tests for the text table renderer."""

import pytest

from repro.reporting.text import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "bb" in lines[3]

    def test_title(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["label", "num"], [["a", 1], ["long-label", 12345]])
        lines = text.splitlines()
        # first column left-aligned, second right-aligned
        assert lines[2].startswith("a ")
        assert lines[2].rstrip().endswith("1")

    def test_width_adapts_to_content(self):
        text = format_table(["h"], [["wide-content-here"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("wide-content-here")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2
