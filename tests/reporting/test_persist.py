"""Tests for experiment persistence."""

import json

import pytest

from repro.core.rank import compute_rank
from repro.errors import ReproError
from repro.reporting.persist import (
    load_rank_result,
    load_sweep,
    save_rank_result,
    save_sweep,
)


@pytest.fixture
def result(tiny_problem):
    return compute_rank(tiny_problem, collect_witness=True)


class TestRankResultRoundTrip:
    def test_full_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        loaded = load_rank_result(path)
        assert loaded.rank == result.rank
        assert loaded.normalized == pytest.approx(result.normalized)
        assert loaded.fits == result.fits
        assert loaded.solver == result.solver
        assert loaded.stats.runtime_seconds == pytest.approx(
            result.stats.runtime_seconds
        )

    def test_witness_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        loaded = load_rank_result(path)
        if result.witness is None:
            assert loaded.witness is None
        else:
            assert loaded.witness == result.witness

    def test_no_witness(self, tiny_problem, tmp_path):
        bare = compute_rank(tiny_problem)
        path = tmp_path / "bare.json"
        save_rank_result(bare, path)
        assert load_rank_result(path).witness is None

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ReproError, match="not a rank-result"):
            load_rank_result(path)

    def test_wrong_version_rejected(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="version"):
            load_rank_result(path)

    def test_missing_field_rejected(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        payload = json.loads(path.read_text())
        del payload["result"]["rank"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="malformed"):
            load_rank_result(path)


class TestSweepRoundTrip:
    def test_round_trip(self, small_baseline, tmp_path):
        from repro.analysis.sweep import sweep_repeater_fraction

        sweep = sweep_repeater_fraction(
            small_baseline, values=[0.2, 0.4], bunch_size=2000, repeater_units=64
        )
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.name == sweep.name
        assert loaded.values() == sweep.values()
        assert loaded.normalized_ranks() == pytest.approx(
            sweep.normalized_ranks()
        )
        assert loaded.paper_ranks() == sweep.paper_ranks()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"format": "nope", "version": 1}))
        with pytest.raises(ReproError, match="not a sweep"):
            load_sweep(path)


class TestAtomicWrites:
    """All persistence goes through write_json_atomic: temp file plus
    os.replace, so a crash mid-write never corrupts an existing file."""

    def test_no_tmp_file_left_behind(self, result, tmp_path):
        import os

        from repro.reporting.persist import write_json_atomic

        save_rank_result(result, tmp_path / "result.json")
        write_json_atomic({"k": 1}, tmp_path / "raw.json")
        assert sorted(os.listdir(tmp_path)) == ["raw.json", "result.json"]

    def test_failed_write_preserves_existing_file(self, tmp_path):
        from repro.reporting.persist import write_json_atomic

        path = tmp_path / "data.json"
        write_json_atomic({"generation": 1}, path)
        with pytest.raises(TypeError):
            write_json_atomic({"bad": object()}, path)  # not JSON-serializable
        # Original content survives, and no temp file is left behind.
        assert json.loads(path.read_text()) == {"generation": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_read_versioned_json_validates(self, tmp_path):
        from repro.reporting.persist import (
            FORMAT_VERSION,
            read_versioned_json,
            write_json_atomic,
        )

        path = tmp_path / "data.json"
        with pytest.raises(ReproError):
            read_versioned_json(path, "repro.rank_result")  # missing file
        path.write_text("{nope")
        with pytest.raises(ReproError):
            read_versioned_json(path, "repro.rank_result")  # invalid JSON
        path.write_text("[1, 2]")
        with pytest.raises(ReproError):
            read_versioned_json(path, "repro.rank_result")  # not an object
        write_json_atomic(
            {"format": "repro.rank_result", "version": FORMAT_VERSION + 1},
            path,
        )
        with pytest.raises(ReproError, match="version"):
            read_versioned_json(path, "repro.rank_result")

    def test_sweep_failures_round_trip(self, small_baseline, tmp_path):
        import repro.analysis.sweep as sweep_mod
        from repro.analysis.sweep import run_sweep
        from repro.errors import RankComputationError

        real = sweep_mod.compute_rank
        state = {"calls": 0}

        def flaky(problem, **kwargs):
            state["calls"] += 1
            if state["calls"] == 2:
                raise RankComputationError("injected")
            return real(problem, **kwargs)

        sweep_mod.compute_rank = flaky
        try:
            sweep = run_sweep(
                "R",
                [0.2, 0.3, 0.4],
                small_baseline.with_repeater_fraction,
                keep_going=True,
                bunch_size=2000,
                repeater_units=128,
            )
        finally:
            sweep_mod.compute_rank = real
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.values() == sweep.values()
        assert len(loaded.failures) == 1
        assert loaded.failures[0].key == sweep.failures[0].key
        assert loaded.failures[0].error_type == "RankComputationError"
