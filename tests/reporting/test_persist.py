"""Tests for experiment persistence."""

import json

import pytest

from repro.core.rank import compute_rank
from repro.errors import ReproError
from repro.reporting.persist import (
    load_rank_result,
    load_sweep,
    save_rank_result,
    save_sweep,
)


@pytest.fixture
def result(tiny_problem):
    return compute_rank(tiny_problem, collect_witness=True)


class TestRankResultRoundTrip:
    def test_full_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        loaded = load_rank_result(path)
        assert loaded.rank == result.rank
        assert loaded.normalized == pytest.approx(result.normalized)
        assert loaded.fits == result.fits
        assert loaded.solver == result.solver
        assert loaded.stats.runtime_seconds == pytest.approx(
            result.stats.runtime_seconds
        )

    def test_witness_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        loaded = load_rank_result(path)
        if result.witness is None:
            assert loaded.witness is None
        else:
            assert loaded.witness == result.witness

    def test_no_witness(self, tiny_problem, tmp_path):
        bare = compute_rank(tiny_problem)
        path = tmp_path / "bare.json"
        save_rank_result(bare, path)
        assert load_rank_result(path).witness is None

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ReproError, match="not a rank-result"):
            load_rank_result(path)

    def test_wrong_version_rejected(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="version"):
            load_rank_result(path)

    def test_missing_field_rejected(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_rank_result(result, path)
        payload = json.loads(path.read_text())
        del payload["result"]["rank"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="malformed"):
            load_rank_result(path)


class TestSweepRoundTrip:
    def test_round_trip(self, small_baseline, tmp_path):
        from repro.analysis.sweep import sweep_repeater_fraction

        sweep = sweep_repeater_fraction(
            small_baseline, values=[0.2, 0.4], bunch_size=2000, repeater_units=64
        )
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.name == sweep.name
        assert loaded.values() == sweep.values()
        assert loaded.normalized_ranks() == pytest.approx(
            sweep.normalized_ranks()
        )
        assert loaded.paper_ranks() == sweep.paper_ranks()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"format": "nope", "version": 1}))
        with pytest.raises(ReproError, match="not a sweep"):
            load_sweep(path)
