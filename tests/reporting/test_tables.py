"""Tests for paper-shaped report tables."""

import pytest

from repro.analysis.compare import NodeBaseline
from repro.analysis.sensitivity import EquivalencePoint
from repro.analysis.sweep import SweepPoint, SweepResult
from repro.core.dp import SolverStats
from repro.core.rank import RankResult
from repro.reporting.tables import (
    format_equivalence_table,
    format_node_table,
    format_sweep_table,
    sweep_to_csv,
)


def make_result(rank=400, total=1000, fits=True):
    return RankResult(
        rank=rank,
        normalized=rank / total,
        total_wires=total,
        fits=fits,
        error_bound=10,
        solver="dp",
        stats=SolverStats(solver="dp"),
    )


@pytest.fixture
def sweep():
    return SweepResult(
        name="K",
        points=(
            SweepPoint(value=3.9, result=make_result(397), paper_normalized=0.397288),
            SweepPoint(value=1.8, result=make_result(575), paper_normalized=0.575947),
        ),
    )


class TestSweepTable:
    def test_contains_knob_values_and_ranks(self, sweep):
        text = format_sweep_table(sweep)
        assert "3.90" in text
        assert "0.397000" in text
        assert "0.397288" in text

    def test_default_title(self, sweep):
        assert "Table 4, column K" in format_sweep_table(sweep)

    def test_custom_title(self, sweep):
        assert format_sweep_table(sweep, title="X").startswith("X")

    def test_missing_paper_value_dash(self):
        sweep = SweepResult(
            name="R", points=(SweepPoint(value=0.25, result=make_result()),)
        )
        assert "-" in format_sweep_table(sweep)

    def test_scientific_formatting_for_frequency(self):
        sweep = SweepResult(
            name="C", points=(SweepPoint(value=5e8, result=make_result()),)
        )
        assert "5.00e+08" in format_sweep_table(sweep)


class TestEquivalenceTable:
    def test_rows(self):
        points = [
            EquivalencePoint(0.45, 0.20, 0.21),
            EquivalencePoint(0.50, 0.38, None),
        ]
        text = format_equivalence_table(points)
        assert "20.0%" in text
        assert "21.0%" in text
        assert "38.0%" in text
        assert "-" in text  # the None reduction

    def test_ratio_column(self):
        text = format_equivalence_table([EquivalencePoint(0.5, 0.4, 0.4)])
        assert "1.000" in text


class TestNodeTable:
    def test_rows(self):
        baselines = [
            NodeBaseline("130nm", 1_000_000, make_result()),
            NodeBaseline("90nm", 4_000_000, make_result(fits=False)),
        ]
        text = format_node_table(baselines)
        assert "130nm/1M" in text
        assert "90nm/4M" in text
        assert "NO" in text


class TestCSV:
    def test_csv_round_trippable(self, sweep):
        import csv
        import io

        text = sweep_to_csv(sweep)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["K", "normalized_rank_repro", "normalized_rank_paper"]
        assert float(rows[1][0]) == pytest.approx(3.9)
        assert float(rows[1][1]) == pytest.approx(0.397)
