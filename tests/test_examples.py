"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; breaking one silently is a
release bug.  Each runs in-process at reduced design size.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, name, argv):
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(monkeypatch, capsys):
    run_example(monkeypatch, "quickstart.py", ["--gates", "50000"])
    out = capsys.readouterr().out
    assert "Rank" in out
    assert "Winning prefix" in out


def test_table4_sweeps(monkeypatch, capsys):
    run_example(
        monkeypatch,
        "table4_sweeps.py",
        ["--gates", "50000", "--columns", "R", "--bunch", "2000"],
    )
    out = capsys.readouterr().out
    assert "Table 4, column R" in out
    assert "improvement" in out


def test_material_vs_geometry(monkeypatch, capsys):
    run_example(
        monkeypatch,
        "material_vs_geometry.py",
        ["--gates", "50000", "--bunch", "2000"],
    )
    out = capsys.readouterr().out
    assert "Equivalent reductions" in out


def test_greedy_counterexample(monkeypatch, capsys):
    run_example(monkeypatch, "greedy_counterexample.py", [])
    out = capsys.readouterr().out
    assert "rank 4" in out


def test_technology_scaling(monkeypatch, capsys):
    run_example(monkeypatch, "technology_scaling.py", ["--quick"])
    out = capsys.readouterr().out
    assert "180nm" in out and "90nm" in out


def test_coarsening_tradeoff(monkeypatch, capsys):
    run_example(monkeypatch, "coarsening_tradeoff.py", ["--gates", "50000"])
    out = capsys.readouterr().out
    assert "Bunching trade-off" in out


def test_custom_architecture(monkeypatch, capsys):
    run_example(monkeypatch, "custom_architecture.py", ["--gates", "50000"])
    out = capsys.readouterr().out
    assert "Candidate 130 nm stacks" in out


def test_netlist_driven_rank(monkeypatch, capsys):
    run_example(
        monkeypatch,
        "netlist_driven_rank.py",
        ["--gates", "20000", "--nets", "2000"],
    )
    out = capsys.readouterr().out
    assert "netlist (star)" in out
    assert "Davis closed form" in out


def test_beol_cooptimization(monkeypatch, capsys):
    run_example(monkeypatch, "beol_cooptimization.py", ["--gates", "50000"])
    out = capsys.readouterr().out
    assert "Pareto frontier" in out
    assert "reconciliation" in out.lower()
    assert "Switching power" in out
