"""Tests for the ia-rank command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rank_defaults(self):
        args = build_parser().parse_args(["rank"])
        assert args.node == "130nm"
        assert args.gates == 1_000_000
        assert args.solver == "dp"

    def test_sweep_knob_choices(self):
        args = build_parser().parse_args(["sweep", "K"])
        assert args.knob == "K"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "Z"])


class TestCommands:
    def test_rank_command(self, capsys):
        code = main(
            ["rank", "--gates", "50000", "--bunch", "2000", "--units", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "normalized" in out

    def test_rank_greedy_solver(self, capsys):
        code = main(
            ["rank", "--gates", "50000", "--bunch", "2000", "--solver", "greedy"]
        )
        assert code == 0
        assert "greedy" in capsys.readouterr().out

    def test_wld_command_summary(self, capsys):
        code = main(["wld", "--gates", "10000"])
        assert code == 0
        assert "wires" in capsys.readouterr().out

    def test_wld_command_csv(self, tmp_path, capsys):
        out_file = tmp_path / "wld.csv"
        code = main(["wld", "--gates", "10000", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        from repro.wld.io import load_wld_csv

        wld = load_wld_csv(out_file)
        assert wld.total_wires > 0

    def test_sweep_command_csv(self, capsys):
        code = main(
            [
                "sweep", "R",
                "--gates", "50000",
                "--bunch", "2000",
                "--units", "64",
                "--csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("R,normalized_rank_repro")
        assert len(out.strip().splitlines()) == 6  # header + 5 R points

    def test_error_reported_as_exit_code(self, capsys):
        code = main(["rank", "--node", "65nm"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_corners_command(self, capsys):
        code = main(
            ["corners", "--gates", "20000", "--bunch", "2000", "--units", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Rank across corners" in out
        assert "sign-off rank" in out

    def test_report_command(self, capsys):
        code = main(
            ["report", "--gates", "20000", "--bunch", "2000", "--units", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Assignment for rank" in out
        assert "timing:" in out

    def test_node_file_option(self, tmp_path, capsys):
        from repro.tech.io import save_node
        from repro.tech.presets import NODE_130NM

        path = tmp_path / "node.json"
        save_node(NODE_130NM, path)
        code = main(
            [
                "rank",
                "--node-file", str(path),
                "--gates", "20000",
                "--bunch", "2000",
                "--units", "64",
            ]
        )
        assert code == 0
        assert "rank" in capsys.readouterr().out

    def test_node_file_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        code = main(["rank", "--node-file", str(path)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_curve_command(self, capsys):
        code = main(
            [
                "curve",
                "--gates", "20000",
                "--bunch", "2000",
                "--units", "32",
                "--points", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Budget-rank curve" in out

    def test_optimize_command(self, capsys):
        code = main(
            [
                "optimize",
                "--gates", "50000",
                "--bunch", "2000",
                "--units", "64",
                "--k-classes", "3.9,2.8",
                "--m-classes", "2.0",
                "--max-layers", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto" in out
        assert "best:" in out
