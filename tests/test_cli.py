"""Tests for the ia-rank command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rank_defaults(self):
        args = build_parser().parse_args(["rank"])
        assert args.node == "130nm"
        assert args.gates == 1_000_000
        assert args.solver == "dp"

    def test_sweep_knob_choices(self):
        args = build_parser().parse_args(["sweep", "K"])
        assert args.knob == "K"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "Z"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8421
        assert args.workers == 1
        assert args.executor_mode == "auto"
        assert args.no_warm is False

    def test_serve_executor_mode_choices(self):
        args = build_parser().parse_args(["serve", "--executor-mode", "thread"])
        assert args.executor_mode == "thread"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor-mode", "fibers"])


class TestCommands:
    def test_rank_command(self, capsys):
        code = main(
            ["rank", "--gates", "50000", "--bunch", "2000", "--units", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "normalized" in out

    def test_rank_greedy_solver(self, capsys):
        code = main(
            ["rank", "--gates", "50000", "--bunch", "2000", "--solver", "greedy"]
        )
        assert code == 0
        assert "greedy" in capsys.readouterr().out

    def test_wld_command_summary(self, capsys):
        code = main(["wld", "--gates", "10000"])
        assert code == 0
        assert "wires" in capsys.readouterr().out

    def test_wld_command_csv(self, tmp_path, capsys):
        out_file = tmp_path / "wld.csv"
        code = main(["wld", "--gates", "10000", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        from repro.wld.io import load_wld_csv

        wld = load_wld_csv(out_file)
        assert wld.total_wires > 0

    def test_sweep_command_csv(self, capsys):
        code = main(
            [
                "sweep", "R",
                "--gates", "50000",
                "--bunch", "2000",
                "--units", "64",
                "--csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("R,normalized_rank_repro")
        assert len(out.strip().splitlines()) == 6  # header + 5 R points

    def test_sweep_jobs_output_identical(self, capsys):
        argv = ["sweep", "R", "--gates", "50000", "--bunch", "2000",
                "--units", "64", "--csv"]
        outputs = []
        for jobs in ("1", "2"):
            assert main(argv + ["--jobs", jobs]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_jobs_rejects_negative(self, capsys):
        code = main(
            ["sweep", "R", "--gates", "50000", "--bunch", "2000",
             "--units", "64", "--jobs", "-1"]
        )
        assert code == 1
        assert "jobs" in capsys.readouterr().err

    def test_error_reported_as_exit_code(self, capsys):
        code = main(["rank", "--node", "65nm"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_corners_command(self, capsys):
        code = main(
            ["corners", "--gates", "20000", "--bunch", "2000", "--units", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Rank across corners" in out
        assert "sign-off rank" in out

    def test_report_command(self, capsys):
        code = main(
            ["report", "--gates", "20000", "--bunch", "2000", "--units", "64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Assignment for rank" in out
        assert "timing:" in out

    def test_node_file_option(self, tmp_path, capsys):
        from repro.tech.io import save_node
        from repro.tech.presets import NODE_130NM

        path = tmp_path / "node.json"
        save_node(NODE_130NM, path)
        code = main(
            [
                "rank",
                "--node-file", str(path),
                "--gates", "20000",
                "--bunch", "2000",
                "--units", "64",
            ]
        )
        assert code == 0
        assert "rank" in capsys.readouterr().out

    def test_node_file_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        code = main(["rank", "--node-file", str(path)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_curve_command(self, capsys):
        code = main(
            [
                "curve",
                "--gates", "20000",
                "--bunch", "2000",
                "--units", "32",
                "--points", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Budget-rank curve" in out

    def test_optimize_command(self, capsys):
        code = main(
            [
                "optimize",
                "--gates", "50000",
                "--bunch", "2000",
                "--units", "64",
                "--k-classes", "3.9,2.8",
                "--m-classes", "2.0",
                "--max-layers", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto" in out
        assert "best:" in out


class TestExitCodes:
    """The documented exit-code contract: 0 clean, 1 total failure or
    library error, 2 usage error, 3 partial failure under --keep-going."""

    FAST = ["--gates", "20000", "--bunch", "2000", "--units", "64"]

    def _fail_points(self, monkeypatch, indices):
        """Patch the sweep engine's compute_rank to fail chosen calls."""
        import repro.analysis.sweep as sweep_mod

        real = sweep_mod.compute_rank
        state = {"calls": 0}

        def flaky(problem, **kwargs):
            index = state["calls"]
            state["calls"] += 1
            if indices is None or index in indices:
                from repro.errors import RankComputationError

                raise RankComputationError(f"injected (call {index})")
            return real(problem, **kwargs)

        monkeypatch.setattr(sweep_mod, "compute_rank", flaky)

    def test_clean_run_exits_zero(self, capsys):
        assert main(["sweep", "R", *self.FAST]) == 0

    def test_usage_error_exits_two(self, capsys):
        assert main(["sweep", "Z"]) == 2
        assert main(["no-such-command"]) == 2

    def test_library_error_exits_one(self, capsys):
        assert main(["rank", "--node", "65nm"]) == 1

    def test_total_failure_exits_one(self, monkeypatch, capsys):
        self._fail_points(monkeypatch, None)  # every point fails
        code = main(["sweep", "R", "--keep-going", *self.FAST])
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_partial_failure_exits_three(self, monkeypatch, capsys):
        self._fail_points(monkeypatch, {1})
        code = main(["sweep", "R", "--keep-going", *self.FAST])
        assert code == 3
        err = capsys.readouterr().err
        assert "RankComputationError" in err
        assert "injected" in err

    def test_strict_mode_failure_exits_one(self, monkeypatch, capsys):
        self._fail_points(monkeypatch, {1})
        code = main(["sweep", "R", *self.FAST])
        assert code == 1

    def test_resume_completes_partial_sweep(
        self, monkeypatch, tmp_path, capsys
    ):
        path = tmp_path / "ck.json"
        self._fail_points(monkeypatch, {1})
        assert main(
            ["sweep", "R", "--keep-going", "--checkpoint", str(path),
             *self.FAST]
        ) == 3
        monkeypatch.undo()
        capsys.readouterr()
        assert main(["sweep", "R", "--resume", str(path), *self.FAST]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) >= 5

    def test_max_retries_recovers_transient_failure(
        self, monkeypatch, capsys
    ):
        self._fail_points(monkeypatch, {1})  # attempt-level: only 1st try fails
        code = main(["sweep", "R", "--max-retries", "1", *self.FAST])
        assert code == 0


class TestNodeFileDiagnostics:
    """Malformed --node-file input exits 1 with a one-line diagnostic
    naming the offending field — never a traceback."""

    def _write(self, tmp_path, mutate):
        import json

        from repro.tech.io import node_to_dict
        from repro.tech.presets import NODE_130NM

        payload = json.loads(json.dumps(node_to_dict(NODE_130NM)))
        mutate(payload)
        path = tmp_path / "node.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_negative_field_names_field_and_range(self, tmp_path, capsys):
        def mutate(p):
            p["metal_rules"]["global"]["min_width"] = -1

        code = main(["rank", "--node-file", self._write(tmp_path, mutate)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # a single diagnostic line
        assert "metal_rules.global.min_width" in err
        assert "> 0" in err

    def test_missing_field_named(self, tmp_path, capsys):
        def mutate(p):
            del p["device"]["output_resistance"]

        code = main(["rank", "--node-file", self._write(tmp_path, mutate)])
        assert code == 1
        assert "device.output_resistance" in capsys.readouterr().err

    def test_non_numeric_field_named(self, tmp_path, capsys):
        def mutate(p):
            p["feature_size"] = "130nm"

        code = main(["rank", "--node-file", self._write(tmp_path, mutate)])
        assert code == 1
        err = capsys.readouterr().err
        assert "feature_size" in err
        assert "expected a number" in err

    def test_missing_file_errors_cleanly(self, tmp_path, capsys):
        code = main(["rank", "--node-file", str(tmp_path / "absent.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestFaultSchedule:
    """--fault-schedule arms deterministic chaos on any runner command."""

    FAST = ["--gates", "20000", "--bunch", "2000", "--units", "64"]

    def test_flag_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "R", "--fault-schedule", "[]"]
        )
        assert args.fault_schedule == "[]"

    def test_malformed_schedule_exits_one(self, capsys):
        code = main(
            ["sweep", "R", *self.FAST, "--fault-schedule", "[{bad"]
        )
        assert code == 1
        assert "fault schedule" in capsys.readouterr().err

    def test_injected_raise_recovered_by_retry(self, capsys):
        clean_argv = ["sweep", "R", *self.FAST, "--csv"]
        assert main(clean_argv) == 0
        clean = capsys.readouterr().out
        schedule = (
            '[{"site": "executor.attempt.start", "kind": "raise",'
            ' "attempt": 0}]'
        )
        code = main(
            clean_argv + ["--max-retries", "1", "--fault-schedule", schedule]
        )
        assert code == 0
        assert capsys.readouterr().out == clean

    def test_injected_raise_without_retry_fails(self, capsys):
        schedule = (
            '[{"site": "executor.attempt.start", "kind": "raise",'
            ' "attempt": 0}]'
        )
        code = main(
            ["sweep", "R", *self.FAST, "--fault-schedule", schedule]
        )
        assert code == 1
        assert "InjectedFault" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_sweep", interrupted)
        # set_defaults captured the original; re-dispatch through a
        # parser built after the patch.
        code = main(["sweep", "R", *self.FAST])
        assert code == 130
        assert "resumable" in capsys.readouterr().err
