"""Smoke test for the machine-readable benchmark harness.

Runs ``tools/bench_to_json.py`` at a tiny size exactly as CI's
benchmark job does and validates the emitted schema — the contract
downstream tooling (and the CI divergence gate) relies on.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_bench_emits_valid_report(tmp_path):
    out = tmp_path / "BENCH_rank.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "bench_to_json.py"),
            "--gates", "50000",
            "--bunch", "2000",
            "--units", "64",
            "--sweep", "R",
            "--points", "2",
            "--jobs", "2",
            "--out", str(out),
            "--kernel-repeats", "1",
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["format"] == "repro.bench"
    assert report["batch"]["identical"] is True
    assert report["batch"]["points"] == 2
    assert report["batch"]["sequential"]["points_per_s"] > 0
    assert report["batch"]["parallel"]["points_per_s"] > 0
    assert report["solver_stats"]["rank"] > 0
    assert set(report["stages"]) == {
        "davis_wld_s", "coarsen_s", "tables_s", "solve_dp_s"
    }
    assert report["machine"]["cpu_count"] >= 1
    # Kernel section: both DP backends ran, agreed on the rank (bench()
    # raises otherwise), and reported positive timings.
    kernel = report["kernel"]
    assert set(kernel["backends"]) == {"python", "numpy"}
    assert (
        kernel["backends"]["python"]["rank"]
        == kernel["backends"]["numpy"]["rank"]
    )
    assert kernel["backends"]["numpy"]["solve_s"] > 0
    assert kernel["speedup_numpy_over_python"] > 0
    # Sequential run reuses the warmed coarse WLD on every point.
    seq_cache = report["precompute_cache"]["sequential"]
    assert seq_cache["hits"]["coarsened"] == 2
