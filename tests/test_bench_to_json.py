"""Smoke test for the machine-readable benchmark harness.

Runs ``tools/bench_to_json.py`` at a tiny size exactly as CI's
benchmark job does and validates the emitted schema — the contract
downstream tooling (and the CI divergence gate) relies on.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _run_bench(out, extra=()):
    return subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "bench_to_json.py"),
            "--gates", "50000",
            "--bunch", "2000",
            "--units", "64",
            "--sweep", "R",
            "--points", "2",
            "--jobs", "2",
            "--out", str(out),
            "--kernel-repeats", "1",
            *extra,
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_bench_emits_valid_report(tmp_path):
    out = tmp_path / "BENCH_rank.json"
    proc = _run_bench(out)
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["format"] == "repro.bench"
    assert report["version"] >= 4
    assert report["batch"]["identical"] is True
    assert report["batch"]["points"] == 2
    assert report["batch"]["sequential"]["points_per_s"] > 0
    assert report["batch"]["parallel"]["points_per_s"] > 0
    assert report["batch"]["parallel"]["pool_mode"] == "auto"
    assert report["config"]["pool_mode"] == "auto"
    assert report["config"]["chunk_size"] is None
    assert report["solver_stats"]["rank"] > 0
    assert set(report["stages"]) == {
        "davis_wld_s", "coarsen_s", "tables_s", "solve_dp_s"
    }
    assert report["machine"]["cpu_count"] >= 1
    # Both CPU views recorded: the affinity mask is what bounds real
    # parallelism on cgroup-limited runners.
    assert 1 <= report["machine"]["cpu_affinity"]
    # Kernel section: both DP backends ran, agreed on the rank (bench()
    # raises otherwise), and reported positive timings.
    kernel = report["kernel"]
    assert set(kernel["backends"]) == {"python", "numpy"}
    assert (
        kernel["backends"]["python"]["rank"]
        == kernel["backends"]["numpy"]["rank"]
    )
    assert kernel["backends"]["numpy"]["solve_s"] > 0
    assert kernel["speedup_numpy_over_python"] > 0
    # Sequential run reuses the warmed coarse WLD on every point.
    seq_cache = report["precompute_cache"]["sequential"]
    assert seq_cache["hits"]["coarsened"] == 2


def test_bench_warm_pool_still_identical(tmp_path):
    # --pool-mode warm forces the real shared-memory pool even on a
    # single-CPU runner; the divergence gate must still pass.
    out = tmp_path / "BENCH_warm.json"
    proc = _run_bench(
        out, extra=("--pool-mode", "warm", "--chunk-size", "1")
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["batch"]["identical"] is True
    assert report["batch"]["parallel"]["pool_mode"] == "warm"
    assert report["batch"]["parallel"]["chunk_size"] == 1
