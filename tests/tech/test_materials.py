"""Tests for conductor and dielectric materials."""

import pytest

from repro.constants import EPS0
from repro.errors import ConfigurationError
from repro.tech.materials import (
    ALUMINIUM,
    COPPER,
    LOW_K_28,
    LOW_K_36,
    SIO2,
    Conductor,
    Dielectric,
)


class TestConductor:
    def test_copper_resistivity_in_range(self):
        assert 1.6e-8 <= COPPER.resistivity <= 3.0e-8

    def test_aluminium_is_worse_than_copper(self):
        assert ALUMINIUM.resistivity > COPPER.resistivity

    def test_sheet_resistance(self):
        conductor = Conductor(name="test", resistivity=2.0e-8)
        assert conductor.sheet_resistance(1e-6) == pytest.approx(0.02)

    def test_sheet_resistance_scales_inversely_with_thickness(self):
        thin = COPPER.sheet_resistance(0.2e-6)
        thick = COPPER.sheet_resistance(0.4e-6)
        assert thin == pytest.approx(2 * thick)

    def test_zero_resistivity_rejected(self):
        with pytest.raises(ConfigurationError):
            Conductor(name="bad", resistivity=0.0)

    def test_negative_resistivity_rejected(self):
        with pytest.raises(ConfigurationError):
            Conductor(name="bad", resistivity=-1e-8)

    def test_zero_thickness_rejected(self):
        with pytest.raises(ConfigurationError):
            COPPER.sheet_resistance(0.0)


class TestDielectric:
    def test_sio2_permittivity(self):
        assert SIO2.relative_permittivity == pytest.approx(3.9)

    def test_absolute_permittivity(self):
        assert SIO2.permittivity == pytest.approx(3.9 * EPS0)

    def test_low_k_ordering(self):
        assert (
            LOW_K_28.relative_permittivity
            < LOW_K_36.relative_permittivity
            < SIO2.relative_permittivity
        )

    def test_sub_vacuum_rejected(self):
        with pytest.raises(ConfigurationError):
            Dielectric(name="bad", relative_permittivity=0.9)

    def test_vacuum_boundary_allowed(self):
        d = Dielectric(name="vacuum", relative_permittivity=1.0)
        assert d.permittivity == pytest.approx(EPS0)

    def test_scaled_changes_only_permittivity(self):
        scaled = SIO2.scaled(2.0)
        assert scaled.relative_permittivity == pytest.approx(2.0)
        assert SIO2.relative_permittivity == pytest.approx(3.9)  # original intact

    def test_scaled_autogenerates_name(self):
        scaled = SIO2.scaled(2.5)
        assert "2.5" in scaled.name

    def test_scaled_custom_name(self):
        scaled = SIO2.scaled(2.5, name="airgap")
        assert scaled.name == "airgap"

    def test_scaled_validates(self):
        with pytest.raises(ConfigurationError):
            SIO2.scaled(0.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SIO2.relative_permittivity = 2.0
