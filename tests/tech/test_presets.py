"""Tests for the Table 3 technology presets (experiment E10).

These tests pin the preset geometry to the numbers printed in the
paper's Table 3 — any drift in the presets is a reproduction bug.
"""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.tech.presets import (
    METAL_LAYER_COUNTS,
    NODE_90NM,
    NODE_130NM,
    NODE_180NM,
    available_nodes,
    get_node,
)

#: (node, tier, field, value-in-um) — the paper's Table 3, verbatim.
TABLE3 = [
    ("180nm", "local", "min_width", 0.230),
    ("180nm", "local", "min_spacing", 0.230),
    ("180nm", "local", "thickness", 0.483),
    ("180nm", "semi_global", "min_width", 0.280),
    ("180nm", "semi_global", "min_spacing", 0.280),
    ("180nm", "semi_global", "thickness", 0.588),
    ("180nm", "global", "min_width", 0.440),
    ("180nm", "global", "min_spacing", 0.460),
    ("180nm", "global", "thickness", 0.960),
    ("130nm", "local", "min_width", 0.160),
    ("130nm", "local", "min_spacing", 0.180),
    ("130nm", "local", "thickness", 0.336),
    ("130nm", "semi_global", "min_width", 0.200),
    ("130nm", "semi_global", "min_spacing", 0.210),
    ("130nm", "semi_global", "thickness", 0.340),
    ("130nm", "global", "min_width", 0.440),
    ("130nm", "global", "min_spacing", 0.460),
    ("130nm", "global", "thickness", 1.020),
    ("90nm", "local", "min_width", 0.120),
    ("90nm", "local", "min_spacing", 0.120),
    ("90nm", "local", "thickness", 0.260),
    ("90nm", "semi_global", "min_width", 0.140),
    ("90nm", "semi_global", "min_spacing", 0.140),
    ("90nm", "semi_global", "thickness", 0.300),
    ("90nm", "global", "min_width", 0.420),
    ("90nm", "global", "min_spacing", 0.420),
    ("90nm", "global", "thickness", 0.880),
]

#: Via minimum widths from Table 3, in um.
TABLE3_VIAS = [
    ("180nm", "local", 0.260),
    ("180nm", "semi_global", 0.260),
    ("180nm", "global", 0.360),
    ("130nm", "local", 0.190),
    ("130nm", "semi_global", 0.260),
    ("130nm", "global", 0.360),
    ("90nm", "local", 0.130),
    ("90nm", "semi_global", 0.130),
    ("90nm", "global", 0.360),
]


@pytest.mark.parametrize("node_name,tier,field,value_um", TABLE3)
def test_table3_metal_geometry(node_name, tier, field, value_um):
    rule = get_node(node_name).metal(tier)
    assert getattr(rule, field) == pytest.approx(units.um(value_um))


@pytest.mark.parametrize("node_name,tier,value_um", TABLE3_VIAS)
def test_table3_via_widths(node_name, tier, value_um):
    via = get_node(node_name).via(tier)
    assert via.min_width == pytest.approx(units.um(value_um))


class TestNodeRegistry:
    def test_available_nodes(self):
        assert set(available_nodes()) == {"180nm", "130nm", "90nm"}

    def test_get_node_identity(self):
        assert get_node("130nm") is NODE_130NM
        assert get_node("180nm") is NODE_180NM
        assert get_node("90nm") is NODE_90NM

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown technology node"):
            get_node("65nm")

    def test_metal_layer_counts(self):
        """Table 3's x/t ranges: 6 metals at 180 nm, 7 at 130, 8 at 90."""
        assert METAL_LAYER_COUNTS == {"180nm": 6, "130nm": 7, "90nm": 8}


class TestNodePhysicalSanity:
    @pytest.mark.parametrize("node_name", ["180nm", "130nm", "90nm"])
    def test_feature_size_matches_name(self, node_name):
        node = get_node(node_name)
        assert node.feature_size == pytest.approx(
            units.nm(float(node_name[:-2]))
        )

    @pytest.mark.parametrize("node_name", ["180nm", "130nm", "90nm"])
    def test_tiers_coarsen_upward(self, node_name):
        """Global wires are at least as wide/thick as semi-global/local."""
        node = get_node(node_name)
        assert node.metal("global").min_width >= node.metal("semi_global").min_width
        assert node.metal("semi_global").min_width >= node.metal("local").min_width
        assert node.metal("global").thickness >= node.metal("semi_global").thickness

    def test_devices_get_faster_with_scaling(self):
        """Intrinsic stage delay shrinks with the node."""
        d180 = NODE_180NM.device.intrinsic_delay
        d130 = NODE_130NM.device.intrinsic_delay
        d90 = NODE_90NM.device.intrinsic_delay
        assert d180 > d130 > d90

    @pytest.mark.parametrize("node_name", ["180nm", "130nm", "90nm"])
    def test_min_inverter_area_tracks_feature(self, node_name):
        node = get_node(node_name)
        ratio = node.device.min_inverter_area / node.feature_size ** 2
        assert ratio == pytest.approx(1.5)

    def test_180nm_uses_aluminium_era_conductor(self):
        assert NODE_180NM.conductor.resistivity > NODE_130NM.conductor.resistivity

    @pytest.mark.parametrize("node_name", ["180nm", "130nm", "90nm"])
    def test_baseline_dielectric_is_oxide(self, node_name):
        assert get_node(node_name).dielectric.relative_permittivity == pytest.approx(3.9)
