"""Tests for ITRS-style node projection."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.presets import NODE_90NM
from repro.tech.projection import project_node, roadmap_nodes


class TestProjection:
    def test_one_generation_geometry(self):
        projected = project_node(NODE_90NM)
        assert projected.feature_size == pytest.approx(0.7 * NODE_90NM.feature_size)
        for tier in ("local", "semi_global", "global"):
            assert projected.metal(tier).min_width == pytest.approx(
                0.7 * NODE_90NM.metal(tier).min_width
            )
            assert projected.via(tier).min_width == pytest.approx(
                0.7 * NODE_90NM.via(tier).min_width
            )

    def test_name_reflects_feature(self):
        projected = project_node(NODE_90NM)
        assert projected.name == "63nm-projected"

    def test_device_scaling_rules(self):
        projected = project_node(NODE_90NM)
        base = NODE_90NM.device
        assert projected.device.output_resistance == pytest.approx(
            base.output_resistance
        )
        assert projected.device.input_capacitance == pytest.approx(
            0.7 * base.input_capacitance
        )
        assert projected.device.min_inverter_area == pytest.approx(
            0.49 * base.min_inverter_area
        )
        assert projected.device.supply_voltage == pytest.approx(
            base.supply_voltage * 0.7 ** 0.5
        )

    def test_two_generations_compose(self):
        two = project_node(NODE_90NM, generations=2)
        assert two.feature_size == pytest.approx(0.49 * NODE_90NM.feature_size)

    def test_materials_carried_over(self):
        projected = project_node(NODE_90NM)
        assert projected.conductor == NODE_90NM.conductor
        assert projected.dielectric == NODE_90NM.dielectric

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            project_node(NODE_90NM, generations=0)
        with pytest.raises(ConfigurationError):
            project_node(NODE_90NM, shrink=1.0)
        with pytest.raises(ConfigurationError):
            project_node(NODE_90NM, shrink=0.0)


class TestRoadmapNodes:
    def test_sequence(self):
        nodes = roadmap_nodes(NODE_90NM, generations=2)
        assert len(nodes) == 3
        assert nodes[0] is NODE_90NM
        assert nodes[1].feature_size > nodes[2].feature_size

    def test_projected_node_solves(self):
        """A projected 63 nm node drives the full rank pipeline and
        continues the cross-node trend (>= the 90 nm rank)."""
        from repro import (
            ArchitectureSpec,
            DieModel,
            RankProblem,
            build_architecture,
            compute_rank,
        )
        from repro.core.scenarios import baseline_problem
        from repro.wld.davis import DavisParameters, davis_wld

        projected = project_node(NODE_90NM)
        problem = RankProblem(
            arch=build_architecture(ArchitectureSpec(node=projected)),
            die=DieModel(node=projected, gate_count=50_000, repeater_fraction=0.4),
            wld=davis_wld(DavisParameters(gate_count=50_000)),
            clock_frequency=5e8,
        )
        result = compute_rank(problem, bunch_size=2000, repeater_units=128)
        base = compute_rank(
            baseline_problem("90nm", 50_000), bunch_size=2000, repeater_units=128
        )
        assert result.fits
        assert result.rank >= base.rank
