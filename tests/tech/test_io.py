"""Tests for technology-node serialization."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.tech.io import load_node, node_from_dict, node_to_dict, save_node
from repro.tech.presets import NODE_90NM, NODE_130NM, NODE_180NM


@pytest.mark.parametrize("node", [NODE_180NM, NODE_130NM, NODE_90NM])
class TestRoundTrip:
    def test_dict_round_trip(self, node):
        restored = node_from_dict(node_to_dict(node))
        assert restored.name == node.name
        assert restored.feature_size == pytest.approx(node.feature_size)
        for tier in ("local", "semi_global", "global"):
            assert restored.metal(tier) == node.metal(tier)
            assert restored.via(tier) == node.via(tier)
        assert restored.device == node.device
        assert restored.conductor == node.conductor
        assert restored.dielectric == node.dielectric

    def test_file_round_trip(self, node, tmp_path):
        path = tmp_path / "node.json"
        save_node(node, path)
        restored = load_node(path)
        assert restored.metal("global") == node.metal("global")
        assert restored.device.supply_voltage == pytest.approx(
            node.device.supply_voltage
        )

    def test_round_tripped_node_solves(self, node, tmp_path):
        """A reloaded node must drive the full rank pipeline."""
        from repro.core.scenarios import baseline_problem
        from repro import compute_rank
        import repro.tech.presets as presets

        path = tmp_path / "node.json"
        save_node(node, path)
        restored = load_node(path)
        # build the problem manually on the restored node
        from repro import ArchitectureSpec, DieModel, RankProblem, build_architecture
        from repro.wld.davis import DavisParameters, davis_wld

        problem = RankProblem(
            arch=build_architecture(ArchitectureSpec(node=restored)),
            die=DieModel(node=restored, gate_count=50_000, repeater_fraction=0.4),
            wld=davis_wld(DavisParameters(gate_count=50_000)),
            clock_frequency=5e8,
        )
        result = compute_rank(problem, bunch_size=2000, repeater_units=128)
        # identical physics to the preset node
        baseline = baseline_problem(node.name, 50_000)
        expected = compute_rank(baseline, bunch_size=2000, repeater_units=128)
        assert result.rank == expected.rank


class TestErrorHandling:
    def test_missing_key_rejected(self):
        payload = node_to_dict(NODE_130NM)
        del payload["device"]
        with pytest.raises(ConfigurationError, match="missing"):
            node_from_dict(payload)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_node(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_node(path)

    def test_bad_values_rejected(self):
        payload = node_to_dict(NODE_130NM)
        payload["metal_rules"]["local"]["min_width"] = -1.0
        with pytest.raises(ConfigurationError):
            node_from_dict(payload)


class TestFieldDiagnostics:
    """Malformed node files are diagnosed by full field path and
    expected range — one actionable line, never a traceback."""

    def fresh(self):
        return json.loads(json.dumps(node_to_dict(NODE_130NM)))

    def test_negative_metal_field_names_path_and_range(self):
        payload = self.fresh()
        payload["metal_rules"]["global"]["min_width"] = -2e-7
        with pytest.raises(
            ConfigurationError,
            match=r"metal_rules\.global\.min_width.*> 0",
        ):
            node_from_dict(payload)

    def test_missing_nested_field_names_path(self):
        payload = self.fresh()
        del payload["device"]["input_capacitance"]
        with pytest.raises(
            ConfigurationError, match=r"device\.input_capacitance"
        ):
            node_from_dict(payload)

    def test_non_numeric_field_rejected(self):
        payload = self.fresh()
        payload["feature_size"] = "130nm"
        with pytest.raises(
            ConfigurationError, match=r"feature_size.*expected a number"
        ):
            node_from_dict(payload)

    def test_boolean_is_not_a_number(self):
        payload = self.fresh()
        payload["feature_size"] = True
        with pytest.raises(ConfigurationError, match="expected a number"):
            node_from_dict(payload)

    def test_permittivity_below_one_rejected(self):
        payload = self.fresh()
        payload["dielectric"]["relative_permittivity"] = 0.5
        with pytest.raises(
            ConfigurationError,
            match=r"dielectric\.relative_permittivity.*>= 1",
        ):
            node_from_dict(payload)

    def test_empty_name_rejected(self):
        payload = self.fresh()
        payload["name"] = ""
        with pytest.raises(ConfigurationError, match="non-empty string"):
            node_from_dict(payload)

    def test_section_must_be_object(self):
        payload = self.fresh()
        payload["via_rules"] = "nope"
        with pytest.raises(ConfigurationError, match="via_rules"):
            node_from_dict(payload)

    def test_unreadable_file_errors_cleanly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_node(tmp_path / "does-not-exist.json")

    def test_load_node_prefixes_path(self, tmp_path):
        payload = self.fresh()
        payload["metal_rules"]["local"]["thickness"] = 0
        path = tmp_path / "node.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="node.json"):
            load_node(path)

    def test_optional_fields_default(self):
        payload = self.fresh()
        del payload["gate_pitch_factor"]
        for rule in payload["via_rules"].values():
            rule.pop("enclosure", None)
        node = node_from_dict(payload)
        assert node.gate_pitch_factor == pytest.approx(12.6)
        assert node.via("local").enclosure == 0.0
